"""Discriminative correlations across sub-populations (paper §7).

The paper's first future-work item: *"the flipping pattern concept can
be extended for discovering a set of discriminative correlations, that
are specific for a given sub-group."*  This module implements that
extension: instead of contrasting correlation across *taxonomy
levels*, it contrasts the same itemset's correlation across a
*population split* — the sub-group vs the rest of the database — and
reports the itemsets whose label flips between the two.

The result is the population analogue of a flipping pattern: e.g. a
product pair positively correlated among weekend shoppers and
negatively correlated otherwise.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.itemsets import apriori_join, has_infrequent_subset
from repro.core.labels import Label, flips, label_for
from repro.core.measures import Measure, get_measure
from repro.data.database import TransactionDatabase
from repro.data.vertical import VerticalIndex
from repro.errors import ConfigError

__all__ = ["GroupSide", "DiscriminativePattern", "mine_discriminative"]

Selector = Callable[[tuple[str, ...]], bool]


@dataclass(frozen=True)
class GroupSide:
    """One side of the population split for one itemset."""

    n_transactions: int
    support: int
    correlation: float
    label: Label


@dataclass(frozen=True)
class DiscriminativePattern:
    """An itemset whose correlation label flips across the split."""

    level: int
    itemset: tuple[int, ...]
    names: tuple[str, ...]
    subgroup: GroupSide
    rest: GroupSide

    @property
    def gap(self) -> float:
        """Absolute correlation difference between the two sides."""
        return abs(self.subgroup.correlation - self.rest.correlation)

    def describe(self) -> str:
        names = ", ".join(self.names)
        return (
            f"{{{names}}} (level {self.level}): "
            f"subgroup {self.subgroup.label.symbol} "
            f"corr={self.subgroup.correlation:.3f} (sup {self.subgroup.support}) "
            f"vs rest {self.rest.label.symbol} "
            f"corr={self.rest.correlation:.3f} (sup {self.rest.support})"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "level": self.level,
            "names": list(self.names),
            "gap": self.gap,
            "subgroup": {
                "support": self.subgroup.support,
                "correlation": self.subgroup.correlation,
                "label": str(self.subgroup.label),
            },
            "rest": {
                "support": self.rest.support,
                "correlation": self.rest.correlation,
                "label": str(self.rest.label),
            },
        }


def _split_database(
    database: TransactionDatabase, selector: Selector | Sequence[int]
) -> tuple[list[int], list[int]]:
    """Indices of subgroup / rest transactions."""
    if callable(selector):
        subgroup = [
            index
            for index in range(len(database))
            if selector(database.transaction_names(index))
        ]
    else:
        subgroup = sorted(set(selector))
        if subgroup and (subgroup[0] < 0 or subgroup[-1] >= len(database)):
            raise ConfigError("selector indices out of range")
    chosen = set(subgroup)
    rest = [index for index in range(len(database)) if index not in chosen]
    return subgroup, rest


def _side_index(
    database: TransactionDatabase, indices: Iterable[int]
) -> VerticalIndex:
    transactions = [database.transaction_names(index) for index in indices]
    side = TransactionDatabase(transactions, database.taxonomy)
    return VerticalIndex(side)


def mine_discriminative(
    database: TransactionDatabase,
    selector: Selector | Sequence[int],
    gamma: float,
    epsilon: float,
    min_support: int = 2,
    measure: str | Measure = "kulczynski",
    levels: Sequence[int] | None = None,
    max_k: int = 3,
) -> list[DiscriminativePattern]:
    """Itemsets whose correlation sign flips between a sub-group and
    the rest of the population.

    Parameters
    ----------
    selector:
        Either a predicate over transaction item-name tuples, or an
        explicit sequence of transaction indices defining the
        sub-group.
    gamma / epsilon / min_support:
        Definition-1 thresholds, applied *within each side* (absolute
        minimum support per side).
    levels:
        Taxonomy levels to analyze (default: all).
    max_k:
        Largest itemset size to consider.

    Returns patterns sorted by descending correlation gap.
    """
    if not 0.0 <= epsilon < gamma <= 1.0:
        raise ConfigError(
            f"need 0 <= epsilon < gamma <= 1, got ({gamma}, {epsilon})"
        )
    if min_support < 1:
        raise ConfigError("min_support must be >= 1")
    if max_k < 2:
        raise ConfigError("max_k must be >= 2")
    measure = get_measure(measure)
    subgroup_ids, rest_ids = _split_database(database, selector)
    if not subgroup_ids or not rest_ids:
        raise ConfigError(
            "selector must split the database into two non-empty sides "
            f"(got {len(subgroup_ids)} / {len(rest_ids)})"
        )
    subgroup_index = _side_index(database, subgroup_ids)
    rest_index = _side_index(database, rest_ids)

    taxonomy = database.taxonomy
    height = taxonomy.height
    levels = list(levels) if levels is not None else list(range(1, height + 1))
    for level in levels:
        if not 1 <= level <= height:
            raise ConfigError(f"level {level} out of range [1, {height}]")

    patterns: list[DiscriminativePattern] = []
    for level in levels:
        sub_supports = subgroup_index.node_supports(level)
        rest_supports = rest_index.node_supports(level)
        # items viable on at least one side can appear in a flip
        items = sorted(
            node
            for node in sub_supports
            if sub_supports[node] >= min_support
            or rest_supports[node] >= min_support
        )
        frequent_prev: list[tuple[int, ...]] = [(item,) for item in items]
        k = 2
        while k <= max_k and len(frequent_prev) >= 2:
            if k == 2:
                candidates = [
                    (items[i], items[j])
                    for i in range(len(items))
                    for j in range(i + 1, len(items))
                ]
            else:
                previous = set(frequent_prev)
                candidates = [
                    candidate
                    for candidate in apriori_join(sorted(previous))
                    if not has_infrequent_subset(candidate, previous)
                ]
            surviving: list[tuple[int, ...]] = []
            for itemset in candidates:
                sub_sup = subgroup_index.support(level, itemset)
                rest_sup = rest_index.support(level, itemset)
                if max(sub_sup, rest_sup) < min_support:
                    continue
                surviving.append(itemset)
                sub_side = _evaluate_side(
                    measure,
                    itemset,
                    sub_sup,
                    sub_supports,
                    len(subgroup_ids),
                    min_support,
                    gamma,
                    epsilon,
                )
                rest_side = _evaluate_side(
                    measure,
                    itemset,
                    rest_sup,
                    rest_supports,
                    len(rest_ids),
                    min_support,
                    gamma,
                    epsilon,
                )
                if flips(sub_side.label, rest_side.label):
                    patterns.append(
                        DiscriminativePattern(
                            level=level,
                            itemset=itemset,
                            names=tuple(
                                taxonomy.name_of(node) for node in itemset
                            ),
                            subgroup=sub_side,
                            rest=rest_side,
                        )
                    )
            frequent_prev = surviving
            k += 1
    patterns.sort(key=lambda p: (-p.gap, p.level, p.names))
    return patterns


def _evaluate_side(
    measure: Measure,
    itemset: tuple[int, ...],
    support: int,
    node_supports: dict[int, int],
    n_transactions: int,
    min_support: int,
    gamma: float,
    epsilon: float,
) -> GroupSide:
    item_supports = [node_supports[node] for node in itemset]
    if any(s == 0 for s in item_supports):
        correlation = 0.0
    else:
        correlation = measure(support, item_supports)
    # Definition 1 gates labels on itemset frequency; for population
    # contrast we follow the negative-association convention instead:
    # when every *item* is frequent on this side, a rare (even absent)
    # co-occurrence is meaningful evidence of negative correlation,
    # not missing data.
    if support >= min_support:
        label = label_for(support, correlation, min_support, gamma, epsilon)
    elif all(s >= min_support for s in item_supports):
        # Never positive without co-occurrence evidence.
        label = (
            Label.NEGATIVE
            if correlation <= epsilon
            else Label.NON_CORRELATED
        )
    else:
        label = Label.INFREQUENT
    return GroupSide(
        n_transactions=n_transactions,
        support=support,
        correlation=correlation,
        label=label,
    )
