"""Shared fixtures and hypothesis strategies for the test suite.

The strategies (:func:`taxonomy_trees`, :func:`databases`,
:func:`corpora`) are the single source of random taxonomy/transaction
generation for property tests — the substrate suite and the
cross-subsystem end-to-end suite draw from the same shapes, so a
corpus that falsifies one invariant is immediately replayable against
the others.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro import Taxonomy, Thresholds, TransactionDatabase
from repro.datasets import example3_database, example3_taxonomy


@pytest.fixture
def example3_tax() -> Taxonomy:
    return example3_taxonomy()


@pytest.fixture
def example3_db() -> TransactionDatabase:
    return example3_database()


@pytest.fixture
def example3_thresholds() -> Thresholds:
    return Thresholds(gamma=0.6, epsilon=0.35, min_support=1)


@pytest.fixture
def grocery_taxonomy() -> Taxonomy:
    """A small, hand-made 3-level grocery hierarchy."""
    return Taxonomy.from_dict(
        {
            "drinks": {
                "beer": ["canned beer", "bottled beer"],
                "soda": ["cola", "lemonade"],
            },
            "non-food": {
                "cosmetics": ["baby cosmetics", "soap"],
                "cleaning": ["detergent", "sponges"],
            },
            "fresh": {
                "fruit": ["apples", "bananas"],
                "dairy": ["milk", "yogurt"],
            },
        }
    )


def make_random_database(
    taxonomy: Taxonomy,
    n_transactions: int,
    seed: int,
    min_width: int = 1,
    max_width: int = 5,
) -> TransactionDatabase:
    """Uniform random transactions over a taxonomy's items."""
    rng = random.Random(seed)
    items = [taxonomy.name_of(i) for i in taxonomy.item_ids]
    transactions = []
    for _ in range(n_transactions):
        width = rng.randint(min_width, min(max_width, len(items)))
        transactions.append(rng.sample(items, width))
    return TransactionDatabase(transactions, taxonomy)


@pytest.fixture
def random_db(grocery_taxonomy) -> TransactionDatabase:
    return make_random_database(grocery_taxonomy, 200, seed=7, max_width=6)


# ----------------------------------------------------------------------
# hypothesis strategies (shared by the property suites)
# ----------------------------------------------------------------------


@st.composite
def taxonomy_trees(draw):
    """Random 2-3 level taxonomies, possibly unbalanced.

    Returns ``(tree_dict, leaf_names)``; build the taxonomy with
    ``Taxonomy.from_dict(tree)``.
    """
    n_categories = draw(st.integers(min_value=2, max_value=4))
    tree: dict = {}
    leaves: list[str] = []
    for c in range(n_categories):
        category = f"c{c}"
        deep = draw(st.booleans())
        if deep:
            subtree = {}
            for m in range(draw(st.integers(min_value=1, max_value=2))):
                mid = f"{category}m{m}"
                children = [
                    f"{mid}x{j}"
                    for j in range(draw(st.integers(min_value=1, max_value=3)))
                ]
                subtree[mid] = children
                leaves.extend(children)
            tree[category] = subtree
        else:
            children = [
                f"{category}x{j}"
                for j in range(draw(st.integers(min_value=1, max_value=3)))
            ]
            tree[category] = children
            leaves.extend(children)
    return tree, leaves


def _random_rows(leaves: list[str], seed: int, n: int) -> list[list[str]]:
    rng = random.Random(seed)
    return [
        rng.sample(leaves, rng.randint(1, min(4, len(leaves))))
        for _ in range(n)
    ]


@st.composite
def databases(draw):
    """A random in-memory database over a random taxonomy."""
    tree, leaves = draw(taxonomy_trees())
    taxonomy = Taxonomy.from_dict(tree)
    seed = draw(st.integers(min_value=0, max_value=9999))
    n = draw(st.integers(min_value=1, max_value=25))
    return TransactionDatabase(_random_rows(leaves, seed, n), taxonomy)


@st.composite
def corpora(draw):
    """A random ``(taxonomy, base_rows, delta_rows)`` triple — the
    input shape of the cross-subsystem pipeline property test.  The
    delta draws from the same leaf universe as the base (a delta with
    foreign items is rejected by ``append_batch`` by design) and may
    be empty (the incremental no-op path)."""
    tree, leaves = draw(taxonomy_trees())
    taxonomy = Taxonomy.from_dict(tree)
    seed = draw(st.integers(min_value=0, max_value=9999))
    n_base = draw(st.integers(min_value=2, max_value=25))
    n_delta = draw(st.integers(min_value=0, max_value=10))
    rows = _random_rows(leaves, seed, n_base + n_delta)
    return taxonomy, rows[:n_base], rows[n_base:]
