"""Known-good: async bodies delegate blocking work to the loop."""

import asyncio
import time


async def handler(loop, api, payload):
    await asyncio.sleep(0.01)
    return await loop.run_in_executor(None, api.run_update, payload)


async def locked(lock):
    # an *awaited* acquire is an asyncio primitive, not a block
    await lock.acquire()
    lock.release()


def sync_worker(path):
    # sync code may block freely — the rule only watches async bodies
    time.sleep(0.01)
    with open(path, encoding="utf-8") as handle:
        return handle.read()
