"""Concentration-bound math for sample-then-verify mining.

The approximate path mines a size-``n`` sample of an ``N``-transaction
store and must not lose patterns the exact miner would report.  The
screening guarantees come from Hoeffding's inequality applied to
per-transaction indicator variables (does transaction ``t`` contain
itemset ``A``?): the sample frequency ``p̂`` of any fixed itemset
deviates from its true frequency ``p`` by more than ``eps`` with
probability at most ``exp(-2 n eps**2)`` per side.  Solving for the
failure budget ``delta`` gives the additive margin

    eps(n, delta) = sqrt(ln(1 / delta) / (2 n))

used three ways (see :class:`SampleBounds`):

* **support relaxation** — a level with fractional minimum support
  ``f`` is mined on the sample at a relaxed count, so any itemset
  truly frequent in the full data stays frequent in the sample with
  probability ``>= 1 - delta'``.  Two valid relaxations exist and the
  *larger* (tighter) one is used per level:

  - Hoeffding (additive): ``(f - eps) * n`` — sharp for common
    itemsets, vacuous once ``eps >= f``;
  - Chernoff (multiplicative lower tail,
    ``P(X < (1 - eta) n f) <= exp(-n f eta**2 / 2)``):
    ``(1 - eta) * f * n`` with ``eta = sqrt(2 ln(1/delta') / (n f))``
    — much sharper for the rare fractions of the deep taxonomy
    levels, where the additive margin would collapse the threshold to
    1 and the screen would enumerate the degenerate everything-is-
    frequent space;
* **correlation relaxation** — every null-invariant measure is a mean
  of conditionals ``sup(A) / sup(a_i)`` whose numerator and
  denominator each carry at most ``eps`` of additive frequency error,
  so the sampled correlation sits within
  ``m = 2 eps / (f_H - eps)`` of the true one (``f_H`` is the
  bottom-level support fraction — the smallest denominator a counted
  itemset can have).  The positive/negative label bands are widened by
  ``m`` (clamped at the gamma/epsilon midpoint so the two bands can
  never overlap);
* **confidence intervals** — a sampled support count ``c`` scales to
  the full-data interval ``[(c/n - eps) N, (c/n + eps) N]``.

The total failure budget ``delta = 1 - confidence`` is split evenly
across the per-level support tests plus one correlation test (a union
bound over one pattern's chain), following the screen-then-confirm
framing of large-scale inference.  The guarantee is therefore
**per pattern**: any *given* true pattern survives the screen with
probability ``>= confidence``; it is not a simultaneous bound over
all patterns at once (with many true patterns, the expected number of
misses is still ``<= delta`` per pattern, but the probability that
*some* pattern is missed can exceed ``delta`` — the bench's recall
check quantifies the simultaneous behaviour empirically).  Phase 1
may only *miss*, never fabricate, because phase 2 re-counts every
candidate exactly.  When the correlation margin has to be clamped at
the gamma/epsilon midpoint (``margin_clamped``), even the per-pattern
guarantee is weakened — the sample was too small for the requested
thresholds; grow the sample or lower the confidence.

Sampling here is without replacement (reservoir / stratified), for
which Hoeffding's bound still holds (Serfling 1974 gives a strictly
tighter constant, so using the with-replacement form is conservative).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.core.thresholds import ResolvedThresholds
from repro.errors import ConfigError

__all__ = [
    "hoeffding_epsilon",
    "chernoff_sample_count",
    "required_sample_size",
    "correlation_margin",
    "support_interval",
    "SampleBounds",
]


def hoeffding_epsilon(n_sample: int, delta: float) -> float:
    """Additive frequency margin ``eps`` such that a sample mean of
    ``n_sample`` bounded indicators undershoots its expectation by
    more than ``eps`` with probability at most ``delta``."""
    if n_sample < 1:
        raise ConfigError(f"sample size must be >= 1, got {n_sample}")
    if not 0.0 < delta < 1.0:
        raise ConfigError(f"delta must be in (0, 1), got {delta}")
    return math.sqrt(math.log(1.0 / delta) / (2.0 * n_sample))


def chernoff_sample_count(
    fraction: float, n_sample: int, delta: float
) -> float:
    """Multiplicative-Chernoff lower bound on the sampled count of an
    itemset with true frequency ``>= fraction``: with probability at
    least ``1 - delta`` the sample contains more than the returned
    number of occurrences.  Zero (no information) when the expected
    count is too small for the tail to bite."""
    if not 0.0 < delta < 1.0:
        raise ConfigError(f"delta must be in (0, 1), got {delta}")
    expected = fraction * n_sample
    if expected <= 0.0:
        return 0.0
    eta = math.sqrt(2.0 * math.log(1.0 / delta) / expected)
    if eta >= 1.0:
        return 0.0
    return (1.0 - eta) * expected


def required_sample_size(epsilon: float, delta: float) -> int:
    """Smallest ``n`` with ``hoeffding_epsilon(n, delta) <= epsilon``
    — the inverse used by ``explain`` to answer "how many rows buy me
    a ±epsilon support estimate at this confidence?"."""
    if not 0.0 < epsilon < 1.0:
        raise ConfigError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ConfigError(f"delta must be in (0, 1), got {delta}")
    return math.ceil(math.log(1.0 / delta) / (2.0 * epsilon**2))


def correlation_margin(
    epsilon_support: float, bottom_fraction: float
) -> float:
    """Worst-case drift of a null-invariant correlation under
    ``epsilon_support`` of additive frequency error.

    Every measure is a mean of ratios ``p(A) / p(a_i)`` with
    ``p(a_i) >= bottom_fraction`` for any itemset the miner counts
    (items below the level's minimum support never enter a cell).
    Perturbing numerator and denominator by ``eps`` moves each ratio
    by at most ``2 eps / (bottom_fraction - eps)``; a mean of ratios
    moves no further.  Degenerates to 1.0 (band fully open) when the
    sample is too small for the threshold, i.e. ``eps >=
    bottom_fraction``.
    """
    if bottom_fraction <= epsilon_support:
        return 1.0
    return min(
        1.0, 2.0 * epsilon_support / (bottom_fraction - epsilon_support)
    )


def support_interval(
    sample_count: int, n_sample: int, n_total: int, epsilon_support: float
) -> tuple[int, int]:
    """Full-data support confidence interval for a sampled count,
    as integer transaction counts clamped to ``[0, n_total]``."""
    fraction = sample_count / max(1, n_sample)
    lo = max(0, math.floor((fraction - epsilon_support) * n_total))
    hi = min(n_total, math.ceil((fraction + epsilon_support) * n_total))
    return lo, hi


@dataclass(frozen=True)
class SampleBounds:
    """Everything phase 1 derives from ``(N, n, confidence)`` once.

    Attributes mirror the derivation in the module docstring;
    ``sample_min_counts`` and the relaxed gamma/epsilon are what the
    sample miner actually runs with, and :meth:`to_dict` is what the
    result config and ``explain`` report.
    """

    n_total: int
    n_sample: int
    confidence: float
    delta: float
    #: union-bound split: one test per taxonomy level plus one for
    #: the correlation band
    tests: int
    delta_per_test: float
    epsilon_support: float
    margin: float
    margin_clamped: bool
    gamma: float
    epsilon: float
    relaxed_gamma: float
    relaxed_epsilon: float
    min_fractions: tuple[float, ...]
    sample_min_counts: tuple[int, ...]

    @classmethod
    def derive(
        cls,
        resolved: ResolvedThresholds,
        n_total: int,
        n_sample: int,
        confidence: float,
    ) -> "SampleBounds":
        """Derive the relaxed sample-mining parameters from exact
        thresholds resolved against the full store."""
        if not 0.0 < confidence < 1.0:
            raise ConfigError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        if n_sample < 1 or n_sample > n_total:
            raise ConfigError(
                f"sample size {n_sample} out of range [1, {n_total}]"
            )
        delta = 1.0 - confidence
        tests = resolved.height + 1
        delta_per_test = delta / tests
        eps = hoeffding_epsilon(n_sample, delta_per_test)
        fractions = tuple(count / n_total for count in resolved.min_counts)
        # Per level, the tighter of the two valid relaxations (both
        # monotone in the fraction, so the per-level non-increasing
        # threshold shape survives).
        sample_counts = tuple(
            max(
                1,
                math.ceil(
                    max(
                        (fraction - eps) * n_sample,
                        chernoff_sample_count(
                            fraction, n_sample, delta_per_test
                        ),
                    )
                ),
            )
            for fraction in fractions
        )
        raw_margin = correlation_margin(eps, fractions[-1])
        # The relaxed bands may approach but never cross the
        # gamma/epsilon midpoint: positive and negative labels stay
        # mutually exclusive for any sample size.
        half_band = (resolved.gamma - resolved.epsilon) / 2.0
        margin = min(raw_margin, max(0.0, half_band - 1e-9))
        return cls(
            n_total=n_total,
            n_sample=n_sample,
            confidence=confidence,
            delta=delta,
            tests=tests,
            delta_per_test=delta_per_test,
            epsilon_support=eps,
            margin=margin,
            margin_clamped=margin < raw_margin,
            gamma=resolved.gamma,
            epsilon=resolved.epsilon,
            relaxed_gamma=resolved.gamma - margin,
            relaxed_epsilon=resolved.epsilon + margin,
            min_fractions=fractions,
            sample_min_counts=sample_counts,
        )

    def interval(self, sample_count: int) -> tuple[int, int]:
        """Full-data support CI of one sampled count."""
        return support_interval(
            sample_count, self.n_sample, self.n_total, self.epsilon_support
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_total": self.n_total,
            "n_sample": self.n_sample,
            "confidence": self.confidence,
            "delta": self.delta,
            "tests": self.tests,
            "delta_per_test": self.delta_per_test,
            "epsilon_support": self.epsilon_support,
            "margin": self.margin,
            "margin_clamped": self.margin_clamped,
            "relaxed_gamma": self.relaxed_gamma,
            "relaxed_epsilon": self.relaxed_epsilon,
            "sample_min_counts": list(self.sample_min_counts),
        }
