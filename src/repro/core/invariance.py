"""Null-(transaction)-invariance utilities (paper Section 2.1, Table 1).

A correlation measure is *null-invariant* when transactions containing
none of the evaluated items cannot change its value.  The paper's
Table 1 shows why this matters: the expectation-based verdict for the
same four support counts flips from "positive" to "negative" purely by
changing the total transaction count N, while Kulczynski stays put.

This module turns that argument into checkable machinery:

* :func:`with_null_transactions` — a database with N inflated by empty
  transactions (supports untouched);
* :func:`invariance_table` — Table 1 generalized: every measure
  evaluated across a sweep of N for fixed supports;
* :func:`verify_mining_invariance` — the end-to-end property: a
  mining run (absolute-count thresholds) returns byte-identical
  patterns after null inflation.  The property-based suite runs this
  on random instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.measures import (
    MEASURES,
    Measure,
    expectation_sign,
    get_measure,
    lift,
)
from repro.core.thresholds import Thresholds
from repro.data.database import TransactionDatabase
from repro.errors import ConfigError, DataError

__all__ = [
    "with_null_transactions",
    "InvarianceRow",
    "invariance_table",
    "verify_mining_invariance",
]


def with_null_transactions(
    database: TransactionDatabase, count: int
) -> TransactionDatabase:
    """A copy of ``database`` with ``count`` empty transactions added.

    Null transactions change N and nothing else; they are the
    instrument for exercising (non-)invariance.
    """
    if count < 1:
        raise DataError(f"count must be >= 1, got {count}")
    transactions = [
        database.transaction_names(index) for index in range(len(database))
    ]
    transactions.extend([] for _ in range(count))
    return TransactionDatabase(transactions, database.taxonomy)


@dataclass(frozen=True)
class InvarianceRow:
    """One (measure, N) evaluation for fixed support counts."""

    measure: str
    n_transactions: int
    value: float
    sign: str
    null_invariant: bool


def invariance_table(
    sup_itemset: int,
    item_supports: list[int],
    n_values: list[int],
    gamma: float = 0.3,
    epsilon: float = 0.1,
) -> list[InvarianceRow]:
    """Table 1 generalized: all measures across a sweep of N.

    The five null-invariant measures get their γ/ε sign (stable by
    construction); Lift gets the expectation sign, which is the one
    that flips with N.
    """
    if not n_values:
        raise ConfigError("n_values must not be empty")
    floor = max(item_supports)
    for n in n_values:
        if n < floor:
            raise ConfigError(f"N={n} below the largest item support {floor}")
    rows: list[InvarianceRow] = []
    for measure in MEASURES.values():
        for n in n_values:
            value = measure(sup_itemset, item_supports)
            if value >= gamma:
                sign = "positive"
            elif value <= epsilon:
                sign = "negative"
            else:
                sign = "non-correlated"
            rows.append(
                InvarianceRow(
                    measure=measure.name,
                    n_transactions=n,
                    value=value,
                    sign=sign,
                    null_invariant=True,
                )
            )
    for n in n_values:
        rows.append(
            InvarianceRow(
                measure="lift",
                n_transactions=n,
                value=lift(sup_itemset, item_supports, n),
                sign=expectation_sign(sup_itemset, item_supports, n),
                null_invariant=False,
            )
        )
    return rows


def verify_mining_invariance(
    database: TransactionDatabase,
    thresholds: Thresholds,
    measure: str | Measure = "kulczynski",
    n_nulls: int | None = None,
) -> bool:
    """End-to-end invariance: mining is unchanged by null inflation.

    Runs the full Flipper pipeline on ``database`` and on the same
    database inflated with null transactions, and compares the
    complete pattern chains (itemsets, supports, correlations,
    labels).  Requires absolute-count thresholds — fractional ones
    *should* change with N, which is a property of thresholds, not of
    the measure.

    Returns True when the runs agree; raises :class:`ConfigError` for
    fractional thresholds.
    """
    values = thresholds.min_support
    scalar = isinstance(values, (int, float)) and not isinstance(values, bool)
    entries = [values] if scalar else list(values)  # type: ignore[arg-type]
    if any(isinstance(entry, float) for entry in entries):
        raise ConfigError(
            "mining invariance needs absolute-count thresholds; "
            "fractions scale with N by design"
        )
    from repro.core.flipper import mine_flipping_patterns

    get_measure(measure)  # validate early
    inflated = with_null_transactions(
        database, n_nulls if n_nulls is not None else database.n_transactions
    )
    original = mine_flipping_patterns(database, thresholds, measure=measure)
    nulled = mine_flipping_patterns(inflated, thresholds, measure=measure)
    if len(original.patterns) != len(nulled.patterns):
        return False
    for ours, theirs in zip(original.patterns, nulled.patterns):
        if ours.leaf_names != theirs.leaf_names:
            return False
        for link_a, link_b in zip(ours.links, theirs.links):
            if (
                link_a.itemset != link_b.itemset
                or link_a.support != link_b.support
                or abs(link_a.correlation - link_b.correlation) > 1e-12
                or link_a.label is not link_b.label
            ):
                return False
    return True
