"""Render a :class:`~repro.obs.metrics.MetricsRegistry` for scraping.

Two formats, both pure functions of the registry state:

* :func:`render_text` — the Prometheus text exposition format
  (version 0.0.4): ``# HELP`` / ``# TYPE`` headers, escaped label
  values, cumulative ``_bucket`` series with a ``+Inf`` terminator
  plus ``_sum``/``_count`` for histograms;
* :func:`render_json` — the same samples as one JSON document for
  programmatic consumers (the serve bench, tests, ``?format=json``).

Output ordering is deterministic (metrics by name, series by label
values), which is what makes the threaded and async servers'
``/v1/metrics`` responses byte-comparable.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import Histogram, HistogramData, MetricsRegistry

__all__ = ["CONTENT_TYPE_TEXT", "render_json", "render_text"]

#: the content type Prometheus scrapers negotiate for
CONTENT_TYPE_TEXT = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_block(
    names: tuple[str, ...],
    values: tuple[str, ...],
    extra: tuple[tuple[str, str], ...] = (),
) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    pairs.extend(
        f'{name}="{_escape_label_value(value)}"' for name, value in extra
    )
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def _histogram_lines(
    metric: Histogram,
    values: tuple[str, ...],
    data: HistogramData,
) -> list[str]:
    lines: list[str] = []
    cumulative = 0
    for bound, count in zip(metric.buckets, data.bucket_counts):
        cumulative += count
        block = _label_block(
            metric.label_names, values, (("le", _format_value(bound)),)
        )
        lines.append(f"{metric.name}_bucket{block} {cumulative}")
    block = _label_block(metric.label_names, values, (("le", "+Inf"),))
    lines.append(f"{metric.name}_bucket{block} {data.total}")
    plain = _label_block(metric.label_names, values)
    lines.append(f"{metric.name}_sum{plain} {_format_value(data.sum)}")
    lines.append(f"{metric.name}_count{plain} {data.total}")
    return lines


def render_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for metric in registry:
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for values, value in metric.samples():
            if isinstance(metric, Histogram):
                assert isinstance(value, HistogramData)
                lines.extend(_histogram_lines(metric, values, value))
            else:
                block = _label_block(metric.label_names, values)
                lines.append(
                    f"{metric.name}{block} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def render_json(registry: MetricsRegistry) -> dict[str, Any]:
    """The registry as one JSON-ready document.

    Shape: ``{"format": "repro.metrics", "version": 1, "metrics":
    [{name, kind, help, label_names, samples: [...]}, ...]}`` where a
    counter/gauge sample is ``{labels, value}`` and a histogram
    sample adds per-bound (non-cumulative) ``buckets``, ``sum`` and
    ``count``.
    """
    metrics: list[dict[str, Any]] = []
    for metric in registry:
        samples: list[dict[str, Any]] = []
        for values, value in metric.samples():
            labels = dict(zip(metric.label_names, values))
            if isinstance(metric, Histogram):
                assert isinstance(value, HistogramData)
                samples.append(
                    {
                        "labels": labels,
                        "buckets": [
                            {"le": bound, "count": count}
                            for bound, count in zip(
                                metric.buckets, value.bucket_counts
                            )
                        ]
                        + [
                            {
                                "le": "+Inf",
                                "count": value.bucket_counts[-1],
                            }
                        ],
                        "sum": value.sum,
                        "count": value.total,
                    }
                )
            else:
                samples.append({"labels": labels, "value": value})
        entry: dict[str, Any] = {
            "name": metric.name,
            "kind": metric.kind,
            "help": metric.help,
            "label_names": list(metric.label_names),
            "samples": samples,
        }
        if isinstance(metric, Histogram):
            entry["buckets"] = list(metric.buckets)
        metrics.append(entry)
    return {"format": "repro.metrics", "version": 1, "metrics": metrics}
