"""Indexed, persistent store of mined flipping patterns.

A :class:`PatternStore` is the serving-side counterpart of a
:class:`~repro.core.patterns.MiningResult`: the same patterns, but
held behind inverted indexes so queries resolve through posting-list
intersections instead of linear scans.  Four index families are
maintained:

* **item → patterns** — leaf (level-H) item names;
* **node → patterns** — every taxonomy node appearing at *any* chain
  level, which is exactly the descendant-or-self relation restricted
  to the pattern's generalization path;
* **signature → patterns** — the label trajectory (e.g. ``+-+``);
* **height → patterns** — chain length, for level-range filters;

plus one sorted ``(value, pattern_id)`` array per serving measure
(leaf correlation/support and the three flip-sharpness gaps), giving
``O(log n)`` range scans through :mod:`bisect`.

Pattern identity is the leaf itemset (``pattern_id`` is its item ids
joined with ``-``), which makes the store *incrementally* rebuildable:
:meth:`PatternStore.apply_result` diffs an updated
:class:`MiningResult` (e.g. from
:meth:`~repro.engine.incremental.IncrementalMiner.update`) against
what is indexed and touches only added, changed and removed patterns.
Every content change bumps the store ``version``; query consumers
stamp results with it and fail loudly on mismatch instead of serving
a mix of two generations (see :mod:`repro.serve.query`).

The store round-trips to disk as a single JSON document (written
atomically, so readers never observe a torn file) — conventionally
``pattern_store.json`` next to the shard manifest it was mined from.
"""

from __future__ import annotations

import bisect
import json
from collections.abc import Callable, Iterator
from pathlib import Path
from typing import Any

from repro.core.patterns import FlippingPattern, MiningResult
from repro.core.serialize import (
    _link_from_dict,
    _link_to_dict,
    atomic_write_json,
    load_result,
)
from repro.errors import ServeError

__all__ = [
    "PatternStore",
    "STORE_FORMAT",
    "STORE_FORMAT_VERSION",
    "STORE_FILE_NAME",
    "MEASURE_GETTERS",
    "pattern_id_of",
]

STORE_FORMAT = "repro.pattern-store"
STORE_FORMAT_VERSION = 1

#: conventional file name when the store lives in a directory (next
#: to a shard manifest)
STORE_FILE_NAME = "pattern_store.json"

#: serving measures with a sorted array each: name -> value getter
MEASURE_GETTERS: dict[str, Callable[[FlippingPattern], float]] = {
    "correlation": lambda p: p.leaf_link.correlation,
    "support": lambda p: float(p.leaf_link.support),
    "min_gap": lambda p: p.min_gap,
    "max_gap": lambda p: p.max_gap,
    "mean_gap": lambda p: p.mean_gap,
}

#: sorts above every pattern id in tuple comparisons (ids are ASCII)
_ID_CEILING = "\U0010ffff"


def pattern_id_of(pattern: FlippingPattern) -> str:
    """Stable identity of a pattern: its leaf item ids joined by ``-``.

    The leaf itemset is what a flipping pattern *is* (the chain is its
    derived trajectory), so the id survives re-mines and incremental
    updates — the same itemset keeps the same id even when supports
    and correlations move.
    """
    return "-".join(str(item) for item in pattern.leaf_link.itemset)


class PatternStore:
    """Patterns behind inverted indexes and sorted measure arrays.

    Build one with :meth:`build` (from a ``MiningResult``),
    :meth:`from_archive` (from a ``save_result`` JSON file) or
    :meth:`open` (from a saved store); keep it fresh with
    :meth:`apply_result`.
    """

    def __init__(self) -> None:
        self._patterns: dict[str, FlippingPattern] = {}
        # canonical JSON of each pattern's chain, for cheap change
        # detection during apply_result
        self._fingerprints: dict[str, str] = {}
        self._by_item: dict[str, set[str]] = {}
        self._by_node: dict[str, set[str]] = {}
        self._by_signature: dict[str, set[str]] = {}
        self._by_height: dict[int, set[str]] = {}
        self._sorted: dict[str, list[tuple[float, str]]] = {
            name: [] for name in MEASURE_GETTERS
        }
        self._version = 0
        self._config: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, result: MiningResult) -> "PatternStore":
        """Index a mining result (store version starts at 1)."""
        store = cls()
        store.apply_result(result)
        return store

    @classmethod
    def from_archive(cls, path: str | Path) -> "PatternStore":
        """Index a :func:`~repro.core.serialize.save_result` archive."""
        return cls.build(load_result(path))

    @classmethod
    def open(cls, path: str | Path) -> "PatternStore":
        """Reopen a store written by :meth:`save`.

        ``path`` may be the store file itself or a directory holding
        ``pattern_store.json`` (the shard-store convention).
        """
        target = _store_file(path)
        try:
            raw = json.loads(target.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ServeError(f"no such pattern store: {target}") from None
        except json.JSONDecodeError as exc:
            raise ServeError(
                f"{target} is not a valid pattern store: {exc}"
            ) from None
        if not isinstance(raw, dict) or raw.get("format") != STORE_FORMAT:
            raise ServeError(
                f"{target} is not a {STORE_FORMAT} document "
                f"(format={raw.get('format') if isinstance(raw, dict) else None!r})"
            )
        file_version = raw.get("format_version")
        if file_version != STORE_FORMAT_VERSION:
            raise ServeError(
                f"{target}: unsupported pattern-store format version "
                f"{file_version!r} (this build reads version "
                f"{STORE_FORMAT_VERSION})"
            )
        store = cls()
        for chain in raw.get("patterns", []):
            pattern = FlippingPattern(
                links=tuple(_link_from_dict(link) for link in chain)
            )
            pid = pattern_id_of(pattern)
            if pid in store._patterns:
                raise ServeError(
                    f"{target}: duplicate pattern id {pid!r}"
                )
            store._insert(pid, pattern)
        store._version = int(raw.get("store_version", 1))
        store._config = dict(raw.get("config", {}))
        return store

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------

    def apply_result(self, result: MiningResult) -> dict[str, int]:
        """Re-point the store at ``result``, reindexing only changes.

        Patterns are diffed by id and chain fingerprint: unchanged
        patterns keep their index entries untouched, changed ones are
        removed and re-inserted, and ids absent from ``result`` are
        dropped.  The version is bumped exactly when content changed,
        so an empty diff (e.g. a ``noop`` incremental update) keeps
        cached query results valid.  Returns the diff counts.
        """
        incoming: dict[str, FlippingPattern] = {}
        for pattern in result.patterns:
            pid = pattern_id_of(pattern)
            if pid in incoming:
                raise ServeError(
                    f"mining result contains two patterns with leaf "
                    f"itemset {pid!r}"
                )
            incoming[pid] = pattern
        added = changed = unchanged = 0
        removed_ids = [
            pid for pid in self._patterns if pid not in incoming
        ]
        for pid in removed_ids:
            self._remove(pid)
        for pid, pattern in incoming.items():
            fingerprint = _fingerprint(pattern)
            if pid not in self._patterns:
                self._insert(pid, pattern, fingerprint)
                added += 1
            elif self._fingerprints[pid] != fingerprint:
                self._remove(pid)
                self._insert(pid, pattern, fingerprint)
                changed += 1
            else:
                unchanged += 1
        dirty = bool(added or changed or removed_ids)
        if dirty or self._version == 0:
            self._version += 1
        self._config = dict(result.config)
        return {
            "added": added,
            "changed": changed,
            "removed": len(removed_ids),
            "unchanged": unchanged,
            "version": self._version,
        }

    def _insert(
        self,
        pid: str,
        pattern: FlippingPattern,
        fingerprint: str | None = None,
    ) -> None:
        self._patterns[pid] = pattern
        self._fingerprints[pid] = fingerprint or _fingerprint(pattern)
        for name in pattern.leaf_names:
            self._by_item.setdefault(name, set()).add(pid)
        for link in pattern.links:
            for name in link.names:
                self._by_node.setdefault(name, set()).add(pid)
        self._by_signature.setdefault(pattern.signature, set()).add(pid)
        self._by_height.setdefault(pattern.height, set()).add(pid)
        for name, getter in MEASURE_GETTERS.items():
            bisect.insort(self._sorted[name], (getter(pattern), pid))

    def _remove(self, pid: str) -> None:
        pattern = self._patterns.pop(pid)
        del self._fingerprints[pid]
        for name in pattern.leaf_names:
            _discard(self._by_item, name, pid)
        for link in pattern.links:
            for name in link.names:
                _discard(self._by_node, name, pid)
        _discard(self._by_signature, pattern.signature, pid)
        _discard(self._by_height, pattern.height, pid)
        for name, getter in MEASURE_GETTERS.items():
            entry = (getter(pattern), pid)
            array = self._sorted[name]
            index = bisect.bisect_left(array, entry)
            if index < len(array) and array[index] == entry:
                del array[index]

    # ------------------------------------------------------------------
    # read access (what the query engine compiles against)
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic content version; bumped by every real change."""
        return self._version

    @property
    def config(self) -> dict[str, Any]:
        """Run configuration of the indexed mining result."""
        return dict(self._config)

    def __len__(self) -> int:
        return len(self._patterns)

    def __contains__(self, pid: str) -> bool:
        return pid in self._patterns

    def get(self, pid: str) -> FlippingPattern | None:
        return self._patterns.get(pid)

    def ids(self) -> list[str]:
        """All pattern ids, sorted (the deterministic scan order)."""
        return sorted(self._patterns)

    def items(self) -> Iterator[tuple[str, FlippingPattern]]:
        for pid in sorted(self._patterns):
            yield pid, self._patterns[pid]

    def item_postings(self, name: str) -> set[str]:
        """Patterns whose *leaf* itemset contains the item ``name``."""
        return set(self._by_item.get(name, ()))

    def node_postings(self, name: str) -> set[str]:
        """Patterns touching taxonomy node ``name`` at any chain level."""
        return set(self._by_node.get(name, ()))

    def signature_postings(self, signature: str) -> set[str]:
        return set(self._by_signature.get(signature, ()))

    def height_postings(self, lo: int | None, hi: int | None) -> set[str]:
        found: set[str] = set()
        for height, pids in self._by_height.items():
            if lo is not None and height < lo:
                continue
            if hi is not None and height > hi:
                continue
            found |= pids
        return found

    def height_estimate(self, lo: int | None, hi: int | None) -> int:
        return sum(
            len(pids)
            for height, pids in self._by_height.items()
            if (lo is None or height >= lo) and (hi is None or height <= hi)
        )

    def range_bounds(
        self, measure: str, lo: float | None, hi: float | None
    ) -> tuple[int, int]:
        """``[left, right)`` slice of the sorted ``measure`` array
        holding values in the inclusive ``[lo, hi]`` range."""
        array = self._sorted[measure]
        left = (
            0 if lo is None else bisect.bisect_left(array, (float(lo), ""))
        )
        right = (
            len(array)
            if hi is None
            else bisect.bisect_right(array, (float(hi), _ID_CEILING))
        )
        return left, max(left, right)

    def range_postings(
        self, measure: str, lo: float | None, hi: float | None
    ) -> set[str]:
        left, right = self.range_bounds(measure, lo, hi)
        return {pid for _, pid in self._sorted[measure][left:right]}

    def measure_value(self, measure: str, pid: str) -> float:
        return MEASURE_GETTERS[measure](self._patterns[pid])

    def require_version(self, expected: int) -> None:
        """Fail loudly when a reader pinned a different generation."""
        if expected != self._version:
            raise ServeError(
                f"stale store version: reader expected {expected}, "
                f"store is at {self._version}"
            )

    def stats(self) -> dict[str, Any]:
        """Index shape summary (the ``/stats`` endpoint payload)."""
        return {
            "version": self._version,
            "n_patterns": len(self._patterns),
            "n_items_indexed": len(self._by_item),
            "n_nodes_indexed": len(self._by_node),
            "signatures": {
                signature: len(pids)
                for signature, pids in sorted(self._by_signature.items())
            },
            "heights": {
                str(height): len(pids)
                for height, pids in sorted(self._by_height.items())
            },
            "measures": sorted(MEASURE_GETTERS),
        }

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the store as one JSON document, atomically.

        ``path`` may be a directory (the file lands at
        ``path/pattern_store.json``, next to a shard manifest) or an
        explicit file path.  Returns the file written.
        """
        target = _store_file(path)
        payload = {
            "format": STORE_FORMAT,
            "format_version": STORE_FORMAT_VERSION,
            "store_version": self._version,
            "config": self._config,
            "patterns": [
                [_link_to_dict(link) for link in pattern.links]
                for _, pattern in self.items()
            ],
        }
        atomic_write_json(payload, target)
        return target


def _store_file(path: str | Path) -> Path:
    target = Path(path)
    if target.is_dir():
        return target / STORE_FILE_NAME
    return target


def _fingerprint(pattern: FlippingPattern) -> str:
    return json.dumps(
        [_link_to_dict(link) for link in pattern.links], sort_keys=True
    )


def _discard(index: dict, key: Any, pid: str) -> None:
    postings = index.get(key)
    if postings is None:
        return
    postings.discard(pid)
    if not postings:
        del index[key]
