"""Support-counting backends.

The miner asks one question: *how many transactions contain this
(h,k)-itemset?*  Three interchangeable backends answer it:

* :class:`BitmapBackend` (default) — per-level bitsets from
  :class:`~repro.data.vertical.VerticalIndex`; one popcount per
  itemset.  Fastest in pure Python.
* :class:`HorizontalBackend` — scans the level-projected transaction
  list once per *batch* of candidates, mirroring the paper's
  disk-resident sequential-scan cost model (one scan per cell).  Used
  by the backend ablation bench and as an independent cross-check of
  the bitmap arithmetic.
* :class:`NumpyBackend` — per-level boolean matrices; supports of a
  candidate batch are column-AND reductions.  A third independent
  implementation of the same contract, and the vectorized option for
  very wide candidate batches.

All backends implement the batched entry point
:meth:`~CountingBackend.supports_batched`, the unit of work the
engine's executors fan out across workers (see ARCHITECTURE.md):
candidates are counted in deterministic chunks, so a chunk is both
the horizontal backend's "one scan of the disk-resident input" and
the parallel executor's per-worker task.  ``node_supports`` results
are cached per level — the engine's stages and the SIBP device ask
for them repeatedly and must not trigger rescans.

All count *scans* so the harness can report IO-model work alongside
wall-clock time.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Protocol, runtime_checkable

import numpy as np

from repro.data.database import TransactionDatabase
from repro.data.shards import ShardedTransactionStore
from repro.data.vertical import VerticalIndex
from repro.errors import ConfigError, DataError

__all__ = [
    "CountingBackend",
    "BitmapBackend",
    "HorizontalBackend",
    "NumpyBackend",
    "PartitionedBackend",
    "DeltaCounter",
    "ShardBackendPool",
    "make_backend",
    "backend_name_of",
    "iter_chunks",
    "merge_shard_counts",
]


def iter_chunks(
    itemsets: Sequence[tuple[int, ...]], chunk_size: int | None
) -> Iterator[Sequence[tuple[int, ...]]]:
    """Deterministic chunking of a candidate batch.

    ``chunk_size=None`` (or a size covering the whole batch) yields a
    single chunk.  Order is preserved, so merging per-chunk results in
    yield order reproduces the unchunked result exactly.  Invalid
    chunk sizes raise at the call, not on first ``next()``.
    """
    if chunk_size is not None and chunk_size < 1:
        raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
    return _iter_chunks(itemsets, chunk_size)


def _iter_chunks(
    itemsets: Sequence[tuple[int, ...]], chunk_size: int | None
) -> Iterator[Sequence[tuple[int, ...]]]:
    if chunk_size is None or chunk_size >= len(itemsets):
        if itemsets:
            yield itemsets
        return
    for start in range(0, len(itemsets), chunk_size):
        yield itemsets[start : start + chunk_size]


@runtime_checkable
class CountingBackend(Protocol):
    """Protocol implemented by all counting backends."""

    @property
    def scans(self) -> int:
        """Number of (conceptual) full database scans performed."""
        ...

    def node_supports(self, level: int) -> dict[int, int]:
        """Support of every taxonomy node at ``level`` (cached)."""
        ...

    def supports(
        self, level: int, itemsets: Sequence[tuple[int, ...]]
    ) -> dict[tuple[int, ...], int]:
        """Support of each candidate itemset at ``level``."""
        ...

    def supports_batched(
        self,
        level: int,
        itemsets: Sequence[tuple[int, ...]],
        chunk_size: int | None = None,
    ) -> dict[tuple[int, ...], int]:
        """Support of each candidate, counted in deterministic chunks.

        Semantically identical to :meth:`supports` for every chunk
        size; the chunk is the batching/parallelism unit the engine's
        executors dispatch.
        """
        ...


class BitmapBackend:
    """Vertical bitset counting (see :class:`VerticalIndex`)."""

    def __init__(self, database: TransactionDatabase) -> None:
        self._index = VerticalIndex(database)
        self._scans = 1  # building the index reads the database once
        self._node_supports: dict[int, dict[int, int]] = {}

    @property
    def scans(self) -> int:
        return self._scans

    @property
    def index(self) -> VerticalIndex:
        return self._index

    def node_supports(self, level: int) -> dict[int, int]:
        if level not in self._node_supports:
            self._node_supports[level] = self._index.node_supports(level)
        return self._node_supports[level]

    def supports(
        self, level: int, itemsets: Sequence[tuple[int, ...]]
    ) -> dict[tuple[int, ...], int]:
        support = self._index.support
        return {itemset: support(level, itemset) for itemset in itemsets}

    def supports_batched(
        self,
        level: int,
        itemsets: Sequence[tuple[int, ...]],
        chunk_size: int | None = None,
    ) -> dict[tuple[int, ...], int]:
        support = self._index.support
        out: dict[tuple[int, ...], int] = {}
        for chunk in iter_chunks(itemsets, chunk_size):
            for itemset in chunk:
                out[itemset] = support(level, itemset)
        return out


class HorizontalBackend:
    """Sequential-scan counting over level projections.

    Every batch (chunk) walks the projected transaction list exactly
    once, whatever the number of candidates — the paper's "counting by
    sequential scans of disk-resident input data" model.  A chunk is
    one scan, so ``supports_batched`` with a finite ``chunk_size``
    models a candidate set too large for one in-memory pass.
    """

    def __init__(self, database: TransactionDatabase) -> None:
        self._database = database
        self._projections: dict[int, list[frozenset[int]]] = {}
        self._node_supports: dict[int, dict[int, int]] = {}
        self._scans = 0

    @property
    def scans(self) -> int:
        return self._scans

    def _projection(self, level: int) -> list[frozenset[int]]:
        if level not in self._projections:
            self._projections[level] = self._database.project_to_level(level)
        return self._projections[level]

    def node_supports(self, level: int) -> dict[int, int]:
        if level in self._node_supports:
            return self._node_supports[level]
        self._scans += 1
        counts: dict[int, int] = {
            node_id: 0
            for node_id in self._database.taxonomy.nodes_at_level(level)
        }
        for transaction in self._projection(level):
            for node_id in transaction:
                counts[node_id] += 1
        self._node_supports[level] = counts
        return counts

    def supports(
        self, level: int, itemsets: Sequence[tuple[int, ...]]
    ) -> dict[tuple[int, ...], int]:
        self._scans += 1
        counts: dict[tuple[int, ...], int] = {
            itemset: 0 for itemset in itemsets
        }
        if not counts:
            return counts
        candidate_list = list(counts)
        for transaction in self._projection(level):
            for itemset in candidate_list:
                contained = True
                for node_id in itemset:
                    if node_id not in transaction:
                        contained = False
                        break
                if contained:
                    counts[itemset] += 1
        return counts

    def supports_batched(
        self,
        level: int,
        itemsets: Sequence[tuple[int, ...]],
        chunk_size: int | None = None,
    ) -> dict[tuple[int, ...], int]:
        out: dict[tuple[int, ...], int] = {}
        for chunk in iter_chunks(itemsets, chunk_size):
            out.update(self.supports(level, chunk))
        return out


class NumpyBackend:
    """Boolean-matrix counting on NumPy.

    Each level is materialized lazily as an ``(n_transactions,
    n_nodes)`` boolean matrix; a candidate's support is the count of
    rows where all its columns are True.  Functionally identical to
    the other backends (the ablation bench asserts it), with the
    vectorization profile of a column store.  ``supports_batched``
    counts whole chunks with a single gather + AND-reduction, so the
    chunk size bounds the temporary ``(n, chunk, k)`` tensor.
    """

    def __init__(self, database: TransactionDatabase) -> None:
        self._database = database
        self._taxonomy = database.taxonomy
        self._scans = 1  # materializing a level reads the database once
        #: level -> (matrix, node_id -> column)
        self._levels: dict[int, tuple[np.ndarray, dict[int, int]]] = {}
        self._node_supports: dict[int, dict[int, int]] = {}

    @property
    def scans(self) -> int:
        return self._scans

    def _level(self, level: int) -> tuple[np.ndarray, dict[int, int]]:
        if level not in self._levels:
            nodes = self._taxonomy.nodes_at_level(level)
            columns = {node_id: i for i, node_id in enumerate(nodes)}
            matrix = np.zeros(
                (self._database.n_transactions, len(nodes)), dtype=bool
            )
            mapping = self._taxonomy.item_ancestor_map(level)
            for row, transaction in enumerate(self._database):
                for item in transaction:
                    matrix[row, columns[mapping[item]]] = True
            self._levels[level] = (matrix, columns)
        return self._levels[level]

    def node_supports(self, level: int) -> dict[int, int]:
        if level not in self._node_supports:
            matrix, columns = self._level(level)
            sums = matrix.sum(axis=0)
            self._node_supports[level] = {
                node_id: int(sums[col]) for node_id, col in columns.items()
            }
        return self._node_supports[level]

    def _columns_of(
        self, level: int, itemset: tuple[int, ...], columns: dict[int, int]
    ) -> list[int]:
        try:
            return [columns[node_id] for node_id in itemset]
        except KeyError as exc:
            raise DataError(
                f"itemset {itemset} contains a node not at level {level}"
            ) from exc

    def supports(
        self, level: int, itemsets: Sequence[tuple[int, ...]]
    ) -> dict[tuple[int, ...], int]:
        matrix, columns = self._level(level)
        out: dict[tuple[int, ...], int] = {}
        for itemset in itemsets:
            cols = self._columns_of(level, itemset, columns)
            out[itemset] = int(matrix[:, cols].all(axis=1).sum())
        return out

    #: target element count of the (n, run, k) gather temporary; runs
    #: are split so one tensor op stays around ~256 MiB of bools
    _GATHER_BUDGET = 256 * 1024 * 1024

    def supports_batched(
        self,
        level: int,
        itemsets: Sequence[tuple[int, ...]],
        chunk_size: int | None = None,
    ) -> dict[tuple[int, ...], int]:
        matrix, columns = self._level(level)
        n = max(1, matrix.shape[0])
        out: dict[tuple[int, ...], int] = {}
        for chunk in iter_chunks(itemsets, chunk_size):
            # One gather per uniform-k run within the chunk: cells have
            # uniform k, so this is normally one tensor op per chunk.
            # Runs are additionally capped so chunk_size=None cannot
            # materialize an unbounded (n, run, k) temporary.
            start = 0
            while start < len(chunk):
                k = len(chunk[start])
                stop = start
                while stop < len(chunk) and len(chunk[stop]) == k:
                    stop += 1
                cap = max(1, self._GATHER_BUDGET // (n * max(1, k)))
                while start < stop:
                    run = chunk[start : min(stop, start + cap)]
                    cols = np.array(
                        [
                            self._columns_of(level, itemset, columns)
                            for itemset in run
                        ],
                        dtype=np.intp,
                    )
                    counts = matrix[:, cols].all(axis=2).sum(axis=0)
                    for itemset, count in zip(run, counts):
                        out[itemset] = int(count)
                    start += len(run)
        return out


def merge_shard_counts(
    merged: dict[tuple[int, ...], int],
    shard_counts: dict[tuple[int, ...], int],
) -> None:
    """Fold one shard's counts into the global tally, in place.

    Shards are disjoint subsets of the transactions, so exact global
    support is the plain integer sum — the merge half of the SON
    partition-and-merge scheme.
    """
    for itemset, count in shard_counts.items():
        merged[itemset] = merged.get(itemset, 0) + count


class ShardBackendPool:
    """Memory-budgeted residency of per-shard counting backends.

    The pool lazily builds ``inner``-type backends over the shards of
    a :class:`~repro.data.shards.ShardedTransactionStore` and keeps at
    most a budget's worth of them resident, evicting in LRU order.
    Per-shard resident cost is estimated from the shard file's on-disk
    size times a fixed expansion factor — crude, but deterministic,
    and it is the bound that matters: with ``memory_budget_mb`` set,
    resident index structures stay proportional to the budget instead
    of the dataset.  Scans performed by evicted backends are retained
    so the store-wide ``scans`` counter stays truthful.

    Two residency guarantees hold for *any* budget, including one
    smaller than a single shard:

    * the shard being admitted is always admitted (the pool runs
      temporarily over budget rather than serving nothing), so there
      is always at least one resident backend after an access;
    * a *pinned* shard — one currently being counted through
      :meth:`iter_backends` — is never chosen as an eviction victim,
      so re-entrant pool access (another shard faulted in mid-count)
      cannot evict and silently rebuild the backend in use.
    """

    #: estimated resident bytes per on-disk shard byte (index
    #: structures, python object overhead)
    RESIDENCY_FACTOR = 16

    def __init__(
        self,
        store: ShardedTransactionStore,
        inner: str = "bitmap",
        memory_budget_mb: float | None = None,
    ) -> None:
        if inner not in _BACKENDS:
            known = ", ".join(sorted(_BACKENDS))
            raise ConfigError(
                f"unknown counting backend {inner!r}; known: {known}"
            )
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise ConfigError(
                f"memory_budget_mb must be > 0, got {memory_budget_mb}"
            )
        self._store = store
        self._inner = inner
        self._budget_bytes = (
            None
            if memory_budget_mb is None
            else int(memory_budget_mb * 1024 * 1024)
        )
        #: insertion order == LRU order (moved on access)
        self._resident: dict[int, CountingBackend | None] = {}
        self._resident_bytes: dict[int, int] = {}
        #: shards currently handed out by iter_backends; exempt from
        #: eviction until the consumer is done with them
        self._pinned: set[int] = set()
        self._retired_scans = 0
        #: builds beyond the first per shard == evictions paid for
        self.rebuilds = 0
        self._built: set[int] = set()

    @property
    def store(self) -> ShardedTransactionStore:
        return self._store

    @property
    def inner_name(self) -> str:
        return self._inner

    @property
    def resident_shards(self) -> list[int]:
        """Currently resident shard indexes (LRU first)."""
        return list(self._resident)

    @property
    def scans(self) -> int:
        """Scans across every backend the pool ever built."""
        total = self._retired_scans
        for backend in self._resident.values():
            if backend is not None:
                total += backend.scans
        return total

    def _estimate_bytes(self, index: int) -> int:
        try:
            size = self._store.shard_path(index).stat().st_size
        except OSError:
            size = 0
        return max(1, size) * self.RESIDENCY_FACTOR

    def _evict_for(self, incoming_bytes: int) -> None:
        if self._budget_bytes is None:
            return
        while (
            sum(self._resident_bytes.values()) + incoming_bytes
            > self._budget_bytes
        ):
            victim = next(
                (
                    index
                    for index in self._resident
                    if index not in self._pinned
                ),
                None,
            )
            if victim is None:
                # Only pinned shards (or nothing) left: run over budget
                # rather than evict a backend that is mid-count.
                return
            backend = self._resident.pop(victim)
            self._resident_bytes.pop(victim)
            if backend is not None:
                self._retired_scans += backend.scans
            # the budget always admits at least the incoming shard

    def backend(self, index: int) -> CountingBackend | None:
        """The backend of one shard (``None`` for an empty shard),
        building and evicting as the budget requires."""
        if index in self._resident:
            # refresh LRU position
            backend = self._resident.pop(index)
            self._resident[index] = backend
            return backend
        database = self._store.shard_database(index)
        if database is None:
            self._resident[index] = None
            self._resident_bytes[index] = 0
            return None
        estimate = self._estimate_bytes(index)
        self._evict_for(estimate)
        backend = make_backend(self._inner, database)
        if index in self._built:
            self.rebuilds += 1
        self._built.add(index)
        self._resident[index] = backend
        self._resident_bytes[index] = estimate
        return backend

    def iter_backends(self) -> Iterator[tuple[int, CountingBackend]]:
        """Stream ``(shard_index, backend)`` over non-empty shards.

        The yielded shard is pinned while the consumer holds it, so
        nested pool accesses (or another iteration) cannot evict the
        backend out from under a count in progress.
        """
        for index in range(self._store.n_shards):
            backend = self.backend(index)
            if backend is None:
                continue
            self._pinned.add(index)
            try:
                yield index, backend
            finally:
                self._pinned.discard(index)


class PartitionedBackend:
    """Partition-and-merge counting over a sharded store.

    Implements the :class:`CountingBackend` protocol by instantiating
    one *inner* backend (``bitmap``, ``horizontal`` or ``numpy``) per
    shard and summing per-shard counts into exact global supports —
    shards partition the transactions, so the sums equal what a
    monolithic backend over the whole database would report, and the
    mining output is byte-identical (the engine parity tests assert
    it).  Shard residency is delegated to :class:`ShardBackendPool`,
    so the working set follows ``memory_budget_mb``, not the dataset.
    """

    def __init__(
        self,
        store: ShardedTransactionStore,
        inner: str = "bitmap",
        memory_budget_mb: float | None = None,
    ) -> None:
        self._pool = ShardBackendPool(
            store, inner=inner, memory_budget_mb=memory_budget_mb
        )
        self._taxonomy = store.taxonomy
        self._node_supports: dict[int, dict[int, int]] = {}
        self._memory_budget_mb = memory_budget_mb

    @property
    def store(self) -> ShardedTransactionStore:
        return self._pool.store

    @property
    def pool(self) -> ShardBackendPool:
        return self._pool

    @property
    def inner_name(self) -> str:
        return self._pool.inner_name

    @property
    def n_shards(self) -> int:
        return self._pool.store.n_shards

    @property
    def memory_budget_mb(self) -> float | None:
        return self._memory_budget_mb

    @property
    def scans(self) -> int:
        return self._pool.scans

    def node_supports(self, level: int) -> dict[int, int]:
        if level not in self._node_supports:
            # One residency pass over the shards computes *every*
            # mining level's node supports: the miner's preparation
            # asks for all of them anyway, and under a tight memory
            # budget a per-level pass would evict and re-read each
            # shard once per taxonomy level (height x n_shards I/O
            # instead of n_shards).  Out-of-range / level-0 requests
            # fall back to a single-level pass (and the taxonomy's
            # own error for invalid levels).
            levels = (
                range(1, self._taxonomy.height + 1)
                if 1 <= level <= self._taxonomy.height
                else [level]
            )
            merged = {
                lvl: {
                    node_id: 0
                    for node_id in self._taxonomy.nodes_at_level(lvl)
                }
                for lvl in levels
            }
            for _index, backend in self._pool.iter_backends():
                for lvl, counts in merged.items():
                    for node_id, count in backend.node_supports(
                        lvl
                    ).items():
                        counts[node_id] += count
            self._node_supports.update(merged)
        return self._node_supports[level]

    def shard_supports_batched(
        self,
        level: int,
        itemsets: Sequence[tuple[int, ...]],
        chunk_size: int | None = None,
    ) -> Iterator[tuple[int, dict[tuple[int, ...], int]]]:
        """Per-shard counts of one candidate batch (empty shards are
        skipped — they contribute zero to every support)."""
        for index, backend in self._pool.iter_backends():
            yield index, backend.supports_batched(
                level, itemsets, chunk_size=chunk_size
            )

    def supports(
        self, level: int, itemsets: Sequence[tuple[int, ...]]
    ) -> dict[tuple[int, ...], int]:
        return self.supports_batched(level, itemsets)

    def supports_batched(
        self,
        level: int,
        itemsets: Sequence[tuple[int, ...]],
        chunk_size: int | None = None,
    ) -> dict[tuple[int, ...], int]:
        merged: dict[tuple[int, ...], int] = {
            itemset: 0 for itemset in itemsets
        }
        for _index, counts in self.shard_supports_batched(
            level, itemsets, chunk_size=chunk_size
        ):
            merge_shard_counts(merged, counts)
        return merged


class DeltaCounter(PartitionedBackend):
    """Incremental (SON-style, exact) counting over a *growing* store.

    A :class:`PartitionedBackend` whose per-level node supports and
    per-itemset supports are **cached and maintained under deltas**:
    when the underlying :class:`~repro.data.shards.ShardedTransactionStore`
    grows through ``append_batch``, :meth:`refresh` counts the *delta
    shards only* and folds their contributions into the cached global
    tallies.  Shards partition the transactions, so cached support +
    delta support is the exact global support — the same SON merge the
    partitioned path already relies on, applied over time instead of
    over space.

    Every public counting entry point refreshes first, so a counter is
    never served stale: cache hits are dict lookups, cache misses are
    counted over all shards (through the memory-budgeted pool) and
    memoized.  Re-mining after a delta therefore pays

    * one backend build + one count pass over the delta shards, and
    * full counting only for candidates never seen before,

    instead of re-reading and re-counting the whole store — the cost
    profile :class:`~repro.engine.incremental.IncrementalMiner` and
    the ``repro bench incremental`` harness quantify.

    With ``memory_budget_mb`` set, the supports cache honors the
    budget too: once its estimated footprint reaches the budget, new
    entries are simply not memoized (counts stay exact — uncached
    candidates are recounted on demand), so the partitioned path's
    bounded-memory contract survives the caching layer.
    """

    #: executors consult this to route counting through the cache
    serves_cached_supports = True

    #: rough resident bytes per cached itemset entry (tuple key,
    #: ints, dict slot) — only used to turn ``memory_budget_mb``
    #: into a cache-size cap, so exactness does not matter
    CACHE_BYTES_PER_ITEMSET = 200

    def __init__(
        self,
        store: ShardedTransactionStore,
        inner: str = "bitmap",
        memory_budget_mb: float | None = None,
    ) -> None:
        super().__init__(
            store, inner=inner, memory_budget_mb=memory_budget_mb
        )
        #: shards [0, _counted) are folded into every cache below
        self._counted = store.n_shards
        #: level -> {itemset -> exact support over counted shards}
        self._supports_cache: dict[
            int, dict[tuple[int, ...], int]
        ] = {}
        self._max_cached_itemsets = (
            None
            if memory_budget_mb is None
            else max(
                1024,
                int(memory_budget_mb * 1024 * 1024)
                // self.CACHE_BYTES_PER_ITEMSET,
            )
        )
        #: instrumentation (cumulative across refreshes/runs)
        self.cache_hits = 0
        self.cache_misses = 0
        self.refreshes = 0
        self.delta_shards_counted = 0

    # ------------------------------------------------------------------
    # delta maintenance
    # ------------------------------------------------------------------

    @property
    def counted_shards(self) -> int:
        """Number of shards folded into the caches so far."""
        return self._counted

    @property
    def cached_itemsets(self) -> int:
        """Itemsets held in the supports cache (all levels)."""
        return sum(len(cache) for cache in self._supports_cache.values())

    def refresh(self) -> list[int]:
        """Fold shards appended since the last refresh into the caches.

        Counts node supports (for every cached level) and every cached
        itemset over the *new shards only*, adds the delta counts to
        the cached global tallies, and returns the new shard indexes.
        A no-op (returning ``[]``) when the store has not grown.
        """
        n_shards = self._pool.store.n_shards
        if n_shards == self._counted:
            return []
        new_indices = list(range(self._counted, n_shards))
        # Advance first: a cache miss during this refresh (impossible
        # today, but cheap insurance) must count over the new total.
        self._counted = n_shards
        self.refreshes += 1
        for index in new_indices:
            backend = self._pool.backend(index)
            if backend is None:  # empty shard: zero contribution
                continue
            self.delta_shards_counted += 1
            for level, counts in self._node_supports.items():
                for node_id, count in backend.node_supports(level).items():
                    counts[node_id] += count
            for level, cache in self._supports_cache.items():
                if not cache:
                    continue
                delta = backend.supports_batched(level, list(cache))
                for itemset, count in delta.items():
                    cache[itemset] += count
        return new_indices

    # ------------------------------------------------------------------
    # cache plumbing (shared with the partitioned executor)
    # ------------------------------------------------------------------

    def cached_split(
        self, level: int, itemsets: Sequence[tuple[int, ...]]
    ) -> tuple[dict[tuple[int, ...], int], list[tuple[int, ...]]]:
        """Split a batch into cached supports and uncached itemsets."""
        cache = self._supports_cache.setdefault(level, {})
        hits: dict[tuple[int, ...], int] = {}
        misses: list[tuple[int, ...]] = []
        for itemset in itemsets:
            count = cache.get(itemset)
            if count is None:
                misses.append(itemset)
            else:
                hits[itemset] = count
        self.cache_hits += len(hits)
        self.cache_misses += len(misses)
        return hits, misses

    def store_counts(
        self, level: int, counts: dict[tuple[int, ...], int]
    ) -> None:
        """Memoize freshly merged global counts (must cover all
        currently counted shards — call :meth:`refresh` first).
        Entries beyond the budget-derived cache cap are dropped, not
        stored: they will be recounted on demand, exactly."""
        cache = self._supports_cache.setdefault(level, {})
        if self._max_cached_itemsets is None:
            cache.update(counts)
            return
        room = self._max_cached_itemsets - self.cached_itemsets
        if room <= 0:
            return
        for itemset, count in counts.items():
            cache[itemset] = count
            room -= 1
            if room <= 0:
                break

    def serve(
        self,
        level: int,
        itemsets: Sequence[tuple[int, ...]],
        *,
        chunk_size: int | None = None,
        fan: "Callable[[int, list[tuple[int, ...]]], Iterable[tuple[int, dict[tuple[int, ...], int]]]] | None" = None,
    ) -> dict[tuple[int, ...], int]:
        """The cache-serving counting envelope: refresh, split into
        hits/misses, count the misses per shard (through ``fan`` —
        e.g. the partitioned executor's worker fan-out — or the
        in-process shard loop), memoize, and return exact supports in
        the request's itemset order.  The single implementation behind
        both :meth:`supports_batched` and the executor path."""
        self.refresh()
        hits, misses = self.cached_split(level, itemsets)
        if misses:
            merged: dict[tuple[int, ...], int] = {
                itemset: 0 for itemset in misses
            }
            shard_counts = (
                self.shard_supports_batched(
                    level, misses, chunk_size=chunk_size
                )
                if fan is None
                else fan(level, misses)
            )
            for _index, counts in shard_counts:
                merge_shard_counts(merged, counts)
            self.store_counts(level, merged)
            hits.update(merged)
        return {itemset: hits[itemset] for itemset in itemsets}

    # ------------------------------------------------------------------
    # CountingBackend protocol (cache-serving overrides)
    # ------------------------------------------------------------------

    def node_supports(self, level: int) -> dict[int, int]:
        self.refresh()
        return super().node_supports(level)

    def supports_batched(
        self,
        level: int,
        itemsets: Sequence[tuple[int, ...]],
        chunk_size: int | None = None,
    ) -> dict[tuple[int, ...], int]:
        return self.serve(level, itemsets, chunk_size=chunk_size)


_BACKENDS = {
    "bitmap": BitmapBackend,
    "horizontal": HorizontalBackend,
    "numpy": NumpyBackend,
}


def make_backend(
    name: str, database: TransactionDatabase
) -> CountingBackend:
    """Instantiate a backend by name (``bitmap``, ``horizontal`` or
    ``numpy``)."""
    try:
        factory = _BACKENDS[name.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise ConfigError(
            f"unknown counting backend {name!r}; known: {known}"
        ) from None
    return factory(database)


def backend_name_of(backend: CountingBackend) -> str:
    """Registry name of a backend instance (for worker re-hydration)."""
    for name, cls in _BACKENDS.items():
        if type(backend) is cls:
            return name
    raise ConfigError(
        f"backend {type(backend).__name__} is not registered; "
        "parallel execution needs a registered backend to re-hydrate "
        "worker processes"
    )
