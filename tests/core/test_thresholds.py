"""Unit tests for repro.core.thresholds."""

from __future__ import annotations

import pytest

from repro.core.thresholds import Thresholds
from repro.errors import ConfigError


class TestValidation:
    def test_valid_construction(self):
        th = Thresholds(gamma=0.3, epsilon=0.1, min_support=0.01)
        assert th.gamma == 0.3

    def test_gamma_range(self):
        with pytest.raises(ConfigError, match="gamma"):
            Thresholds(gamma=0.0, epsilon=0.0)
        with pytest.raises(ConfigError, match="gamma"):
            Thresholds(gamma=1.5, epsilon=0.1)

    def test_epsilon_range(self):
        with pytest.raises(ConfigError, match="epsilon"):
            Thresholds(gamma=0.5, epsilon=-0.1)
        with pytest.raises(ConfigError, match="epsilon"):
            Thresholds(gamma=0.5, epsilon=1.0)

    def test_epsilon_below_gamma(self):
        with pytest.raises(ConfigError, match="below gamma"):
            Thresholds(gamma=0.3, epsilon=0.3)

    def test_mixed_kinds_rejected(self):
        with pytest.raises(ConfigError, match="mixes"):
            Thresholds(gamma=0.3, epsilon=0.1, min_support=[0.1, 5])

    def test_fraction_bounds(self):
        with pytest.raises(ConfigError, match="fractional"):
            Thresholds(gamma=0.3, epsilon=0.1, min_support=[0.5, 0.0])

    def test_absolute_bounds(self):
        with pytest.raises(ConfigError, match="absolute"):
            Thresholds(gamma=0.3, epsilon=0.1, min_support=0)

    def test_bool_rejected(self):
        with pytest.raises(ConfigError, match="bool"):
            Thresholds(gamma=0.3, epsilon=0.1, min_support=True)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            Thresholds(gamma=0.3, epsilon=0.1, min_support=[])

    def test_non_increasing_enforced(self):
        # Paper Section 2.2: thresholds fall as levels get more specific.
        with pytest.raises(ConfigError, match="non-increasing"):
            Thresholds(gamma=0.3, epsilon=0.1, min_support=[0.001, 0.01])

    def test_equal_supports_allowed(self):
        Thresholds(gamma=0.3, epsilon=0.1, min_support=[0.05, 0.05, 0.05])


class TestResolve:
    def test_scalar_replicates(self):
        th = Thresholds(gamma=0.3, epsilon=0.1, min_support=0.01)
        resolved = th.resolve(height=4, n_transactions=1000)
        assert resolved.min_counts == (10, 10, 10, 10)

    def test_fractions_ceil(self):
        th = Thresholds(gamma=0.3, epsilon=0.1, min_support=[0.015, 0.001])
        resolved = th.resolve(height=2, n_transactions=1000)
        assert resolved.min_counts == (15, 1)

    def test_fraction_floor_is_one(self):
        th = Thresholds(gamma=0.3, epsilon=0.1, min_support=0.00001)
        resolved = th.resolve(height=2, n_transactions=100)
        assert resolved.min_counts == (1, 1)

    def test_absolute_passthrough(self):
        th = Thresholds(gamma=0.3, epsilon=0.1, min_support=[10, 5, 2])
        resolved = th.resolve(height=3, n_transactions=1000)
        assert resolved.min_counts == (10, 5, 2)

    def test_wrong_length_rejected(self):
        th = Thresholds(gamma=0.3, epsilon=0.1, min_support=[10, 5])
        with pytest.raises(ConfigError, match="levels"):
            th.resolve(height=3, n_transactions=100)

    def test_bad_height(self):
        th = Thresholds(gamma=0.3, epsilon=0.1)
        with pytest.raises(ConfigError):
            th.resolve(height=0, n_transactions=100)

    def test_empty_database(self):
        th = Thresholds(gamma=0.3, epsilon=0.1)
        with pytest.raises(ConfigError):
            th.resolve(height=2, n_transactions=0)

    def test_min_count_accessor(self):
        th = Thresholds(gamma=0.3, epsilon=0.1, min_support=[10, 5])
        resolved = th.resolve(height=2, n_transactions=100)
        assert resolved.min_count(1) == 10
        assert resolved.min_count(2) == 5
        with pytest.raises(ConfigError):
            resolved.min_count(3)

    def test_describe(self):
        th = Thresholds(gamma=0.3, epsilon=0.1, min_support=0.01)
        assert "gamma=0.3" in th.describe()
