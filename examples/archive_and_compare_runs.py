#!/usr/bin/env python3
"""Archive mining runs to JSON and diff them across configurations.

A downstream workflow the library supports out of the box: run the
miner under several measures / backends, save each result, reload,
and compare — useful for regression-tracking pattern sets across code
or data versions without re-mining.

Run:  python examples/archive_and_compare_runs.py
"""

import tempfile
from pathlib import Path

from repro import load_result, mine_flipping_patterns, save_result
from repro.core.measures import MEASURES
from repro.datasets.groceries import GROCERIES_THRESHOLDS, generate_groceries

database = generate_groceries(scale=0.3)
archive = Path(tempfile.mkdtemp(prefix="flipper-runs-"))
print(f"archiving runs under {archive}\n")

# ---------------------------------------------------------------------------
# 1. One run per null-invariant measure, archived as JSON
# ---------------------------------------------------------------------------
for name in MEASURES:
    result = mine_flipping_patterns(
        database, GROCERIES_THRESHOLDS, measure=name
    )
    save_result(result, archive / f"{name}.json")
    print(
        f"    {name:<15} {len(result.patterns):>3} patterns, "
        f"{result.stats.elapsed_seconds:.3f}s, "
        f"{result.stats.total_candidates} candidates"
    )

# ---------------------------------------------------------------------------
# 2. Reload and diff: which patterns does every measure agree on?
# ---------------------------------------------------------------------------
loaded = {name: load_result(archive / f"{name}.json") for name in MEASURES}
pattern_sets = {
    name: {pattern.leaf_names for pattern in result.patterns}
    for name, result in loaded.items()
}
consensus = set.intersection(*pattern_sets.values())
union = set.union(*pattern_sets.values())
print()
print(
    f"{len(consensus)} patterns found by every measure, "
    f"{len(union)} by at least one:"
)
for names in sorted(consensus):
    print("    consensus:", ", ".join(names))
for names in sorted(union - consensus):
    finders = [m for m, s in pattern_sets.items() if names in s]
    print(f"    only {'/'.join(finders)}:", ", ".join(names))

# ---------------------------------------------------------------------------
# 3. Round-trip fidelity: the archive is the run
# ---------------------------------------------------------------------------
kulc = loaded["kulczynski"]
fresh = mine_flipping_patterns(database, GROCERIES_THRESHOLDS)
assert kulc.patterns == fresh.patterns
print()
print("round-trip check: reloaded patterns byte-identical to a fresh run")
