"""Unit tests for repro.bench.experiments at a tiny scale.

The full-size runs live in benchmarks/; here each runner is exercised
end-to-end at REPRO_BENCH_SCALE=0.005 (synthetic N = 500) so the test
suite stays fast while covering the reporting and shape-check code.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.005")


class TestFig8Runners:
    def test_fig8a_subset(self):
        from repro.bench import run_fig8a

        report, result = run_fig8a(profiles=["thr1", "thr5"])
        assert "Fig. 8(a)" in report
        assert result.values == ["thr1", "thr5"]
        assert set(result.methods) == {
            "BASIC",
            "FLIPPING",
            "FLIPPING+TPG",
            "FLIPPING+TPG+SIBP",
        }

    def test_fig8b_two_sizes(self):
        from repro.bench import run_fig8b

        report, result = run_fig8b(multipliers=(1.0, 2.0))
        assert "Fig. 8(b)" in report
        assert len(result.metric("BASIC", "seconds")) == 2

    def test_fig8c_two_widths(self):
        from repro.bench import run_fig8c

        report, result = run_fig8c(widths=(5, 7))
        assert "Fig. 8(c)" in report
        assert result.values == [5, 7]

    def test_fig8d_two_profiles(self):
        from repro.bench import run_fig8d

        report, result = run_fig8d(profiles=[(0.3, 0.1), (0.6, 0.1)])
        assert "Fig. 8(d)" in report
        basic = result.metric("BASIC", "candidates")
        assert basic[0] == basic[1]  # BASIC ignores (gamma, epsilon)


class TestRealDataRunners:
    def test_real_datasets_fixture(self):
        from repro.bench import real_datasets

        triples = real_datasets()
        names = [name for name, _db, _th in triples]
        assert names == ["GROCERIES", "CENSUS", "MEDLINE"]
        for _name, database, thresholds in triples:
            assert database.n_transactions > 0
            assert thresholds.gamma > thresholds.epsilon

    def test_fig9a(self):
        from repro.bench import run_fig9a

        report, data = run_fig9a()
        assert "Fig. 9(a)" in report
        for name, records in data.items():
            assert records[1].candidates <= records[0].candidates, name

    def test_fig9b(self):
        from repro.bench import run_fig9b

        report, data = run_fig9b()
        assert "Fig. 9(b)" in report
        for _name, records in data.items():
            assert all(r.peak_memory_bytes for r in records)

    def test_table4(self):
        from repro.bench import run_table4

        report, data = run_table4()
        assert "Table 4" in report
        assert [row["dataset"] for row in data] == [
            "GROCERIES",
            "CENSUS",
            "MEDLINE",
        ]
        for row in data:
            assert row["flips"] > 0


class TestTable1Runner:
    def test_all_checks_pass(self):
        from repro.bench import run_table1

        report, _data = run_table1()
        assert "[FAIL]" not in report
