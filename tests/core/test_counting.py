"""Unit tests for repro.core.counting: all backends must agree."""

from __future__ import annotations

import itertools

import pytest

from repro.core.counting import (
    BitmapBackend,
    HorizontalBackend,
    NumpyBackend,
    make_backend,
)
from repro.errors import ConfigError, DataError

ALL_BACKENDS = [BitmapBackend, HorizontalBackend, NumpyBackend]


class TestFactory:
    def test_known_names(self, example3_db):
        assert isinstance(make_backend("bitmap", example3_db), BitmapBackend)
        assert isinstance(
            make_backend("Horizontal", example3_db), HorizontalBackend
        )
        assert isinstance(make_backend("numpy", example3_db), NumpyBackend)

    def test_unknown_rejected(self, example3_db):
        with pytest.raises(ConfigError, match="unknown counting backend"):
            make_backend("gpu", example3_db)


class TestAgreement:
    @pytest.mark.parametrize("other_cls", [HorizontalBackend, NumpyBackend])
    def test_node_supports_agree(self, example3_db, other_cls):
        bitmap = BitmapBackend(example3_db)
        other = other_cls(example3_db)
        for level in (1, 2, 3):
            assert bitmap.node_supports(level) == other.node_supports(level)

    @pytest.mark.parametrize("other_cls", [HorizontalBackend, NumpyBackend])
    def test_itemset_supports_agree(self, example3_db, other_cls):
        bitmap = BitmapBackend(example3_db)
        other = other_cls(example3_db)
        tax = example3_db.taxonomy
        for level in (1, 2, 3):
            nodes = tax.nodes_at_level(level)
            candidates = [
                tuple(sorted(pair))
                for pair in itertools.combinations(nodes, 2)
            ]
            assert bitmap.supports(level, candidates) == other.supports(
                level, candidates
            )

    @pytest.mark.parametrize("other_cls", [HorizontalBackend, NumpyBackend])
    def test_triple_supports_agree(self, random_db, other_cls):
        bitmap = BitmapBackend(random_db)
        other = other_cls(random_db)
        tax = random_db.taxonomy
        nodes = tax.nodes_at_level(2)
        candidates = [
            tuple(sorted(t)) for t in itertools.combinations(nodes, 3)
        ]
        assert bitmap.supports(2, candidates) == other.supports(2, candidates)


class TestNumpyBackend:
    def test_wrong_level_node_rejected(self, example3_db):
        backend = NumpyBackend(example3_db)
        level1 = example3_db.taxonomy.nodes_at_level(1)
        with pytest.raises(DataError):
            backend.supports(2, [tuple(sorted(level1[:2]))])

    def test_empty_batch(self, example3_db):
        backend = NumpyBackend(example3_db)
        assert backend.supports(1, []) == {}

    def test_levels_materialized_lazily(self, example3_db):
        backend = NumpyBackend(example3_db)
        assert backend._levels == {}
        backend.node_supports(2)
        assert set(backend._levels) == {2}


class TestScanAccounting:
    def test_horizontal_counts_scans(self, example3_db):
        backend = HorizontalBackend(example3_db)
        assert backend.scans == 0
        backend.node_supports(1)
        assert backend.scans == 1
        nodes = example3_db.taxonomy.nodes_at_level(1)
        backend.supports(1, [tuple(sorted(nodes))])
        backend.supports(1, [])
        assert backend.scans == 3

    @pytest.mark.parametrize("backend_cls", [BitmapBackend, NumpyBackend])
    def test_index_backends_single_build_scan(self, example3_db, backend_cls):
        backend = backend_cls(example3_db)
        backend.node_supports(1)
        backend.supports(1, [])
        assert backend.scans == 1


class TestMinerIntegration:
    @pytest.mark.parametrize("name", ["bitmap", "horizontal", "numpy"])
    def test_all_backends_find_the_toy_pattern(
        self, example3_db, example3_thresholds, name
    ):
        from repro import mine_flipping_patterns

        result = mine_flipping_patterns(
            example3_db, example3_thresholds, backend=name
        )
        assert [p.leaf_names for p in result.patterns] == [("a11", "b11")]
