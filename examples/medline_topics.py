#!/usr/bin/env python3
"""Research-gap discovery on the MEDLINE simulator (paper Fig. 12).

The paper reads flipping patterns over MeSH topics as research
suggestions:

* *underrepresented combinations* — topic pairs whose parent areas
  are studied together while the specific pair is not (negative leaf
  under positive categories): candidate new research topics;
* *surprising bridges* — pairs studied together although their areas
  are otherwise unrelated (positive leaf under negative categories):
  existing cross-disciplinary links worth formalizing.

Run:  python examples/medline_topics.py
"""

from repro import Label, mine_flipping_patterns, top_k_most_flipping
from repro.datasets import MEDLINE_THRESHOLDS, generate_medline

database = generate_medline(scale=0.2)
print(database.describe())
print(f"thresholds: {MEDLINE_THRESHOLDS.describe()}")
print()

result = mine_flipping_patterns(database, MEDLINE_THRESHOLDS)
print(f"{len(result.patterns)} flipping pattern(s)")
print()

gaps = [
    pattern
    for pattern in result.patterns
    if pattern.bottom_label is Label.NEGATIVE
]
bridges = [
    pattern
    for pattern in result.patterns
    if pattern.bottom_label is Label.POSITIVE
]

print("=== underrepresented combinations (research gaps) ===")
for pattern in gaps:
    leaf = pattern.leaf_link
    parent = pattern.links[-2]
    print(
        f"* {' + '.join(leaf.names)}: their areas "
        f"({' + '.join(parent.names)}) are studied together "
        f"(corr {parent.correlation:.2f}) but this specific combination "
        f"is rare (corr {leaf.correlation:.2f}) - a candidate topic."
    )
print()

print("=== surprising cross-disciplinary bridges ===")
for pattern in bridges:
    leaf = pattern.leaf_link
    parent = pattern.links[-2]
    print(
        f"* {' + '.join(leaf.names)}: studied together "
        f"(corr {leaf.correlation:.2f}) although their areas "
        f"({' + '.join(parent.names)}) are not (corr {parent.correlation:.2f})."
    )
print()

print("=== sharpest flips (top 3 by bottleneck gap) ===")
for pattern in top_k_most_flipping(result, k=3):
    print(f"* {pattern}  min-gap={pattern.min_gap:.3f}")
