"""Benchmark harness: profiles, sweep machinery, reports, and one
runner per table/figure of the paper's evaluation."""

from repro.bench.approx import run_approx_bench
from repro.bench.engine import run_engine_smoke
from repro.bench.incremental import run_incremental_bench
from repro.bench.partition import run_partition_bench
from repro.bench.serve import run_serve_bench
from repro.bench.experiments import (
    EXPERIMENTS,
    real_datasets,
    run_fig8a,
    run_fig8b,
    run_fig8c,
    run_fig8d,
    run_fig9a,
    run_fig9b,
    run_table1,
    run_table4,
)
from repro.bench.chart import ascii_chart, sweep_chart
from repro.bench.harness import (
    LADDER,
    RunRecord,
    SweepResult,
    run_ladder,
    run_method,
    sweep,
)
from repro.bench.profiles import (
    CORR_PROFILES,
    MINSUP_PROFILES,
    bench_config,
    bench_scale,
    thresholds_for_profile,
)
from repro.bench.report import (
    ShapeCheck,
    check_ladder_ordering,
    check_monotone_series,
    format_table,
    render_checks,
    series_table,
)

__all__ = [
    "EXPERIMENTS",
    "run_fig8a",
    "run_fig8b",
    "run_fig8c",
    "run_fig8d",
    "run_fig9a",
    "run_fig9b",
    "run_table1",
    "run_table4",
    "run_engine_smoke",
    "run_partition_bench",
    "run_incremental_bench",
    "run_serve_bench",
    "run_approx_bench",
    "real_datasets",
    "LADDER",
    "RunRecord",
    "SweepResult",
    "run_method",
    "run_ladder",
    "sweep",
    "MINSUP_PROFILES",
    "CORR_PROFILES",
    "bench_config",
    "bench_scale",
    "thresholds_for_profile",
    "ShapeCheck",
    "check_ladder_ordering",
    "check_monotone_series",
    "format_table",
    "series_table",
    "render_checks",
    "ascii_chart",
    "sweep_chart",
]
