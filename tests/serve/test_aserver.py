"""The asyncio front end: lifecycle, parity, backpressure, drain."""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.core.patterns import MiningResult
from repro.errors import ServeError
from repro.serve import (
    AsyncPatternServer,
    PatternAPI,
    PatternStore,
    QueryEngine,
)


def _get(server, target, headers=None):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request("GET", target, headers=headers or {})
        response = conn.getresponse()
        return response.status, response.read(), dict(response.headers)
    finally:
        conn.close()


def _post(server, target, payload):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        conn.request("POST", target, body=json.dumps(payload).encode())
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class _GatedMiner:
    """A miner whose update blocks until the test opens the gate."""

    def __init__(self, result: MiningResult) -> None:
        self._result = result
        self.entered = threading.Event()
        self.gate = threading.Event()

    def update(self, transactions) -> MiningResult:
        self.entered.set()
        assert self.gate.wait(timeout=30), "test never opened the gate"
        return self._result


class TestLifecycle:
    def test_port_unknown_before_start(self, corpus_store):
        server = AsyncPatternServer(corpus_store)
        with pytest.raises(ServeError, match="not started"):
            _ = server.port

    def test_double_start_rejected(self, corpus_store):
        with (
            AsyncPatternServer(corpus_store) as server,
            pytest.raises(ServeError, match="already started"),
        ):
            server.start()

    def test_close_is_idempotent_and_frees_the_port(self, corpus_store):
        server = AsyncPatternServer(corpus_store).start()
        port = server.port
        status, _, _ = _get(server, "/v1/healthz")
        assert status == 200
        server.close()
        server.close()  # second close is a no-op
        rebound = AsyncPatternServer(corpus_store, port=port)
        try:
            rebound.start()
            status, body, _ = _get(rebound, "/v1/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
        finally:
            rebound.close()

    def test_reuse_port_shares_one_socket_address(self, corpus_store):
        """Two servers (the `--workers` replica shape) bind the same
        port via SO_REUSEPORT and both answer."""
        first = AsyncPatternServer(corpus_store, reuse_port=True).start()
        try:
            second = AsyncPatternServer(
                corpus_store, port=first.port, reuse_port=True
            ).start()
            try:
                for server in (first, second):
                    status, body, _ = _get(server, "/v1/healthz")
                    assert status == 200
                    assert json.loads(body)["n_patterns"] == len(corpus_store)
            finally:
                second.close()
        finally:
            first.close()

    def test_graceful_drain_finishes_in_flight_update(self, toy_result):
        """close() begun while an update is still mining must wait
        for it and let the client read its 200 — not cut the
        connection."""
        store = PatternStore.build(toy_result)
        miner = _GatedMiner(toy_result)
        server = AsyncPatternServer(
            store, miner=miner, drain_timeout=15.0
        ).start()
        results: list[int] = []

        def update() -> None:
            status, _ = _post(server, "/v1/update", {"transactions": [["x"]]})
            results.append(status)

        poster = threading.Thread(target=update)
        poster.start()
        assert miner.entered.wait(timeout=10)
        closer = threading.Thread(target=server.close)
        closer.start()
        time.sleep(0.1)  # close() is now draining, miner still parked
        miner.gate.set()
        closer.join(timeout=30)
        poster.join(timeout=30)
        assert results == [200]


class TestByteParity:
    TARGETS = [
        "/v1/patterns",
        "/v1/patterns?sort=support&limit=10",
        "/v1/patterns?under=cat01&sort=correlation&order=asc",
        "/v1/patterns?signature=%2B-%2B&min_support=50&limit=7",
        "/v1/patterns?min_corr=0.4&max_corr=0.9&sort=min_gap",
        "/v1/patterns?min_height=3&limit=13&offset=5",
    ]

    def test_served_bytes_equal_the_engine(self, corpus_store):
        """Property: whatever the async server serves for /v1 reads
        is byte-identical to PatternAPI over a QueryEngine pinned to
        the same snapshot."""
        offline = PatternAPI(QueryEngine(corpus_store, cache_size=0))
        with AsyncPatternServer(corpus_store) as server:
            conn = http.client.HTTPConnection(
                server.host, server.port, timeout=10
            )
            try:
                for target in self.TARGETS:
                    for _ in range(2):  # second hit: byte cache
                        conn.request("GET", target)
                        served = conn.getresponse().read()
                        expected = offline.dispatch("GET", target).encode()
                        assert served == expected, target
            finally:
                conn.close()
            assert server.response_cache_hits > 0

    def test_parity_holds_across_generations(self, live_miner):
        store = PatternStore.build(live_miner.mine())
        deltas = [
            [["a11", "b11"], ["a12", "b12"]],
            [["a11", "b12"]],
        ]
        probe = "/v1/patterns?sort=support"
        with AsyncPatternServer(store, miner=live_miner) as server:
            for delta in deltas:
                status, payload = _post(
                    server, "/v1/update", {"transactions": delta}
                )
                assert status == 200
                offline = PatternAPI(QueryEngine(store, cache_size=0))
                _, served, _ = _get(server, probe)
                assert served == offline.dispatch("GET", probe).encode()
                assert (
                    json.loads(served)["store_version"]
                    == payload["store_version"]
                )


class TestUpdateQueue:
    def test_update_round_trip_and_counters(self, live_miner):
        store = PatternStore.build(live_miner.mine())
        with AsyncPatternServer(store, miner=live_miner) as server:
            before = store.version
            status, payload = _post(
                server,
                "/v1/update",
                {"transactions": [["a11", "b11"], ["a12", "b12"]]},
            )
            assert status == 200
            assert payload["store_version"] > before
            assert payload["mode"] in ("incremental", "full")
            status, body, _ = _get(server, "/v1/stats")
            stats = json.loads(body)
            assert stats["server"]["updates"] == 1
            assert stats["server"]["read_only"] is False
            status, body, _ = _get(server, "/v1/healthz")
            health = json.loads(body)
            assert health["queue_depth"] == 0
            assert health["store_version"] == store.version

    def test_bounded_queue_sheds_load_with_503(self, toy_result):
        store = PatternStore.build(toy_result)
        miner = _GatedMiner(toy_result)
        server = AsyncPatternServer(
            store,
            miner=miner,
            update_queue_size=1,
            drain_timeout=15.0,
        ).start()
        statuses: list[int] = []
        lock = threading.Lock()

        def update() -> None:
            status, payload = _post(
                server, "/v1/update", {"transactions": [["x"]]}
            )
            with lock:
                statuses.append(status)
            if status == 503:
                assert payload["error"]["code"] == "overloaded"

        first = threading.Thread(target=update)
        first.start()
        # the writer has dequeued the first intent and is parked on
        # the gated miner; the queue (capacity 1) is empty again
        assert miner.entered.wait(timeout=10)
        rest = [threading.Thread(target=update) for _ in range(4)]
        try:
            for thread in rest:
                thread.start()
            # one of the four gets the queue slot; the other three
            # are shed immediately while the writer is still parked
            start = time.monotonic()
            while time.monotonic() - start < 30.0:
                with lock:
                    if len(statuses) >= 3:
                        break
                time.sleep(0.01)
            with lock:
                assert statuses and set(statuses) == {503}
        finally:
            miner.gate.set()
            for thread in [first] + rest:
                thread.join(timeout=30)
            server.close()
        # the parked update and the queued one complete once the
        # gate opens; the three shed while the queue was full stay 503
        assert statuses.count(200) == 2
        assert statuses.count(503) == 3

    def test_read_only_server_rejects_updates(self, corpus_store):
        with AsyncPatternServer(corpus_store) as server:
            status, payload = _post(server, "/v1/update", {"transactions": []})
            assert status == 409
            assert payload["error"]["code"] == "read_only"


class TestSwapStress:
    def test_concurrent_reads_see_only_whole_generations(self, live_miner):
        store = PatternStore.build(live_miner.mine())
        errors: list[Exception] = []
        stop = threading.Event()

        def read_loop(url_host: str, url_port: int) -> None:
            conn = http.client.HTTPConnection(url_host, url_port, timeout=10)
            try:
                while not stop.is_set():
                    conn.request("GET", "/v1/patterns?sort=support")
                    page = json.loads(conn.getresponse().read())
                    assert page["count"] == len(page["patterns"])
                    assert page["count"] == page["total"]
                    for pattern in page["patterns"]:
                        assert pattern["chain"]
            except Exception as exc:  # pragma: no cover - failure
                errors.append(exc)
            finally:
                conn.close()

        with AsyncPatternServer(store, miner=live_miner) as server:
            readers = [
                threading.Thread(
                    target=read_loop, args=(server.host, server.port)
                )
                for _ in range(4)
            ]
            for thread in readers:
                thread.start()
            try:
                for delta in (
                    [["a11", "b11"]],
                    [["a12", "b12"]],
                    [["a11", "b12"]],
                ):
                    status, _ = _post(
                        server, "/v1/update", {"transactions": delta}
                    )
                    assert status == 200
            finally:
                stop.set()
                for thread in readers:
                    thread.join(timeout=30)
        assert errors == []
