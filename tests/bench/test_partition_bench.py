"""End-to-end smoke of the partition bench (quick mode).

The admit-speedup floor and warm-mine ratio ceiling are wall-clock
properties that only hold at the default bench scale (CI's perf-gate
job measures them against the committed baseline), so this smoke runs
the bench's ``quick`` mode — which skips the floors but keeps every
parity and image-serving check: byte-identical patterns across the
monolithic, cold-partitioned and warm-partitioned runs, a warm run
that never rebuilds, and a microbenchmark that admits every shard
from its image.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.01")


def test_partition_bench_quick_writes_baseline(tmp_path):
    from repro.bench import run_partition_bench

    out = tmp_path / "BENCH_partition.json"
    report, data = run_partition_bench(out_path=out, quick=True)
    assert "Partition bench" in report
    assert "quick" in report
    assert "[PASS]" in report and "[FAIL]" not in report
    assert data["checks_pass"] is True
    assert data["patterns_identical"] is True
    on_disk = json.loads(out.read_text())
    assert on_disk["bench"] == "partition"
    assert on_disk["quick"] is True
    runs = on_disk["runs"]
    assert set(runs) == {"shards=1", "shards=4"}
    for run in runs.values():
        assert run["peak_rss_mb"] > 0
        assert run["n_patterns"] > 0
    partitioned = runs["shards=4"]
    # the warm mine was served entirely from persisted images
    assert partitioned["warm_rebuilds"] == 0
    assert partitioned["warm_image_admits"] > 0
    assert partitioned["images_saved"] > 0
    assert partitioned["micro_image_admits"] == on_disk["n_shards"]
    assert partitioned["admit_seconds"] > 0
    assert partitioned["rebuild_seconds"] > 0


def test_committed_baseline_passes_its_own_checks():
    """The committed BENCH_partition.json (produced at the default
    scale, quick=False) must satisfy the floors the CI gate enforces:
    image admits beat parse-and-rebuild by the committed factor, and
    the warm budgeted 4-shard mine stays near-monolithic."""
    committed = json.loads(
        (
            Path(__file__).resolve().parents[2]
            / "BENCH_partition.json"
        ).read_text()
    )
    assert committed["quick"] is False
    assert committed["checks_pass"] is True
    assert committed["patterns_identical"] is True
    assert committed["admit_speedup"] >= committed["min_admit_speedup"]
    assert committed["mine_ratio"] <= committed["max_mine_ratio"]


def test_peak_rss_is_positive():
    from repro.bench.partition import _peak_rss_mb

    assert _peak_rss_mb() > 0
