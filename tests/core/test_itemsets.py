"""Unit tests for repro.core.itemsets."""

from __future__ import annotations

from repro.core.itemsets import (
    apriori_join,
    canonical,
    generalize,
    has_infrequent_subset,
    k_minus_one_subsets,
)


class TestCanonical:
    def test_sorts_and_dedupes(self):
        assert canonical([3, 1, 3, 2]) == (1, 2, 3)

    def test_empty(self):
        assert canonical([]) == ()


class TestSubsets:
    def test_pair(self):
        assert k_minus_one_subsets((1, 2)) == [(2,), (1,)]

    def test_triple(self):
        subsets = set(k_minus_one_subsets((1, 2, 3)))
        assert subsets == {(1, 2), (1, 3), (2, 3)}

    def test_count(self):
        assert len(k_minus_one_subsets((1, 2, 3, 4, 5))) == 5


class TestAprioriJoin:
    def test_pairs_to_triples(self):
        frequent = [(1, 2), (1, 3), (2, 3), (2, 4)]
        joined = set(apriori_join(frequent))
        # (1,2)+(1,3) -> (1,2,3); (2,3)+(2,4) -> (2,3,4)
        assert joined == {(1, 2, 3), (2, 3, 4)}

    def test_no_shared_prefix_no_join(self):
        assert apriori_join([(1, 2), (3, 4)]) == []

    def test_empty(self):
        assert apriori_join([]) == []

    def test_join_is_complete_for_frequent_supersets(self):
        # every 3-subset of {1,2,3,4}: all pairs frequent -> all triples joined
        import itertools

        pairs = list(itertools.combinations(range(1, 5), 2))
        triples = set(apriori_join(pairs))
        assert triples == set(itertools.combinations(range(1, 5), 3))


class TestHasInfrequentSubset:
    def test_all_present(self):
        frequent = {(1, 2), (1, 3), (2, 3)}
        assert not has_infrequent_subset((1, 2, 3), frequent)

    def test_one_missing(self):
        frequent = {(1, 2), (1, 3)}
        assert has_infrequent_subset((1, 2, 3), frequent)


class TestGeneralize:
    def test_maps_and_sorts(self):
        mapping = {10: 1, 20: 2, 30: 3}
        assert generalize((30, 10, 20), mapping) == (1, 2, 3)

    def test_collapsing_siblings_shortens(self):
        mapping = {10: 1, 11: 1}
        assert generalize((10, 11), mapping) == (1,)
