"""Unit tests for the sharded on-disk transaction store."""

from __future__ import annotations

import json

import pytest

from repro.data.database import TransactionDatabase
from repro.data.shards import (
    ShardedTransactionStore,
    estimate_transaction_bytes,
)
from repro.errors import DataError


class TestPartitionDatabase:
    def test_round_trips_all_transactions(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 4
        )
        assert store.n_shards == 4
        assert store.n_transactions == random_db.n_transactions
        assert sum(store.shard_sizes) == random_db.n_transactions
        rebuilt = store.to_database()
        assert list(rebuilt) == list(random_db)

    def test_shards_are_contiguous_and_near_equal(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 3
        )
        sizes = store.shard_sizes
        assert max(sizes) - min(sizes) <= 1
        # contiguity: concatenated shard rows == original order
        rows = []
        for index in range(store.n_shards):
            rows.extend(store.shard_transactions(index))
        expected = [
            random_db.transaction_names(i)
            for i in range(random_db.n_transactions)
        ]
        assert rows == expected

    def test_more_shards_than_transactions(self, example3_db, tmp_path):
        n = example3_db.n_transactions
        store = ShardedTransactionStore.partition_database(
            example3_db, tmp_path, n + 5
        )
        assert store.n_shards == n + 5
        assert store.shard_sizes.count(0) == 5
        assert store.shard_database(store.n_shards - 1) is None
        assert store.shard_transactions(store.n_shards - 1) == []

    def test_single_transaction_shards(self, example3_db, tmp_path):
        n = example3_db.n_transactions
        store = ShardedTransactionStore.partition_database(
            example3_db, tmp_path, n
        )
        assert store.shard_sizes == [1] * n
        db = store.shard_database(0)
        assert db is not None and db.n_transactions == 1

    def test_rejects_bad_shard_count(self, example3_db, tmp_path):
        with pytest.raises(DataError, match="n_shards"):
            ShardedTransactionStore.partition_database(
                example3_db, tmp_path, 0
            )

    def test_shard_databases_share_balanced_taxonomy(
        self, random_db, tmp_path
    ):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        for _index, db in store.iter_shard_databases():
            assert db is not None
            assert db.taxonomy is store.taxonomy


class TestIngest:
    def test_rows_per_shard_cut(self, grocery_taxonomy, tmp_path):
        rows = [["cola"], ["milk", "soap"], ["apples"], ["cola", "milk"]]
        store = ShardedTransactionStore.ingest(
            rows, grocery_taxonomy, tmp_path, rows_per_shard=3
        )
        assert store.shard_sizes == [3, 1]
        assert store.to_database().n_transactions == 4

    def test_memory_budget_cut(self, grocery_taxonomy, tmp_path):
        rows = [["cola", "milk"] for _ in range(100)]
        per_row = estimate_transaction_bytes(rows[0])
        budget_mb = (per_row * 10) / (1024 * 1024)
        store = ShardedTransactionStore.ingest(
            rows, grocery_taxonomy, tmp_path, memory_budget_mb=budget_mb
        )
        assert store.n_shards == 10
        assert all(size == 10 for size in store.shard_sizes)

    def test_unbounded_ingest_is_one_shard(self, grocery_taxonomy, tmp_path):
        rows = [["cola"], ["milk"]]
        store = ShardedTransactionStore.ingest(
            rows, grocery_taxonomy, tmp_path
        )
        assert store.n_shards == 1

    def test_empty_stream_rejected(self, grocery_taxonomy, tmp_path):
        with pytest.raises(DataError, match="empty"):
            ShardedTransactionStore.ingest([], grocery_taxonomy, tmp_path)

    def test_bad_bounds_rejected(self, grocery_taxonomy, tmp_path):
        with pytest.raises(DataError, match="rows_per_shard"):
            ShardedTransactionStore.ingest(
                [["cola"]], grocery_taxonomy, tmp_path, rows_per_shard=0
            )
        with pytest.raises(DataError, match="memory_budget_mb"):
            ShardedTransactionStore.ingest(
                [["cola"]], grocery_taxonomy, tmp_path, memory_budget_mb=0
            )


class TestOpenAndManifest:
    def test_reopen_sees_same_data(self, random_db, tmp_path):
        created = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 3
        )
        reopened = ShardedTransactionStore.open(tmp_path, random_db.taxonomy)
        assert reopened.n_shards == created.n_shards
        assert reopened.shard_sizes == created.shard_sizes
        assert list(reopened.to_database()) == list(random_db)

    def test_missing_manifest_rejected(self, random_db, tmp_path):
        with pytest.raises(DataError, match="manifest"):
            ShardedTransactionStore.open(tmp_path, random_db.taxonomy)

    def test_corrupt_counts_rejected(self, random_db, tmp_path):
        ShardedTransactionStore.partition_database(random_db, tmp_path, 2)
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["n_transactions"] += 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(DataError, match="count"):
            ShardedTransactionStore.open(tmp_path, random_db.taxonomy)

    def test_missing_shard_file_rejected(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        store.shard_path(1).unlink()
        with pytest.raises(DataError, match="missing shard"):
            ShardedTransactionStore.open(tmp_path, random_db.taxonomy)


class TestShapeQueries:
    def test_width_at_level_matches_database(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 3
        )
        height = random_db.taxonomy.height
        for level in range(1, height + 1):
            assert store.width_at_level(level) == random_db.width_at_level(
                level
            )

    def test_describe_mentions_shards(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        assert "2 shard(s)" in store.describe()

    def test_unbalanced_taxonomy_rebalanced_consistently(self, tmp_path):
        from repro.taxonomy.tree import Taxonomy

        unbalanced = Taxonomy.from_dict(
            {"a": {"a1": ["a11", "a12"]}, "b": ["b1"]}
        )
        database = TransactionDatabase(
            [["a11", "b1"], ["a12"], ["b1"]], unbalanced
        )
        store = ShardedTransactionStore.partition_database(
            database, tmp_path, 2
        )
        assert store.taxonomy.is_balanced
        assert list(store.to_database()) == list(database)


class TestFormats:
    def test_default_format_is_columnar(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 3
        )
        assert all(
            store.shard_format(index) == "columnar"
            for index in range(store.n_shards)
        )
        assert store.shard_path(0).suffix == ".col"

    def test_jsonl_format_still_writable(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 3, format="jsonl"
        )
        assert all(
            store.shard_format(index) == "jsonl"
            for index in range(store.n_shards)
        )
        assert list(store.to_database()) == list(random_db)

    def test_formats_round_trip_identically(self, random_db, tmp_path):
        columnar = ShardedTransactionStore.partition_database(
            random_db, tmp_path / "col", 3, format="columnar"
        )
        jsonl = ShardedTransactionStore.partition_database(
            random_db, tmp_path / "jsonl", 3, format="jsonl"
        )
        for index in range(3):
            assert columnar.shard_transactions(
                index
            ) == jsonl.shard_transactions(index)

    def test_transactions_at_matches_full_read_in_both_formats(
        self, random_db, tmp_path
    ):
        """Random row access (the sampler's path) agrees with the
        full decode for columnar shards and the jsonl fallback."""
        for format in ("columnar", "jsonl"):
            store = ShardedTransactionStore.partition_database(
                random_db, tmp_path / format, 3, format=format
            )
            for index in range(store.n_shards):
                rows = store.shard_transactions(index)
                picks = list(range(0, len(rows), 2))
                assert store.shard_transactions_at(index, picks) == [
                    rows[row] for row in picks
                ]
            assert store.shard_transactions_at(0, []) == []

    def test_unknown_format_rejected(self, random_db, tmp_path):
        with pytest.raises(DataError, match="format"):
            ShardedTransactionStore.partition_database(
                random_db, tmp_path, 2, format="parquet"
            )

    def test_open_with_format_filter(self, random_db, tmp_path):
        ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2, format="jsonl"
        )
        with pytest.raises(DataError, match="columnar"):
            ShardedTransactionStore.open(
                tmp_path, random_db.taxonomy, format="columnar"
            )

    def test_describe_reports_format_bytes_and_images(
        self, random_db, tmp_path
    ):
        from repro.core.counting import ShardBackendPool

        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        pool = ShardBackendPool(store)
        for index in range(store.n_shards):
            pool.backend(index)
        pool.save_images()
        text = store.describe()
        assert "2 shard(s)" in text
        assert "[columnar]" in text
        assert "bytes" in text
        assert "images: bitmap" in text
        assert store.image_bytes(0) > 0
        assert store.shard_images(0) == ["bitmap"]


class TestMigrate:
    def test_columnar_to_jsonl_and_back(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 3
        )
        before = [store.shard_transactions(index) for index in range(3)]
        assert store.migrate("jsonl") == 3
        assert all(store.shard_format(index) == "jsonl" for index in range(3))
        assert store.migrate("columnar") == 3
        after = [store.shard_transactions(index) for index in range(3)]
        assert before == after
        assert store.shard_sizes == [len(chunk) for chunk in before]

    def test_migrate_is_idempotent(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        assert store.migrate("columnar") == 0

    def test_migrate_commits_via_manifest(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        store.migrate("jsonl")
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert all(name.endswith(".jsonl") for name in manifest["shards"])
        reopened = ShardedTransactionStore.open(tmp_path, random_db.taxonomy)
        assert list(reopened.to_database()) == list(random_db)

    def test_migrate_drops_stale_images(self, random_db, tmp_path):
        from repro.core.counting import ShardBackendPool

        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        pool = ShardBackendPool(store)
        for index in range(store.n_shards):
            pool.backend(index)
        assert pool.save_images() == 2
        assert store.shard_images(0) == ["bitmap"]
        store.migrate("jsonl")
        assert store.shard_images(0) == []
        assert not list(tmp_path.glob("*.img"))

    def test_migrate_rejects_unknown_format(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        with pytest.raises(DataError, match="format"):
            store.migrate("parquet")


class TestAppendBatch:
    def test_appends_new_shard_and_extends_manifest(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 3
        )
        delta = [random_db.transaction_names(index) for index in range(20)]
        new = store.append_batch(delta)
        assert new == [3]
        assert store.n_shards == 4
        assert store.n_transactions == random_db.n_transactions + 20
        manifest = json.loads(
            (tmp_path / "manifest.json").read_text(encoding="utf-8")
        )
        assert len(manifest["shards"]) == 4
        assert manifest["n_transactions"] == store.n_transactions
        assert store.shard_transactions(3) == [tuple(t) for t in delta]

    def test_existing_shard_files_are_untouched(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        before = [store.shard_path(index).read_bytes() for index in range(2)]
        store.append_batch([("milk", "cola")])
        after = [store.shard_path(index).read_bytes() for index in range(2)]
        assert before == after

    def test_rows_per_shard_splits_the_delta(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        delta = [random_db.transaction_names(index) for index in range(25)]
        new = store.append_batch(delta, rows_per_shard=10)
        assert new == [2, 3, 4]
        assert store.shard_sizes[2:] == [10, 10, 5]

    def test_empty_batch_is_a_noop(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        assert store.append_batch([]) == []
        assert store.n_shards == 2

    def test_unknown_item_rejected_before_writing(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        before = store.n_shards
        with pytest.raises(DataError, match="delta transaction 1"):
            store.append_batch([("milk",), ("milk", "no-such-item")])
        assert store.n_shards == before
        manifest = json.loads(
            (tmp_path / "manifest.json").read_text(encoding="utf-8")
        )
        assert len(manifest["shards"]) == before

    def test_reopened_store_sees_the_delta(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        store.append_batch([("milk", "cola"), ("apples",)])
        reopened = ShardedTransactionStore.open(tmp_path, random_db.taxonomy)
        assert reopened.n_transactions == store.n_transactions
        assert reopened.shard_sizes == store.shard_sizes

    def test_width_cache_stays_exact_after_append(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        width_before = store.width_at_level(1)  # populates the cache
        assert width_before == random_db.width_at_level(1)
        wide = tuple(
            random_db.taxonomy.name_of(item)
            for item in random_db.taxonomy.item_ids
        )
        store.append_batch([wide])
        assert store.width_at_level(1) == store.to_database().width_at_level(1)

    def test_invalid_rows_per_shard(self, random_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        with pytest.raises(DataError, match="rows_per_shard"):
            store.append_batch([("milk",)], rows_per_shard=0)
