"""The FLIP rule set: repo contracts encoded as AST checks.

Each rule encodes an invariant another subsystem's correctness
depends on but no off-the-shelf tool checks:

* **FLIP001** — published :class:`StoreSnapshot` generations are
  immutable; only ``_SnapshotBuilder`` (and constructors) may touch
  snapshot index fields (PR 7, lock-free serving).
* **FLIP002** — ``async def`` bodies never block the event loop: no
  ``time.sleep``, sync file I/O, ``lock.acquire``, ``subprocess``,
  or direct mining/reindex calls (PR 7, asyncio front end).
* **FLIP003** — store/manifest/shard/image writes are atomic: any
  write-mode ``open`` in the persistence layers must flow through
  the temp + ``os.replace`` idiom (PR 6, crash-safety contract).
* **FLIP004** — public functions in the data/serving layers wrap
  builtin ``KeyError``/``json.JSONDecodeError``/``FileNotFoundError``
  in :class:`DataError`; no bare ``except:`` (PRs 3/5, error
  contract).
* **FLIP005** — serialization, fingerprint and columnar-header code
  derives nothing from ``random``/``time``/``uuid``/``hash()``:
  bytes on disk are a pure function of the data (PR 6, deterministic
  containers).
* **FLIP006** — state shared between the writer task and request
  handlers is published by single-assignment atomic swap
  (``self._snap = next``), never mutated in place (PR 7, swap
  publication discipline).
* **FLIP007** — metric and span names come from
  :mod:`repro.obs.catalog` constants: no inline name literal reaches
  ``registry.counter(...)``/``gauge``/``histogram`` or
  ``trace_span(...)`` outside the obs package itself (PR 9, unified
  observability catalog).

The rules are deliberately *syntactic*: they match the concrete
idioms this repo uses (attribute names, helper functions, module
layout) rather than attempting type inference, which keeps them
dependency-free, fast, and — via the fixture corpus under
``tests/analysis/fixtures/`` — provably aligned with the code they
guard.  Scope predicates match on path *parts*, so fixtures arranged
under ``serve/``/``data/`` directories exercise the same scoping as
the live tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePosixPath

from repro.errors import ConfigError

__all__ = [
    "RULES",
    "RULE_IDS",
    "RawFinding",
    "Rule",
    "resolve_rules",
]


@dataclass(frozen=True)
class RawFinding:
    """A rule hit before the runner attaches path and line content."""

    line: int
    col: int
    rule: str
    message: str


class _RuleVisitor(ast.NodeVisitor):
    """Shared scope/import bookkeeping for all rule visitors.

    Tracks the class and function nesting stacks, whether execution
    is directly inside an ``async def`` body, which calls are
    awaited, and a local-alias → dotted-origin import map so calls
    like ``sp.run`` resolve to ``subprocess.run``.
    """

    def __init__(self, rule_id: str) -> None:
        self.rule_id = rule_id
        self.findings: list[RawFinding] = []
        self.class_stack: list[str] = []
        self.func_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        self.imports: dict[str, str] = {}
        self._awaited: set[int] = set()

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            RawFinding(
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=self.rule_id,
                message=message,
            )
        )

    # -- import alias resolution ---------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname is not None:
                self.imports[alias.asname] = alias.name
            else:
                root = alias.name.split(".", 1)[0]
                self.imports[root] = root
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None:
            for alias in node.names:
                local = alias.asname or alias.name
                self.imports[local] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted origin of a name/attribute chain, through aliases."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.imports.get(node.id, node.id))
        return ".".join(reversed(parts))

    # -- scope tracking ------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self.func_stack.append(node)
        self.generic_visit(node)
        self.func_stack.pop()

    def visit_Await(self, node: ast.Await) -> None:
        if isinstance(node.value, ast.Call):
            self._awaited.add(id(node.value))
        self.generic_visit(node)

    # -- shared context predicates -------------------------------------

    @property
    def in_async_body(self) -> bool:
        """Directly inside an ``async def`` (not in a nested sync
        def, whose body may legitimately run in an executor)."""
        return bool(self.func_stack) and isinstance(
            self.func_stack[-1], ast.AsyncFunctionDef
        )

    @property
    def enclosing_function(self) -> str | None:
        return self.func_stack[-1].name if self.func_stack else None

    @property
    def outermost_function(self) -> str | None:
        return self.func_stack[0].name if self.func_stack else None


def _chain_attrs(node: ast.expr) -> list[str]:
    """Attribute names along a dotted chain, outermost first,
    looking through subscripts and calls: for
    ``self._snap._by_item[k].update`` this is
    ``["update", "_by_item", "_snap"]``."""
    attrs: list[str] = []
    current: ast.expr = node
    while True:
        if isinstance(current, ast.Attribute):
            attrs.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        else:
            return attrs


def _call_mode(node: ast.Call, mode_position: int) -> str:
    """The ``mode`` argument of an ``open``-style call ("r" default)."""
    for keyword in node.keywords:
        if keyword.arg == "mode":
            if isinstance(keyword.value, ast.Constant) and isinstance(
                keyword.value.value, str
            ):
                return keyword.value.value
            return ""
    if len(node.args) > mode_position:
        arg = node.args[mode_position]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return "r"


class Rule:
    """One invariant check: a scope predicate plus an AST visitor."""

    id: str = ""
    title: str = ""
    contract: str = ""

    def applies_to(self, path: str) -> bool:
        raise NotImplementedError

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        raise NotImplementedError


def _parts(path: str) -> frozenset[str]:
    return frozenset(PurePosixPath(path).parts)


def _basename(path: str) -> str:
    return PurePosixPath(path).name


# ---------------------------------------------------------------------------
# FLIP001 — snapshot immutability
# ---------------------------------------------------------------------------

#: the index fields of StoreSnapshot.__slots__ (serve/store.py)
SNAPSHOT_FIELDS = frozenset(
    {
        "_patterns",
        "_fingerprints",
        "_by_item",
        "_by_node",
        "_by_signature",
        "_by_height",
        "_sorted",
        "_ids",
        "_version",
        "_config",
    }
)

#: method names that mutate their receiver in place
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "discard",
        "remove",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: module-level functions that mutate an argument in place
_MUTATING_FUNCTIONS = frozenset(
    {
        "bisect.insort",
        "bisect.insort_left",
        "bisect.insort_right",
        "heapq.heappush",
        "heapq.heappop",
        "heapq.heapify",
    }
)

#: contexts allowed to write snapshot fields: the builder class, and
#: constructors/freeze (which assemble a not-yet-published snapshot)
_FLIP001_ALLOWED_CLASSES = frozenset({"_SnapshotBuilder"})
_FLIP001_ALLOWED_FUNCTIONS = frozenset({"__init__", "freeze"})


class _Flip001Visitor(_RuleVisitor):
    def _allowed(self) -> bool:
        if _FLIP001_ALLOWED_CLASSES & set(self.class_stack):
            return True
        return self.enclosing_function in _FLIP001_ALLOWED_FUNCTIONS

    def _field_of_target(self, target: ast.expr) -> str | None:
        current: ast.expr = target
        while isinstance(current, ast.Subscript):
            current = current.value
        if isinstance(current, ast.Attribute):
            if current.attr in SNAPSHOT_FIELDS:
                return current.attr
            # item assignment one level deeper, e.g. x._sorted[m][0]
            inner = _chain_attrs(current.value)
            for attr in inner:
                if attr in SNAPSHOT_FIELDS:
                    return attr
        return None

    def _check_target(self, target: ast.expr) -> None:
        if self._allowed():
            return
        field = self._field_of_target(target)
        if field is not None:
            self.report(
                target,
                f"assignment to StoreSnapshot field {field!r} outside "
                "_SnapshotBuilder/__init__ — published snapshots are "
                "immutable; build the next generation and swap "
                "(lock-free serving, PR 7)",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self._allowed():
            self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            for attr in _chain_attrs(func.value):
                if attr in SNAPSHOT_FIELDS:
                    self.report(
                        node,
                        f"mutating call .{func.attr}() on StoreSnapshot "
                        f"field {attr!r} outside _SnapshotBuilder — "
                        "published snapshots are immutable (lock-free "
                        "serving, PR 7)",
                    )
                    return
        resolved = self.resolve(func)
        if resolved in _MUTATING_FUNCTIONS:
            for arg in node.args:
                for attr in _chain_attrs(arg):
                    if attr in SNAPSHOT_FIELDS:
                        self.report(
                            node,
                            f"{resolved}() mutates StoreSnapshot field "
                            f"{attr!r} in place outside "
                            "_SnapshotBuilder (lock-free serving, PR 7)",
                        )
                        return
        if resolved == "setattr" and len(node.args) >= 2:
            name = node.args[1]
            if (
                isinstance(name, ast.Constant)
                and name.value in SNAPSHOT_FIELDS
            ):
                self.report(
                    node,
                    f"setattr() on StoreSnapshot field {name.value!r} "
                    "outside _SnapshotBuilder — published snapshots "
                    "are immutable (lock-free serving, PR 7)",
                )


class Flip001SnapshotImmutability(Rule):
    id = "FLIP001"
    title = "snapshot-immutability"
    contract = (
        "published StoreSnapshot generations are immutable; only "
        "_SnapshotBuilder and constructors touch index fields"
    )

    def applies_to(self, path: str) -> bool:
        return "serve" in _parts(path)

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        visitor = _Flip001Visitor(self.id)
        visitor.visit(tree)
        return visitor.findings


# ---------------------------------------------------------------------------
# FLIP002 — async-blocking
# ---------------------------------------------------------------------------

#: dotted-call prefixes that block the calling thread
_BLOCKING_PREFIXES = (
    "time.sleep",
    "subprocess.",
    "os.system",
    "os.popen",
    "os.spawn",
    "os.wait",
    "socket.create_connection",
    "urllib.request.urlopen",
)

#: method names that block regardless of receiver: sync file I/O,
#: lock acquisition, and this repo's heavyweight mine/reindex entry
#: points (which must run via run_in_executor)
_BLOCKING_METHODS = frozenset(
    {
        "acquire",
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "apply_result",
        "run_update",
        "mine",
    }
)


class _Flip002Visitor(_RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        if self.in_async_body:
            self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        func_name = self.enclosing_function
        resolved = self.resolve(node.func)
        if resolved is not None:
            if resolved in ("open", "io.open"):
                self.report(
                    node,
                    f"sync file I/O (open) inside 'async def "
                    f"{func_name}' blocks the event loop — use "
                    "run_in_executor (asyncio front end, PR 7)",
                )
                return
            for prefix in _BLOCKING_PREFIXES:
                if resolved == prefix or (
                    prefix.endswith(".")
                    and resolved.startswith(prefix)
                ):
                    self.report(
                        node,
                        f"blocking call {resolved}() inside 'async "
                        f"def {func_name}' — the event loop must "
                        "never block (asyncio front end, PR 7)",
                    )
                    return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _BLOCKING_METHODS
            # an awaited .acquire()/... is an async API, not a block
            and id(node) not in self._awaited
        ):
            self.report(
                node,
                f"blocking call .{func.attr}() inside 'async def "
                f"{func_name}' — run it in an executor or await an "
                "async equivalent (asyncio front end, PR 7)",
            )


class Flip002AsyncBlocking(Rule):
    id = "FLIP002"
    title = "async-blocking"
    contract = (
        "async def bodies never block the event loop: no sleep, sync "
        "file I/O, lock.acquire, subprocess, or direct mine/reindex"
    )

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        visitor = _Flip002Visitor(self.id)
        visitor.visit(tree)
        return visitor.findings


# ---------------------------------------------------------------------------
# FLIP003 — atomic-write
# ---------------------------------------------------------------------------

_FLIP003_SCOPE_PARTS = frozenset({"data", "serve", "core", "taxonomy"})

#: the sanctioned atomic-write implementations
_ATOMIC_HELPER_MODULE = "atomicio.py"
_ATOMIC_HELPER_FUNCTIONS = frozenset(
    {"atomic_write_json", "atomic_write_text", "atomic_write_bytes"}
)


class _Flip003Visitor(_RuleVisitor):
    def __init__(self, rule_id: str) -> None:
        super().__init__(rule_id)
        #: functions whose body calls os.replace — they implement the
        #: temp + rename idiom themselves, so their writes are atomic
        self._replace_functions: set[int] = set()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call):
                resolved = self.resolve(inner.func)
                if resolved in ("os.replace", "os.rename"):
                    self._replace_functions.add(id(node))
                    break
        super()._visit_function(node)

    def _allowed(self) -> bool:
        for func in self.func_stack:
            if func.name in _ATOMIC_HELPER_FUNCTIONS:
                return True
            if id(func) in self._replace_functions:
                return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        if not self._allowed():
            self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        resolved = self.resolve(node.func)
        func = node.func
        description: str | None = None
        if resolved in ("open", "io.open"):
            mode = _call_mode(node, mode_position=1)
            if any(flag in mode for flag in "wax+"):
                description = f"open(..., {mode!r})"
        elif isinstance(func, ast.Attribute):
            if func.attr == "open":
                mode = _call_mode(node, mode_position=0)
                if any(flag in mode for flag in "wax+"):
                    description = f".open({mode!r})"
            elif func.attr in ("write_text", "write_bytes"):
                description = f".{func.attr}(...)"
        if description is not None:
            self.report(
                node,
                f"non-atomic write {description} — persistence-layer "
                "writes must go through temp + os.replace "
                "(repro.core.atomicio; crash-safety contract, PR 6)",
            )


class Flip003AtomicWrite(Rule):
    id = "FLIP003"
    title = "atomic-write"
    contract = (
        "manifest/store/shard/image writes flow through the temp + "
        "os.replace helpers; a crash never leaves a torn file"
    )

    def applies_to(self, path: str) -> bool:
        return bool(_FLIP003_SCOPE_PARTS & _parts(path))

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        if _basename(path) == _ATOMIC_HELPER_MODULE:
            return []
        visitor = _Flip003Visitor(self.id)
        visitor.visit(tree)
        return visitor.findings


# ---------------------------------------------------------------------------
# FLIP004 — error-contract
# ---------------------------------------------------------------------------

#: builtin exceptions public data/serving APIs must not leak
_LEAKY_EXCEPTIONS = frozenset(
    {"KeyError", "FileNotFoundError", "JSONDecodeError"}
)

#: handler types that guard a json.loads / json.load call
_JSON_GUARDS = frozenset(
    {"JSONDecodeError", "ValueError", "Exception", "BaseException"}
)

#: handler types that guard a file read
_READ_GUARDS = frozenset(
    {
        "FileNotFoundError",
        "OSError",
        "IOError",
        "EnvironmentError",
        "Exception",
        "BaseException",
    }
)


class _Flip004Visitor(_RuleVisitor):
    def __init__(self, rule_id: str) -> None:
        super().__init__(rule_id)
        self._guard_stack: list[frozenset[str]] = []

    # -- guarded-region tracking ---------------------------------------

    def visit_Try(self, node: ast.Try) -> None:
        caught: set[str] = set()
        for handler in node.handlers:
            caught |= self._handler_names(handler)
        self._guard_stack.append(frozenset(caught))
        for statement in node.body:
            self.visit(statement)
        self._guard_stack.pop()
        for handler in node.handlers:
            self.visit(handler)
        for statement in node.orelse + node.finalbody:
            self.visit(statement)

    def _handler_names(self, handler: ast.ExceptHandler) -> set[str]:
        if handler.type is None:
            return {"BaseException"}
        names: set[str] = set()
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for item in types:
            if isinstance(item, ast.Name):
                names.add(item.id)
            elif isinstance(item, ast.Attribute):
                names.add(item.attr)
        return names

    def _guarded_by(self, guards: frozenset[str]) -> bool:
        return any(frame & guards for frame in self._guard_stack)

    # -- the public-surface predicate ----------------------------------

    @property
    def _in_public_function(self) -> bool:
        name = self.outermost_function
        return name is not None and not name.startswith("_")

    # -- checks --------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare 'except:' swallows SystemExit and "
                "KeyboardInterrupt — catch specific exceptions and "
                "wrap them in DataError (error contract, PRs 3/5)",
            )
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        if self._in_public_function and node.exc is not None:
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name: str | None = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name in _LEAKY_EXCEPTIONS:
                self.report(
                    node,
                    f"public function "
                    f"{self.outermost_function!r} raises builtin "
                    f"{name} — wrap it in DataError so callers catch "
                    "one library type (error contract, PRs 3/5)",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._in_public_function:
            self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        resolved = self.resolve(node.func)
        func = node.func
        if resolved in ("json.loads", "json.load"):
            if not self._guarded_by(_JSON_GUARDS):
                self.report(
                    node,
                    f"unguarded {resolved}() in public function "
                    f"{self.outermost_function!r} leaks "
                    "json.JSONDecodeError — wrap it in DataError "
                    "(error contract, PRs 3/5)",
                )
            return
        reads: str | None = None
        if resolved in ("open", "io.open"):
            mode = _call_mode(node, mode_position=1)
            if not any(flag in mode for flag in "wax+"):
                reads = "open(...)"
        elif isinstance(func, ast.Attribute):
            if func.attr == "open":
                mode = _call_mode(node, mode_position=0)
                if not any(flag in mode for flag in "wax+"):
                    reads = ".open(...)"
            elif func.attr in ("read_text", "read_bytes"):
                reads = f".{func.attr}(...)"
        if reads is not None and not self._guarded_by(_READ_GUARDS):
            self.report(
                node,
                f"unguarded file read {reads} in public function "
                f"{self.outermost_function!r} leaks "
                "FileNotFoundError — wrap it in DataError (error "
                "contract, PRs 3/5)",
            )


class Flip004ErrorContract(Rule):
    id = "FLIP004"
    title = "error-contract"
    contract = (
        "public data/serving functions raise DataError, never bare "
        "KeyError/json.JSONDecodeError/FileNotFoundError; no bare "
        "except"
    )

    def applies_to(self, path: str) -> bool:
        parts = _parts(path)
        if {"data", "serve", "taxonomy"} & parts:
            return True
        return "core" in parts and _basename(path) == "serialize.py"

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        visitor = _Flip004Visitor(self.id)
        visitor.visit(tree)
        return visitor.findings


# ---------------------------------------------------------------------------
# FLIP005 — determinism
# ---------------------------------------------------------------------------

_NONDETERMINISTIC_PREFIXES = (
    "random.",
    "uuid.",
    "secrets.",
    "os.urandom",
    "os.getrandom",
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.now",
    "datetime.utcnow",
    "datetime.date.today",
)

#: modules whose entire byte output must be deterministic
_FLIP005_MODULES = frozenset({"serialize.py", "columnar.py"})

#: function-name fragments that mark a deterministic code path
_FLIP005_FUNCTION_MARKERS = ("fingerprint", "header", "serialize")


class _Flip005Visitor(_RuleVisitor):
    def __init__(self, rule_id: str, module_wide: bool) -> None:
        super().__init__(rule_id)
        self._module_wide = module_wide

    def _in_scope(self) -> bool:
        if self._module_wide:
            return True
        return any(
            marker in func.name
            for func in self.func_stack
            for marker in _FLIP005_FUNCTION_MARKERS
        )

    def visit_Call(self, node: ast.Call) -> None:
        if self._in_scope():
            self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        resolved = self.resolve(node.func)
        if resolved is None:
            return
        if resolved == "hash":
            self.report(
                node,
                "builtin hash() is PYTHONHASHSEED-dependent — "
                "serialized bytes must be a pure function of the "
                "data; use hashlib (deterministic containers, PR 6)",
            )
            return
        # a seeded random.Random(seed) stream is deterministic
        if resolved == "random.Random" and (node.args or node.keywords):
            return
        for prefix in _NONDETERMINISTIC_PREFIXES:
            if resolved == prefix or (
                prefix.endswith(".") and resolved.startswith(prefix)
            ):
                self.report(
                    node,
                    f"nondeterministic value {resolved}() in a "
                    "serialization/fingerprint path — bytes on disk "
                    "must be a pure function of the data "
                    "(deterministic containers, PR 6)",
                )
                return


class Flip005Determinism(Rule):
    id = "FLIP005"
    title = "determinism"
    contract = (
        "serialization, fingerprint and columnar-header code derives "
        "nothing from random/time/uuid/hash()"
    )

    def applies_to(self, path: str) -> bool:
        return bool({"core", "data", "serve"} & _parts(path))

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        module_wide = _basename(path) in _FLIP005_MODULES
        visitor = _Flip005Visitor(self.id, module_wide)
        visitor.visit(tree)
        return visitor.findings


# ---------------------------------------------------------------------------
# FLIP006 — lock-discipline (swap publication)
# ---------------------------------------------------------------------------

#: attributes published by atomic reference swap
_PUBLISHED_ATTRS = frozenset({"_snap"})

#: the only methods allowed to rebind a published attribute
_SANCTIONED_PUBLISHERS = frozenset({"__init__", "apply_result", "open"})


class _Flip006Visitor(_RuleVisitor):
    def _check_target(self, target: ast.expr, augmented: bool) -> None:
        attrs = _chain_attrs(target)
        if not attrs:
            return
        if attrs[0] in _PUBLISHED_ATTRS and len(attrs) == 1:
            is_subscript = isinstance(target, ast.Subscript)
            if augmented or is_subscript:
                self.report(
                    target,
                    f"in-place mutation of swap-published attribute "
                    f"{attrs[0]!r} — writer state is published by "
                    "single atomic assignment, never mutated "
                    "incrementally (swap discipline, PR 7)",
                )
            elif self.enclosing_function not in _SANCTIONED_PUBLISHERS:
                self.report(
                    target,
                    f"rebinding swap-published attribute {attrs[0]!r} "
                    f"outside {sorted(_SANCTIONED_PUBLISHERS)} — "
                    "publish new generations only through the "
                    "sanctioned swap point (swap discipline, PR 7)",
                )
            return
        for attr in attrs[1:]:
            if attr in _PUBLISHED_ATTRS:
                self.report(
                    target,
                    f"write through swap-published attribute "
                    f"{attr!r} mutates a generation readers may "
                    "have pinned — build the next generation and "
                    "swap (swap discipline, PR 7)",
                )
                return

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, augmented=False)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target, augmented=False)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, augmented=True)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            receiver_attrs = _chain_attrs(func.value)
            for attr in receiver_attrs:
                if attr in _PUBLISHED_ATTRS:
                    self.report(
                        node,
                        f"mutating call .{func.attr}() through "
                        f"swap-published attribute {attr!r} — "
                        "readers may have pinned this generation; "
                        "build the next one and swap (swap "
                        "discipline, PR 7)",
                    )
                    break
        self.generic_visit(node)


class Flip006LockDiscipline(Rule):
    id = "FLIP006"
    title = "lock-discipline"
    contract = (
        "state shared between the writer task and request handlers "
        "is published by single-assignment atomic swap"
    )

    def applies_to(self, path: str) -> bool:
        return "serve" in _parts(path)

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        visitor = _Flip006Visitor(self.id)
        visitor.visit(tree)
        return visitor.findings


# ---------------------------------------------------------------------------
# FLIP007 — metric-name catalog
# ---------------------------------------------------------------------------

#: registry getters whose first argument is a metric name
_INSTRUMENT_METHODS = frozenset({"counter", "gauge", "histogram"})


class _Flip007Visitor(_RuleVisitor):
    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        if not node.args:
            return
        first = node.args[0]
        if not (
            isinstance(first, ast.Constant)
            and isinstance(first.value, str)
        ):
            # catalog constants, variables, f-strings: all fine — the
            # rule only rejects a verbatim inline name
            return
        func = node.func
        call: str | None = None
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _INSTRUMENT_METHODS
        ):
            call = f".{func.attr}()"
        elif isinstance(func, ast.Attribute) and func.attr == "span":
            call = ".span()"
        else:
            resolved = self.resolve(func)
            if resolved is not None and (
                resolved == "trace_span"
                or resolved.endswith(".trace_span")
            ):
                call = "trace_span()"
        if call is not None:
            self.report(
                node,
                f"inline name literal {first.value!r} passed to "
                f"{call} — metric and span names come from "
                "repro.obs.catalog constants, so exposition, docs "
                "and dashboards never drift (observability catalog, "
                "PR 9)",
            )


class Flip007MetricCatalog(Rule):
    id = "FLIP007"
    title = "metric-catalog"
    contract = (
        "metric and span names outside repro.obs are catalog "
        "constants, never inline string literals"
    )

    def applies_to(self, path: str) -> bool:
        # the obs package itself defines the names (and its catalog
        # necessarily spells them out as literals)
        return "obs" not in _parts(path)

    def check(self, tree: ast.Module, path: str) -> list[RawFinding]:
        visitor = _Flip007Visitor(self.id)
        visitor.visit(tree)
        return visitor.findings


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Flip001SnapshotImmutability(),
        Flip002AsyncBlocking(),
        Flip003AtomicWrite(),
        Flip004ErrorContract(),
        Flip005Determinism(),
        Flip006LockDiscipline(),
        Flip007MetricCatalog(),
    )
}

RULE_IDS: list[str] = sorted(RULES)


def resolve_rules(ids: list[str] | None) -> list[Rule]:
    """The rule objects for ``ids`` (all rules when ``None``)."""
    if ids is None:
        return [RULES[rule_id] for rule_id in RULE_IDS]
    selected: list[Rule] = []
    for rule_id in ids:
        normalized = rule_id.upper()
        if normalized not in RULES:
            raise ConfigError(
                f"unknown rule {rule_id!r} (known: "
                f"{', '.join(RULE_IDS)})"
            )
        selected.append(RULES[normalized])
    return selected
