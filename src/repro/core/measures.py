"""Correlation measures (paper Section 2.1, Tables 1 and 2).

The paper's Table 2 lists the five known *null-invariant* correlation
measures.  Each is a generalized mean of the conditional probabilities

    P(A | a_i) = sup(A) / sup(a_i),    a_i in A,

which makes them independent of the number of null transactions and
therefore stable on large sparse datasets.  The fixed ordering

    All Confidence <= Coherence <= Cosine <= Kulczynski <= Max Confidence
    (minimum)         (harmonic)   (geometric) (arithmetic)  (maximum)

follows from the classical mean inequalities and is exercised by the
property-test suite.

The module also implements the *expectation-based* measures (expected
support, Lift, chi-square) that the paper's Table 1 uses to demonstrate
why such measures are unreliable: their sign depends on the total
transaction count ``N``.
"""

from __future__ import annotations

import math
import re
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = [
    "Measure",
    "MEASURES",
    "get_measure",
    "all_confidence",
    "coherence",
    "cosine",
    "kulczynski",
    "max_confidence",
    "conditional_probabilities",
    "expected_support",
    "lift",
    "chi_square",
    "expectation_sign",
]


# ---------------------------------------------------------------------------
# null-invariant measures
# ---------------------------------------------------------------------------


def conditional_probabilities(
    sup_itemset: int, item_supports: Sequence[int]
) -> list[float]:
    """The probabilities ``P(A | a_i) = sup(A) / sup(a_i)``.

    Items with zero support contribute probability 0 (their itemset
    necessarily has zero support as well).
    """
    if not item_supports:
        raise ConfigError("itemset must contain at least one item")
    if sup_itemset < 0:
        raise ConfigError(f"negative itemset support {sup_itemset}")
    probabilities = []
    for support in item_supports:
        if support < sup_itemset:
            raise ConfigError(
                f"item support {support} below itemset support {sup_itemset}; "
                "supports are inconsistent"
            )
        probabilities.append(0.0 if support == 0 else sup_itemset / support)
    return probabilities


def all_confidence(sup_itemset: int, item_supports: Sequence[int]) -> float:
    """Minimum of the conditional probabilities."""
    return min(conditional_probabilities(sup_itemset, item_supports))


def coherence(sup_itemset: int, item_supports: Sequence[int]) -> float:
    """Harmonic mean of the conditional probabilities.

    This is the paper's re-definition of Coherence (footnote to
    Table 2), which preserves the ordering of the original
    intersection-over-union form.
    """
    probabilities = conditional_probabilities(sup_itemset, item_supports)
    if any(p == 0.0 for p in probabilities):
        return 0.0
    k = len(probabilities)
    return k / sum(1.0 / p for p in probabilities)


def cosine(sup_itemset: int, item_supports: Sequence[int]) -> float:
    """Geometric mean of the conditional probabilities."""
    probabilities = conditional_probabilities(sup_itemset, item_supports)
    if any(p == 0.0 for p in probabilities):
        return 0.0
    k = len(probabilities)
    # exp(mean(log)) is numerically steadier than prod()**(1/k)
    return math.exp(sum(math.log(p) for p in probabilities) / k)


def kulczynski(sup_itemset: int, item_supports: Sequence[int]) -> float:
    """Arithmetic mean of the conditional probabilities (Kulc, eq. 1)."""
    probabilities = conditional_probabilities(sup_itemset, item_supports)
    return sum(probabilities) / len(probabilities)


def max_confidence(sup_itemset: int, item_supports: Sequence[int]) -> float:
    """Maximum of the conditional probabilities."""
    return max(conditional_probabilities(sup_itemset, item_supports))


@dataclass(frozen=True)
class Measure:
    """A named correlation measure with its algebraic metadata.

    Attributes
    ----------
    name:
        Canonical lowercase name.
    fn:
        ``fn(sup_itemset, item_supports) -> float``.
    mean_kind:
        Which generalized mean the measure realizes (paper Table 2).
    anti_monotonic:
        True for measures that can only decrease when the itemset
        grows (All Confidence, Coherence).  The paper's contribution is
        pruning for the *non*-anti-monotonic ones.
    null_invariant:
        True for the five Table-2 measures.
    aliases:
        Accepted alternative spellings for :func:`get_measure`.
    """

    name: str
    fn: Callable[[int, Sequence[int]], float]
    mean_kind: str
    anti_monotonic: bool
    null_invariant: bool = True
    aliases: tuple[str, ...] = field(default_factory=tuple)

    def __call__(
        self, sup_itemset: int, item_supports: Sequence[int]
    ) -> float:
        return self.fn(sup_itemset, item_supports)


MEASURES: dict[str, Measure] = {
    measure.name: measure
    for measure in (
        Measure(
            name="all_confidence",
            fn=all_confidence,
            mean_kind="minimum",
            anti_monotonic=True,
            aliases=("allconf", "all-confidence", "all confidence"),
        ),
        Measure(
            name="coherence",
            fn=coherence,
            mean_kind="harmonic",
            anti_monotonic=True,
            aliases=("jaccard",),
        ),
        Measure(
            name="cosine",
            fn=cosine,
            mean_kind="geometric",
            anti_monotonic=False,
        ),
        Measure(
            name="kulczynski",
            fn=kulczynski,
            mean_kind="arithmetic",
            anti_monotonic=False,
            aliases=("kulc", "kulczynsky"),
        ),
        Measure(
            name="max_confidence",
            fn=max_confidence,
            mean_kind="maximum",
            anti_monotonic=False,
            aliases=("maxconf", "max-confidence", "max confidence"),
        ),
    )
}

def _normalize_measure_name(name: str) -> str:
    """Canonical lookup key: lowercase, with whitespace/hyphen/underscore
    runs collapsed to a single underscore, so ``"Kulc"``, ``" cosine "``
    and ``"All Confidence"`` all resolve."""
    return re.sub(r"[\s_-]+", "_", name.strip().lower())


_ALIAS_INDEX: dict[str, str] = {}
for _measure in MEASURES.values():
    _ALIAS_INDEX[_normalize_measure_name(_measure.name)] = _measure.name
    for _alias in _measure.aliases:
        _ALIAS_INDEX[_normalize_measure_name(_alias)] = _measure.name


def get_measure(measure: str | Measure) -> Measure:
    """Resolve a measure by name/alias, or pass an instance through.

    Resolution is insensitive to case, surrounding whitespace, and the
    choice of space/hyphen/underscore separator.
    """
    if isinstance(measure, Measure):
        return measure
    canonical = _ALIAS_INDEX.get(_normalize_measure_name(measure))
    if canonical is None:
        known = ", ".join(sorted(MEASURES))
        raise ConfigError(f"unknown measure {measure!r}; known: {known}")
    return MEASURES[canonical]


# ---------------------------------------------------------------------------
# expectation-based measures (Table 1 — shown to be unreliable)
# ---------------------------------------------------------------------------


def expected_support(
    item_supports: Sequence[int], n_transactions: int
) -> float:
    """Independence-model expectation ``N * prod(sup(a_i)/N)``."""
    if n_transactions <= 0:
        raise ConfigError("n_transactions must be positive")
    expectation = float(n_transactions)
    for support in item_supports:
        if support < 0 or support > n_transactions:
            raise ConfigError(
                f"item support {support} outside [0, {n_transactions}]"
            )
        expectation *= support / n_transactions
    return expectation


def lift(
    sup_itemset: int, item_supports: Sequence[int], n_transactions: int
) -> float:
    """Observed over expected support; >1 reads "positive", <1 "negative"."""
    expectation = expected_support(item_supports, n_transactions)
    if expectation == 0.0:
        return math.inf if sup_itemset > 0 else 0.0
    return sup_itemset / expectation


def expectation_sign(
    sup_itemset: int, item_supports: Sequence[int], n_transactions: int
) -> str:
    """Classification used in Table 1: ``positive``/``negative``/``independent``.

    The whole point of the paper's Table 1 is that this answer flips
    with ``N`` while the actual relationship does not.
    """
    expectation = expected_support(item_supports, n_transactions)
    if sup_itemset > expectation:
        return "positive"
    if sup_itemset < expectation:
        return "negative"
    return "independent"


def chi_square(
    sup_a: int, sup_b: int, sup_ab: int, n_transactions: int
) -> float:
    """Pearson chi-square statistic of the 2x2 contingency table of two
    items (used with Lift in the literature the paper contrasts)."""
    n = n_transactions
    if n <= 0:
        raise ConfigError("n_transactions must be positive")
    if not (0 <= sup_ab <= min(sup_a, sup_b)) or max(sup_a, sup_b) > n:
        raise ConfigError("inconsistent contingency counts")
    cells = {
        (0, 0): sup_ab,                      # A and B
        (0, 1): sup_a - sup_ab,              # A, not B
        (1, 0): sup_b - sup_ab,              # not A, B
        (1, 1): n - sup_a - sup_b + sup_ab,  # neither
    }
    row = (sup_a, n - sup_a)
    col = (sup_b, n - sup_b)
    statistic = 0.0
    for i, r in enumerate(row):
        for j, c in enumerate(col):
            expected = r * c / n
            if expected == 0.0:
                continue
            diff = cells[(i, j)] - expected
            statistic += diff * diff / expected
    return statistic
