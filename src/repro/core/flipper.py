"""The Flipper mining algorithm (paper Section 4, Algorithm 1).

The search space is the table ``M`` of cells ``Q(h,k)`` — k-itemsets
at taxonomy level h.  Flipper sweeps it top-down, zigzagging through
the two top rows first (Q1,2 → Q2,2 → Q1,3 → Q2,3 → …) so that the
termination test always has two vertically consecutive cells at hand,
then proceeding row by row.  Four pruning devices cut the space:

* support pruning with per-level thresholds θ_h,
* flipping pruning — only *chain-alive* itemsets (whole vertical chain
  labeled and alternating) are extended to the next level,
* TPG (Theorem 3) — two consecutive all-non-positive cells end the
  horizontal growth for every column ≥ k,
* SIBP (Theorem 2 / Corollary 2) — smallest-support items whose max
  correlation stays below γ, together with their generalization, are
  banned from all larger itemsets.

:class:`PruningConfig` turns the devices on incrementally, producing
exactly the BASIC → FLIPPING → +TPG → +SIBP ladder the paper
evaluates in Figure 8.

Since the engine refactor, :class:`FlipperMiner` is a thin
orchestrator: it owns the *sweep* (visit order, TPG/SIBP cross-cell
decisions, pattern extraction) while each cell visit is delegated to
an :class:`~repro.engine.plan.ExecutionPlan` that stages candidate
generation → batched support counting → labeling → pruning, with
counting fanned out through a pluggable
:class:`~repro.engine.executors.Executor` (``executor="serial"`` or
``"process"``).  ARCHITECTURE.md documents the layering and the data
handoffs between the stages.
"""

from __future__ import annotations

import os
import tempfile
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.core.cells import Cell
from repro.core.counting import (
    CountingBackend,
    DeltaCounter,
    PartitionedBackend,
    make_backend,
)
from repro.core.itemsets import generalize
from repro.core.labels import Label, flips
from repro.core.measures import Measure, get_measure
from repro.core.patterns import ChainLink, FlippingPattern, MiningResult
from repro.core.stats import MiningStats, Timer
from repro.core.thresholds import ResolvedThresholds, Thresholds
from repro.data.database import TransactionDatabase
from repro.data.shards import (
    ShardedTransactionStore,
    open_or_partition_store,
)
from repro.engine.executors import Executor, make_executor
from repro.engine.partition import (
    PartitionedExecutor,
    build_partitioned_stages,
)
from repro.engine.plan import ExecutionPlan, MiningContext, Stage
from repro.engine.stages import build_default_stages
from repro.errors import ConfigError
from repro.obs import catalog
from repro.obs.tracing import trace_span

__all__ = ["PruningConfig", "FlipperMiner", "mine_flipping_patterns"]


@dataclass(frozen=True)
class PruningConfig:
    """Which pruning devices are active (the paper's method ladder)."""

    flipping: bool = True
    tpg: bool = True
    sibp: bool = True

    def __post_init__(self) -> None:
        if (self.tpg or self.sibp) and not self.flipping:
            raise ConfigError(
                "TPG and SIBP build on flipping-based pruning; "
                "enable flipping as well"
            )

    @property
    def name(self) -> str:
        if not self.flipping:
            return "basic"
        parts = ["flipping"]
        if self.tpg:
            parts.append("tpg")
        if self.sibp:
            parts.append("sibp")
        return "+".join(parts)

    @classmethod
    def basic(cls) -> "PruningConfig":
        """Level-wise Apriori over all rows; no correlation pruning.
        The paper's BASIC baseline and this library's completeness
        oracle."""
        return cls(flipping=False, tpg=False, sibp=False)

    @classmethod
    def flipping_only(cls) -> "PruningConfig":
        """Flipping (vertical chain) pruning only — the paper's
        "naive flipping" method of Figure 9."""
        return cls(flipping=True, tpg=False, sibp=False)

    @classmethod
    def flipping_tpg(cls) -> "PruningConfig":
        return cls(flipping=True, tpg=True, sibp=False)

    @classmethod
    def full(cls) -> "PruningConfig":
        """The complete Flipper algorithm."""
        return cls(flipping=True, tpg=True, sibp=True)

    @classmethod
    def ladder(cls) -> list["PruningConfig"]:
        """The four configurations of Figure 8, weakest first."""
        return [
            cls.basic(),
            cls.flipping_only(),
            cls.flipping_tpg(),
            cls.full(),
        ]


class FlipperMiner:
    """One mining run over a database + taxonomy + thresholds.

    Parameters
    ----------
    database:
        The transactions, bound to a balanced taxonomy — either an
        in-memory :class:`TransactionDatabase` or an on-disk
        :class:`~repro.data.shards.ShardedTransactionStore` (the
        out-of-core partitioned path; see ARCHITECTURE.md).
    thresholds:
        γ, ε and the per-level minimum supports.
    measure:
        Any null-invariant measure name or :class:`Measure`
        (default Kulczynski, as in the paper's experiments).
    pruning:
        Which devices to enable; default: full Flipper.
    backend:
        ``"bitmap"`` (default), ``"horizontal"`` or ``"numpy"``
        counting, or a :class:`CountingBackend` instance.
    executor:
        ``"serial"`` (default) or ``"process"`` — where batched
        support counts run — or an :class:`Executor` instance (then
        ``workers``/``chunk_size`` must be left unset; the miner does
        not close executors it did not create).
    workers:
        Worker processes for the ``process`` executor (default: CPU
        count).
    chunk_size:
        Candidates per counting chunk (default: executor-specific
        auto sizing).
    max_k:
        Optional hard cap on itemset size (safety valve for
        pathological data; ``None`` = bounded by the data itself).
    partitions:
        Split an in-memory database into this many contiguous on-disk
        shards and mine through the partitioned path (SON-style
        count-and-merge; output is byte-identical to the monolithic
        path).  Implied when ``database`` is already a
        :class:`ShardedTransactionStore`.
    memory_budget_mb:
        Bound (per process) on resident per-shard counting backends in
        a partitioned run; shards beyond the budget are evicted LRU
        and re-read from disk on demand.
    shard_dir:
        Where ``partitions=N`` materializes the shards (default: a
        temporary directory removed after :meth:`mine`).
    sample_rate:
        Switch :meth:`mine` onto the sample-then-verify approximate
        path (see :class:`~repro.approx.miner.ApproxMiner`): phase 1
        screens this fraction of the store under Hoeffding-relaxed
        thresholds, phase 2 exactly verifies the candidates through
        the partitioned counting path, so every returned pattern is
        exact.  Implies ``partitions=1`` for an in-memory database.
    confidence:
        Probability that the approximate screen keeps every true
        pattern (default 0.95); only with ``sample_rate``.
    sample_method, sample_seed:
        ``"stratified"`` (default) or ``"reservoir"`` sampling, and
        its deterministic seed; only with ``sample_rate``.
    stages:
        Override the engine pipeline run per cell visit (default:
        :func:`~repro.engine.stages.build_default_stages`, or the
        partitioned variant).  The approximate path uses this hook
        for its instrumented count stage.
    """

    def __init__(
        self,
        database: TransactionDatabase | ShardedTransactionStore,
        thresholds: Thresholds,
        measure: str | Measure = "kulczynski",
        pruning: PruningConfig | None = None,
        backend: str | CountingBackend = "bitmap",
        executor: str | Executor = "serial",
        workers: int | None = None,
        chunk_size: int | None = None,
        max_k: int | None = None,
        partitions: int | None = None,
        memory_budget_mb: float | None = None,
        shard_dir: str | Path | None = None,
        sample_rate: float | None = None,
        confidence: float | None = None,
        sample_method: str = "stratified",
        sample_seed: int = 0,
        stages: "Sequence[Stage] | None" = None,
    ) -> None:
        self._shard_tmpdir: tempfile.TemporaryDirectory[str] | None = None
        self._raw_thresholds = thresholds
        self._incremental_runner: object | None = None
        if sample_rate is None:
            if (
                confidence is not None
                or sample_seed != 0
                or sample_method != "stratified"
            ):
                raise ConfigError(
                    "confidence/sample_method/sample_seed tune the "
                    "sample-then-verify path; pass sample_rate as well"
                )
        else:
            if not 0.0 < sample_rate <= 1.0:
                raise ConfigError(
                    f"sample_rate must be in (0, 1], got {sample_rate}"
                )
            if stages is not None:
                raise ConfigError(
                    "the sample-then-verify path builds its own screen "
                    "pipeline; stages= cannot be combined with "
                    "sample_rate"
                )
            if partitions is None and not isinstance(
                database, ShardedTransactionStore
            ):
                # approximate mining samples from (and verifies over)
                # the shard substrate
                partitions = 1
        self._sample_rate = sample_rate
        self._confidence = confidence
        self._sample_method = sample_method
        self._sample_seed = sample_seed
        store = self._resolve_store(
            database, partitions, memory_budget_mb, shard_dir
        )
        self._store = store
        self._database = database if store is None else store
        self._taxonomy = self._database.taxonomy
        self._height = self._taxonomy.height
        if self._height < 2:
            raise ConfigError(
                "flipping correlations need a taxonomy of height >= 2 "
                f"(got height {self._height})"
            )
        self._thresholds: ResolvedThresholds = thresholds.resolve(
            self._height, self._database.n_transactions
        )
        self._measure = get_measure(measure)
        self._pruning = (
            pruning if pruning is not None else PruningConfig.full()
        )
        self._memory_budget_mb = memory_budget_mb
        if store is not None:
            self._init_partitioned(
                store,
                backend,
                executor,
                workers,
                chunk_size,
                memory_budget_mb,
            )
        else:
            assert isinstance(database, TransactionDatabase)
            if isinstance(backend, str):
                self._backend: CountingBackend = make_backend(
                    backend, database
                )
            else:
                self._backend = backend
            if isinstance(executor, str):
                self._executor: Executor = make_executor(
                    executor,
                    self._backend,
                    database,
                    workers=workers,
                    chunk_size=chunk_size,
                )
                self._owns_executor = True
            else:
                if workers is not None or chunk_size is not None:
                    raise ConfigError(
                        "workers/chunk_size configure a named executor; "
                        "pass them to your Executor instance instead"
                    )
                self._executor = executor
                self._owns_executor = False
        if max_k is not None and max_k < 2:
            raise ConfigError(f"max_k must be >= 2, got {max_k}")
        self._max_k = max_k

        # --- run state, shared with the engine stages -------------------
        self._stats = MiningStats(
            method=self._pruning.name, measure=self._measure.name
        )
        self._context = MiningContext(
            database=self._database,
            taxonomy=self._taxonomy,
            thresholds=self._thresholds,
            measure=self._measure,
            pruning=self._pruning,
            backend=self._backend,
            executor=self._executor,
            stats=self._stats,
        )
        pipeline: Sequence[Stage] = (
            list(stages)
            if stages is not None
            else build_partitioned_stages()
            if store is not None
            else build_default_stages()
        )
        self._plan = ExecutionPlan(self._context, pipeline)
        self._ancestor_maps: dict[int, dict[int, int]] = {}
        # TPG: smallest column proven free of flipping patterns
        self._k_cap: int | None = None

    # ------------------------------------------------------------------
    # partitioned-path construction
    # ------------------------------------------------------------------

    def _resolve_store(
        self,
        database: TransactionDatabase | ShardedTransactionStore,
        partitions: int | None,
        memory_budget_mb: float | None,
        shard_dir: str | Path | None,
    ) -> ShardedTransactionStore | None:
        """Decide whether this run is partitioned, materializing the
        shard store when ``partitions=N`` asks for one."""
        if (
            not isinstance(database, ShardedTransactionStore)
            and partitions is None
        ):
            if memory_budget_mb is not None:
                raise ConfigError(
                    "memory_budget_mb bounds the partitioned path; "
                    "pass partitions=N or a ShardedTransactionStore"
                )
            if shard_dir is not None:
                raise ConfigError("shard_dir only applies with partitions=N")
            return None
        store, self._shard_tmpdir = open_or_partition_store(
            database, partitions, shard_dir
        )
        return store

    def _init_partitioned(
        self,
        store: ShardedTransactionStore,
        backend: str | CountingBackend,
        executor: str | Executor,
        workers: int | None,
        chunk_size: int | None,
        memory_budget_mb: float | None,
    ) -> None:
        """Build the partitioned backend + executor pair.

        Named backends are wrapped in a :class:`DeltaCounter` (a
        caching, delta-maintainable :class:`PartitionedBackend`), so
        every partitioned run leaves warm support caches behind and
        :meth:`update` can re-mine a grown store incrementally.
        """
        if isinstance(backend, str):
            self._backend = DeltaCounter(
                store, inner=backend, memory_budget_mb=memory_budget_mb
            )
        elif isinstance(backend, PartitionedBackend):
            if backend.store is not store:
                raise ConfigError(
                    "the PartitionedBackend counts a different store "
                    "than the one being mined; build it from the same "
                    "ShardedTransactionStore"
                )
            if memory_budget_mb is not None:
                raise ConfigError(
                    "memory_budget_mb configures a backend the miner "
                    "builds; pass it to your PartitionedBackend instead"
                )
            self._backend = backend
        else:
            raise ConfigError(
                "a partitioned run counts through per-shard backends; "
                "pass a backend name or a PartitionedBackend instance, "
                f"not {type(backend).__name__}"
            )
        if isinstance(executor, str):
            key = executor.strip().lower()
            if key == "serial":
                if workers not in (None, 1):
                    raise ConfigError(
                        "the serial executor runs one worker, got "
                        f"workers={workers}"
                    )
                resolved_workers = 1
            elif key == "partitioned":
                resolved_workers = workers or 1
            elif key == "process":
                resolved_workers = workers or os.cpu_count() or 1
            else:
                raise ConfigError(
                    f"unknown executor {executor!r} for a partitioned "
                    "run; known: serial, process, partitioned"
                )
            self._executor = PartitionedExecutor(
                self._backend,
                workers=resolved_workers,
                chunk_size=chunk_size,
            )
            self._owns_executor = True
        elif isinstance(executor, PartitionedExecutor):
            if workers is not None or chunk_size is not None:
                raise ConfigError(
                    "workers/chunk_size configure a named executor; "
                    "pass them to your Executor instance instead"
                )
            self._executor = executor
            self._owns_executor = False
        else:
            raise ConfigError(
                "a partitioned run needs a PartitionedExecutor, not "
                f"{type(executor).__name__}"
            )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def mine(self) -> MiningResult:
        """Run the sweep and return the flipping patterns.

        With ``sample_rate`` set this runs the sample-then-verify
        approximate path instead: the returned patterns are still
        exact-verified, but patterns may be missed with probability
        at most ``1 - confidence`` (see
        :class:`~repro.approx.miner.ApproxMiner`).
        """
        if self._sample_rate is not None:
            return self._mine_approximate()
        # Re-resolve thresholds against the current transaction count
        # and drop per-run cross-cell state: update() grows the shard
        # store in place, so a repeated mine() must bind fractional
        # minimum supports to the grown N and must not reuse cells or
        # cached pair supports counted over the smaller store (for a
        # static database all of this is a no-op re-derivation).
        resolved = self._raw_thresholds.resolve(
            self._height, self._database.n_transactions
        )
        if resolved != self._thresholds:
            self._thresholds = resolved
            self._context.thresholds = resolved
        context = self._context
        context.cells.clear()
        context.node_supports.clear()
        context.frequent_items.clear()
        context.banned.clear()
        context.pair_supports.clear()
        context.removal_lists.clear()
        self._k_cap = None
        self._stats = MiningStats(
            method=self._pruning.name, measure=self._measure.name
        )
        context.stats = self._stats
        try:
            with trace_span(catalog.SPAN_MINE), Timer() as timer:
                with trace_span(catalog.SPAN_PREPARE):
                    self._prepare_levels()
                if self._pruning.flipping:
                    self._sweep_flipping()
                else:
                    self._sweep_basic()
                patterns = self._extract_patterns()
        finally:
            if self._owns_executor:
                self._executor.close()
            # self._shard_tmpdir is NOT cleaned here: repeated mine()
            # calls must still find the shards, and TemporaryDirectory
            # removes itself when the miner is garbage-collected.
        self._stats.elapsed_seconds = timer.seconds
        # Chunks counted inside worker processes increment the workers'
        # backend counters, not the parent's; fold them back in.
        self._stats.db_scans = self._backend.scans + getattr(
            self._executor, "extra_scans", 0
        )
        self._stats.n_patterns = len(patterns)
        self._n_mined_transactions = self._database.n_transactions
        config = {
            "method": self._pruning.name,
            "measure": self._measure.name,
            "gamma": self._thresholds.gamma,
            "epsilon": self._thresholds.epsilon,
            "min_counts": list(self._thresholds.min_counts),
            "height": self._height,
            "n_transactions": self._database.n_transactions,
            "executor": self._executor.name,
            "workers": getattr(self._executor, "workers", 1),
            "chunk_size": getattr(self._executor, "chunk_size", None),
            "partitions": (
                self._store.n_shards if self._store is not None else 1
            ),
            # report the budget actually in force (a user-supplied
            # PartitionedBackend carries its own)
            "memory_budget_mb": (
                self._backend.memory_budget_mb
                if isinstance(self._backend, PartitionedBackend)
                else self._memory_budget_mb
            ),
        }
        result = MiningResult(
            patterns=patterns, stats=self._stats, config=config
        )
        self._last_result = result
        return result

    def _mine_approximate(self) -> MiningResult:
        """The sample-then-verify path behind ``sample_rate=``.

        Phase 2 verification runs through this miner's own
        partitioned backend, so repeated approximate runs (and later
        exact runs or :meth:`update` calls) share one warm counter.
        """
        # Local import: repro.approx imports this module.
        from repro.approx.miner import ApproxMiner

        assert self._store is not None  # guaranteed by __init__
        assert isinstance(self._backend, PartitionedBackend)
        runner = ApproxMiner(
            self._store,
            self._raw_thresholds,
            sample_rate=self._sample_rate,  # type: ignore[arg-type]
            confidence=(
                0.95 if self._confidence is None else self._confidence
            ),
            measure=self._measure,
            pruning=self._pruning,
            sample_method=self._sample_method,
            sample_seed=self._sample_seed,
            max_k=self._max_k,
            chunk_size=getattr(self._executor, "chunk_size", None),
            verify_backend=self._backend,
        )
        result = runner.mine()
        self._stats = result.stats
        self._context.stats = self._stats
        self._n_mined_transactions = self._database.n_transactions
        #: phase-1 candidates with support confidence intervals
        self.approx_candidates = runner.candidates
        self.approx_bounds = runner.bounds
        self._last_result = result
        return result

    def update(self, transactions: Iterable[Iterable[str]]) -> MiningResult:
        """Append a delta batch to the shard store and re-mine
        incrementally (see :class:`~repro.engine.incremental.
        IncrementalMiner`).

        Only available on partitioned runs (``partitions=N`` or a
        :class:`ShardedTransactionStore`): the delta lands in new
        shard files, the run's :class:`DeltaCounter` folds the delta
        counts into its cached global supports, and the returned
        patterns are byte-identical to a from-scratch mine of the
        grown store.
        """
        if self._store is None:
            raise ConfigError(
                "update() maintains results over an on-disk shard "
                "store; pass partitions=N or a ShardedTransactionStore "
                "to the miner"
            )
        if self._incremental_runner is None:
            # Local import: engine.incremental imports this module.
            from repro.engine.incremental import IncrementalMiner

            counter = (
                self._backend
                if isinstance(self._backend, DeltaCounter)
                else DeltaCounter(
                    self._store,
                    inner=self._backend.inner_name,  # type: ignore[union-attr]
                    memory_budget_mb=self._backend.memory_budget_mb,  # type: ignore[union-attr]
                )
            )
            runner = IncrementalMiner(
                self._store,
                self._raw_thresholds,
                measure=self._measure,
                pruning=self._pruning,
                backend=counter,
                workers=getattr(self._executor, "workers", None),
                chunk_size=getattr(self._executor, "chunk_size", None),
                max_k=self._max_k,
            )
            last = getattr(self, "_last_result", None)
            if (
                last is not None
                # an approximate result may under-report patterns and
                # must never seed the exact incremental path
                and "approx" not in last.config
                and self._n_mined_transactions
                == self._database.n_transactions
            ):
                runner.seed(last, self._thresholds)
            self._incremental_runner = runner
        return self._incremental_runner.update(transactions)  # type: ignore[attr-defined]

    @property
    def stats(self) -> MiningStats:
        return self._stats

    @property
    def context(self) -> MiningContext:
        """The run state shared with the engine stages (inspection)."""
        return self._context

    @property
    def plan(self) -> ExecutionPlan:
        """The staged execution plan driving each cell visit."""
        return self._plan

    def cell(self, level: int, k: int) -> Cell | None:
        """Access a processed cell (inspection / tests)."""
        return self._context.cells.get((level, k))

    def iter_cells(self) -> list[tuple[int, int, Cell]]:
        """All processed cells as ``(level, k, cell)``, sorted.

        Used by the bench harness to count positive/negative patterns
        across the whole search space (paper Table 4)."""
        return [
            (level, k, cell)
            for (level, k), cell in sorted(self._context.cells.items())
        ]

    # ------------------------------------------------------------------
    # preparation
    # ------------------------------------------------------------------

    def _prepare_levels(self) -> None:
        """Scan for single-node supports and frequent items per level
        (Algorithm 1, line 1)."""
        taxonomy = self._taxonomy
        context = self._context
        for level in range(1, self._height + 1):
            supports = self._backend.node_supports(level)
            context.node_supports[level] = supports
            theta = self._thresholds.min_count(level)
            context.frequent_items[level] = {
                node for node, support in supports.items() if support >= theta
            }
            self._ancestor_maps[level] = taxonomy.item_ancestor_map(level)
            context.banned[level] = {}
        for node in taxonomy.iter_nodes():
            if node.level >= 2:
                assert node.parent_id is not None
                context.parent_of[node.node_id] = node.parent_id

    def _k_bound(self) -> int:
        """Upper bound on itemset size (paper Section 4.1): number of
        level-1 categories, capped by the widest level-1 projection."""
        bound = min(
            len(self._taxonomy.nodes_at_level(1)),
            self._database.width_at_level(1),
        )
        if self._max_k is not None:
            bound = min(bound, self._max_k)
        return bound

    # ------------------------------------------------------------------
    # sweeps (the orchestration the engine stages don't see)
    # ------------------------------------------------------------------

    def _process_cell(self, level: int, k: int) -> Cell:
        """Run the staged plan for one ``Q(h,k)`` cell."""
        return self._plan.run_cell(level, k)

    def _sweep_flipping(self) -> None:
        """Zigzag over rows 1–2, then row-wise (Algorithm 1)."""
        k_bound = self._k_bound()
        # --- zigzag phase (lines 2-7) -----------------------------------
        for k in range(2, k_bound + 1):
            if self._k_cap is not None and k >= self._k_cap:
                break
            cell_top = self._process_cell(1, k)
            cell_below = self._process_cell(2, k)
            if self._pruning.sibp:
                self._apply_sibp(upper_level=1, lower_level=2, k=k)
            if self._pruning.tpg and self._tpg_fires(
                cell_top, cell_below, k=k
            ):
                break
            if cell_top.n_frequent == 0:
                # No frequent (1,k)-itemsets: anti-monotonicity kills every
                # wider column at level 1, hence every longer chain.
                break
        # --- row-wise phase (lines 8-15) --------------------------------
        for level in range(3, self._height + 1):
            columns = self._columns_with_alive(level - 1)
            for k in columns:
                if self._k_cap is not None and k >= self._k_cap:
                    break
                cell_above = self._context.cells[(level - 1, k)]
                cell_here = self._process_cell(level, k)
                if self._pruning.sibp:
                    self._apply_sibp(
                        upper_level=level - 1, lower_level=level, k=k
                    )
                if self._pruning.tpg and self._tpg_fires(
                    cell_above, cell_here, k=k
                ):
                    break

    def _sweep_basic(self) -> None:
        """BASIC baseline: full per-row Apriori, no correlation pruning."""
        for level in range(1, self._height + 1):
            k = 2
            while True:
                if self._max_k is not None and k > self._max_k:
                    break
                cell = self._process_cell(level, k)
                if cell.n_frequent == 0:
                    break
                k += 1

    def _columns_with_alive(self, level: int) -> list[int]:
        """Columns of a processed row that still hold chain-alive
        itemsets — the only ones worth extending downward."""
        return sorted(
            k
            for (row, k), cell in self._context.cells.items()
            if row == level and cell.n_alive > 0
        )

    # ------------------------------------------------------------------
    # TPG (Theorem 3)
    # ------------------------------------------------------------------

    def _tpg_fires(self, upper: Cell, lower: Cell, k: int) -> bool:
        """All itemsets in two vertically consecutive cells non-positive
        → no flipping pattern in any column >= k (Theorem 3)."""
        if upper.has_positive or lower.has_positive:
            return False
        self._k_cap = k if self._k_cap is None else min(self._k_cap, k)
        self._stats.tpg_events.append((upper.level, k))
        return True

    # ------------------------------------------------------------------
    # SIBP (Theorem 2 / Corollary 2)
    # ------------------------------------------------------------------

    def _apply_sibp(self, upper_level: int, lower_level: int, k: int) -> None:
        """Ban lower-level items whose generalization is also a removal
        candidate: every superset of the item (size > k) then sits
        under two consecutive non-positive rows and cannot flip.

        The per-cell removal lists are produced by the engine's
        :class:`~repro.engine.stages.SibpRemovalStage`; this cross-cell
        step stays with the sweep."""
        context = self._context
        upper = context.removal_lists.get((upper_level, k), set())
        lower = context.removal_lists.get((lower_level, k), set())
        if not upper or not lower:
            return
        banned = context.banned[lower_level]
        for item in lower:
            parent = context.parent_of.get(item)
            if parent is not None and parent in upper:
                previous = banned.get(item)
                if previous is None or k < previous:
                    banned[item] = k
                    self._stats.sibp_bans.append((lower_level, item, k))

    # ------------------------------------------------------------------
    # extraction (Algorithm 1, line 16)
    # ------------------------------------------------------------------

    def _extract_patterns(self) -> list[FlippingPattern]:
        """Collect every chain-alive itemset of the bottom row and
        materialize its chain as a :class:`FlippingPattern`."""
        height = self._height
        patterns: list[FlippingPattern] = []
        bottom_cells = sorted(
            (k, cell)
            for (level, k), cell in self._context.cells.items()
            if level == height
        )
        for _k, cell in bottom_cells:
            for entry in cell.entries.values():
                if not entry.alive:
                    continue
                # Bottom-row itemsets hold level-H node ids; resolve
                # rebalancing copies back to the items they stand for.
                leaf_items = tuple(
                    sorted(
                        self._taxonomy.node(node_id).source_id
                        for node_id in entry.itemset
                    )
                )
                links = self._chain_links(leaf_items)
                if links is not None:
                    patterns.append(FlippingPattern(links=tuple(links)))
        patterns.sort(key=lambda p: (p.k, p.leaf_names))
        return patterns

    def _chain_links(
        self, leaf_itemset: tuple[int, ...]
    ) -> list[ChainLink] | None:
        """Walk a bottom-row itemset's generalization chain upward and
        re-verify the flip at every step (cheap insurance; alive flags
        already imply it)."""
        taxonomy = self._taxonomy
        links: list[ChainLink] = []
        previous_label: Label | None = None
        k = len(leaf_itemset)
        for level in range(1, self._height + 1):
            itemset = generalize(leaf_itemset, self._ancestor_maps[level])
            if len(itemset) != k:
                return None
            cell = self._context.cells.get((level, k))
            entry = cell.get(itemset) if cell is not None else None
            if entry is None or not entry.label.is_signed:
                return None
            if previous_label is not None and not flips(
                previous_label, entry.label
            ):
                return None
            previous_label = entry.label
            links.append(
                ChainLink(
                    level=level,
                    itemset=itemset,
                    names=tuple(taxonomy.name_of(node) for node in itemset),
                    support=entry.support,
                    correlation=entry.correlation,
                    label=entry.label,
                )
            )
        return links


def mine_flipping_patterns(
    database: TransactionDatabase | ShardedTransactionStore,
    thresholds: Thresholds,
    measure: str | Measure = "kulczynski",
    pruning: PruningConfig | None = None,
    backend: str = "bitmap",
    executor: str = "serial",
    workers: int | None = None,
    chunk_size: int | None = None,
    max_k: int | None = None,
    partitions: int | None = None,
    memory_budget_mb: float | None = None,
    shard_dir: str | Path | None = None,
    sample_rate: float | None = None,
    confidence: float | None = None,
    sample_method: str = "stratified",
    sample_seed: int = 0,
) -> MiningResult:
    """One-call façade over :class:`FlipperMiner` (the main entry point).

    ``sample_rate=``/``confidence=`` switch the run onto the
    sample-then-verify approximate path (exact-verified output,
    bounded risk of missed patterns; see ARCHITECTURE.md).

    >>> result = mine_flipping_patterns(db, Thresholds(0.6, 0.35))
    ... # doctest: +SKIP
    """
    miner = FlipperMiner(
        database,
        thresholds,
        measure=measure,
        pruning=pruning,
        backend=backend,
        executor=executor,
        workers=workers,
        chunk_size=chunk_size,
        max_k=max_k,
        partitions=partitions,
        memory_budget_mb=memory_budget_mb,
        shard_dir=shard_dir,
        sample_rate=sample_rate,
        confidence=confidence,
        sample_method=sample_method,
        sample_seed=sample_seed,
    )
    return miner.mine()
