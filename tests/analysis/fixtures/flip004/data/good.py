"""Known-good: public functions wrap builtins in the library error."""

import json


class DataError(Exception):
    pass


def load_manifest(path):
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise DataError(f"cannot read manifest: {exc}") from None
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise DataError(f"{path} is not valid JSON: {exc}") from None


def _scan_raw(path):
    # private helpers may lean on the caller's guard
    return json.loads(path.read_text(encoding="utf-8"))
