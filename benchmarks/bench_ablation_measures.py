"""Ablation: the five null-invariant measures (paper Section 2.1).

The paper claims the pruning framework works for *any* null-invariant
measure and that its efficiency "is not influenced by the concrete
choice of the correlation measure".  This ablation runs full Flipper
with each measure on the same workload and compares cost.
"""

from __future__ import annotations

import pytest

from conftest import one_shot
from repro import PruningConfig
from repro.bench import run_method
from repro.core.measures import MEASURES
from repro.datasets import GROCERIES_THRESHOLDS, generate_groceries

MEASURE_NAMES = sorted(MEASURES)


@pytest.fixture(scope="module")
def groceries_db():
    return generate_groceries(scale=0.5)


@pytest.mark.parametrize("measure", MEASURE_NAMES)
def test_measure_runtime(benchmark, groceries_db, measure):
    record = one_shot(
        benchmark,
        run_method,
        groceries_db,
        GROCERIES_THRESHOLDS,
        PruningConfig.full(),
        f"full[{measure}]",
        measure=measure,
    )
    assert record.counted > 0


def test_measure_cost_is_flat(benchmark, groceries_db, capsys):
    """Candidate counts may differ (different measures label different
    itemsets) but stay within one order of magnitude — the framework,
    not the measure, does the pruning."""

    def run_all():
        return {
            measure: max(
                run_method(
                    groceries_db,
                    GROCERIES_THRESHOLDS,
                    PruningConfig.full(),
                    measure=measure,
                ).candidates,
                1,
            )
            for measure in MEASURE_NAMES
        }

    counts = one_shot(benchmark, run_all)
    with capsys.disabled():
        print("\nmeasure ablation (candidates):", counts)
    assert max(counts.values()) <= 10 * min(counts.values())


def test_ordering_implies_pattern_nesting(benchmark, groceries_db):
    """Every null-invariant measure must complete end-to-end and
    produce a sane result on the same workload."""
    from repro import mine_flipping_patterns

    def run_three():
        return {
            measure: len(
                mine_flipping_patterns(
                    groceries_db, GROCERIES_THRESHOLDS, measure=measure
                ).patterns
            )
            for measure in ("all_confidence", "kulczynski", "max_confidence")
        }

    positives = one_shot(benchmark, run_three)
    assert all(value >= 0 for value in positives.values())
