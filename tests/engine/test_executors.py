"""Executor parity: serial and parallel runs must be indistinguishable.

The acceptance bar for the engine: ``SerialExecutor`` and
``ParallelExecutor`` produce byte-identical ``MiningResult`` pattern
sets on the planted-pattern dataset, for every backend and chunking.
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.core.counting import make_backend
from repro.core.flipper import FlipperMiner, PruningConfig
from repro.datasets.groceries import GROCERIES_THRESHOLDS, generate_groceries
from repro.engine import (
    ExecutionPlan,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.engine.stages import build_default_stages
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def planted_db():
    """The groceries simulator: four planted flipping chains."""
    return generate_groceries(scale=0.2)


def _fingerprint(result) -> str:
    """Canonical byte string of a result's pattern set."""
    return json.dumps(
        [pattern.to_dict() for pattern in result.patterns], sort_keys=True
    )


def _mine(database, **kwargs):
    return FlipperMiner(database, GROCERIES_THRESHOLDS, **kwargs).mine()


class TestFactory:
    def test_known_names(self, example3_db):
        backend = make_backend("bitmap", example3_db)
        serial = make_executor("serial", backend, example3_db)
        assert isinstance(serial, SerialExecutor)
        process = make_executor(
            "process", backend, example3_db, workers=2, chunk_size=10
        )
        assert isinstance(process, ParallelExecutor)
        assert process.workers == 2
        process.close()

    def test_unknown_rejected(self, example3_db):
        backend = make_backend("bitmap", example3_db)
        with pytest.raises(ConfigError, match="unknown executor"):
            make_executor("gpu-cluster", backend, example3_db)

    def test_serial_rejects_workers(self, example3_db):
        backend = make_backend("bitmap", example3_db)
        with pytest.raises(ConfigError, match="serial"):
            make_executor("serial", backend, example3_db, workers=3)

    def test_bad_worker_and_chunk_counts(self, example3_db):
        backend = make_backend("bitmap", example3_db)
        with pytest.raises(ConfigError, match="workers"):
            ParallelExecutor(backend, example3_db, workers=0)
        with pytest.raises(ConfigError, match="chunk_size"):
            ParallelExecutor(backend, example3_db, chunk_size=0)


class TestCountingParity:
    @pytest.mark.parametrize("backend_name", ["bitmap", "horizontal", "numpy"])
    def test_parallel_counts_equal_serial(self, planted_db, backend_name):
        backend = make_backend(backend_name, planted_db)
        candidates = [
            tuple(sorted(pair))
            for pair in itertools.combinations(
                planted_db.taxonomy.nodes_at_level(2), 2
            )
        ]
        serial = SerialExecutor(backend)
        parallel = ParallelExecutor(
            backend, planted_db, workers=2, chunk_size=7, min_parallel=1
        )
        try:
            assert parallel.supports(2, candidates) == serial.supports(
                2, candidates
            )
            assert parallel.chunks_dispatched > 0
        finally:
            parallel.close()


class TestMiningParity:
    def test_serial_and_process_results_identical(self, planted_db):
        serial = _mine(planted_db)
        process = _mine(
            planted_db, executor="process", workers=2, chunk_size=25
        )
        assert len(serial.patterns) > 0
        assert _fingerprint(serial) == _fingerprint(process)

    @pytest.mark.parametrize("backend_name", ["bitmap", "numpy"])
    def test_parity_across_backends(self, planted_db, backend_name):
        serial = _mine(planted_db, backend=backend_name)
        process = _mine(
            planted_db, backend=backend_name, executor="process", workers=2
        )
        assert _fingerprint(serial) == _fingerprint(process)

    def test_parity_in_basic_mode(self, planted_db):
        serial = _mine(planted_db, pruning=PruningConfig.basic())
        process = _mine(
            planted_db,
            pruning=PruningConfig.basic(),
            executor="process",
            workers=2,
        )
        assert _fingerprint(serial) == _fingerprint(process)

    def test_explicit_executor_instance(self, planted_db):
        backend = make_backend("bitmap", planted_db)
        executor = ParallelExecutor(
            backend, planted_db, workers=2, min_parallel=1
        )
        try:
            result = FlipperMiner(
                planted_db,
                GROCERIES_THRESHOLDS,
                backend=backend,
                executor=executor,
            ).mine()
        finally:
            executor.close()
        assert _fingerprint(result) == _fingerprint(_mine(planted_db))
        assert executor.chunks_dispatched > 0

    def test_instance_plus_worker_config_rejected(self, planted_db):
        backend = make_backend("bitmap", planted_db)
        executor = SerialExecutor(backend)
        with pytest.raises(ConfigError, match="workers/chunk_size"):
            FlipperMiner(
                planted_db,
                GROCERIES_THRESHOLDS,
                backend=backend,
                executor=executor,
                workers=2,
            )

    def test_config_records_executor(self, planted_db):
        result = _mine(planted_db, executor="process", workers=2)
        assert result.config["executor"] == "process"
        assert result.config["workers"] == 2
        serial = _mine(planted_db)
        assert serial.config["executor"] == "serial"
        assert serial.config["workers"] == 1


class TestScanAccounting:
    def test_worker_scans_fold_into_db_scans(self, planted_db):
        """Chunks counted in workers must not vanish from the IO-model
        metric: with the same chunking, serial and process runs of the
        horizontal backend report the same db_scans."""
        serial = FlipperMiner(
            planted_db,
            GROCERIES_THRESHOLDS,
            backend="horizontal",
            chunk_size=8,
        ).mine()
        backend = make_backend("horizontal", planted_db)
        executor = ParallelExecutor(
            backend, planted_db, workers=2, chunk_size=8, min_parallel=1
        )
        try:
            process = FlipperMiner(
                planted_db,
                GROCERIES_THRESHOLDS,
                backend=backend,
                executor=executor,
            ).mine()
        finally:
            executor.close()
        assert executor.extra_scans > 0
        assert process.stats.db_scans == serial.stats.db_scans


class TestEngineSurface:
    def test_miner_exposes_plan_and_context(self, example3_db):
        from repro import Thresholds

        miner = FlipperMiner(
            example3_db, Thresholds(gamma=0.6, epsilon=0.35, min_support=1)
        )
        assert [stage.name for stage in miner.plan.stages] == [
            "generate",
            "count",
            "label",
            "prune",
        ]
        miner.mine()
        assert miner.context.cells  # populated by the plan
        assert set(miner.stats.extra["stage_seconds"]) == {
            "generate",
            "count",
            "label",
            "prune",
        }

    def test_plan_requires_stages(self, example3_db):
        from repro import Thresholds

        miner = FlipperMiner(
            example3_db, Thresholds(gamma=0.6, epsilon=0.35, min_support=1)
        )
        with pytest.raises(ValueError, match="at least one stage"):
            ExecutionPlan(miner.context, [])

    def test_custom_plan_same_result(self, example3_db):
        """Stages are composable: rebuilding the default pipeline by
        hand produces the same patterns."""
        from repro import Thresholds

        thresholds = Thresholds(gamma=0.6, epsilon=0.35, min_support=1)
        baseline = FlipperMiner(example3_db, thresholds).mine()
        miner = FlipperMiner(example3_db, thresholds)
        miner._plan = ExecutionPlan(miner.context, build_default_stages())
        rebuilt = miner.mine()
        assert _fingerprint(baseline) == _fingerprint(rebuilt)
