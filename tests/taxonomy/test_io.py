"""Unit tests for repro.taxonomy.io."""

from __future__ import annotations

import pytest

from repro.errors import TaxonomyError
from repro.taxonomy import (
    Taxonomy,
    load_taxonomy,
    save_taxonomy,
    taxonomy_to_dict,
)
from repro.taxonomy.io import format_edge_text, parse_edge_text


class TestEdgeText:
    def test_roundtrip(self, grocery_taxonomy, tmp_path):
        path = tmp_path / "groceries.tax"
        save_taxonomy(grocery_taxonomy, path)
        loaded = load_taxonomy(path)
        assert taxonomy_to_dict(loaded) == taxonomy_to_dict(grocery_taxonomy)

    def test_parse_comments_and_blanks(self):
        tax = parse_edge_text("# comment\n\na\ta1\na\ta2\n")
        assert tax.height == 2

    def test_parse_space_separated(self):
        tax = parse_edge_text("a a1\n")
        assert tax.node_by_name("a1").level == 2

    def test_parse_rejects_garbage(self):
        with pytest.raises(TaxonomyError, match="line 1"):
            parse_edge_text("justoneword\n")

    def test_parse_rejects_empty(self):
        with pytest.raises(TaxonomyError, match="no edges"):
            parse_edge_text("# nothing here\n")

    def test_format_skips_copies(self, tmp_path):
        from repro.taxonomy import rebalance_with_copies

        unbalanced = Taxonomy.from_dict({"a": {"a1": ["x"]}, "b": None})
        balanced = rebalance_with_copies(unbalanced)
        text = format_edge_text(balanced)
        # the copy chain of 'b' must not be serialized
        assert text.count("b\tb") == 0

    def test_one_level_taxonomy_roundtrip(self, tmp_path):
        tax = Taxonomy.from_edges([("*ROOT*", "a"), ("*ROOT*", "b")])
        path = tmp_path / "flat.tax"
        save_taxonomy(tax, path)
        loaded = load_taxonomy(path)
        assert sorted(loaded.name_of(i) for i in loaded.nodes_at_level(1)) == [
            "a",
            "b",
        ]


class TestJson:
    def test_roundtrip(self, grocery_taxonomy, tmp_path):
        path = tmp_path / "groceries.json"
        save_taxonomy(grocery_taxonomy, path)
        loaded = load_taxonomy(path)
        assert taxonomy_to_dict(loaded) == taxonomy_to_dict(grocery_taxonomy)

    def test_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(TaxonomyError, match="object"):
            load_taxonomy(path)


class TestToDict:
    def test_shape(self, grocery_taxonomy):
        data = taxonomy_to_dict(grocery_taxonomy)
        assert set(data) == {"drinks", "non-food", "fresh"}
        assert set(data["drinks"]) == {"beer", "soda"}
        assert data["drinks"]["beer"] == {
            "canned beer": None,
            "bottled beer": None,
        }
