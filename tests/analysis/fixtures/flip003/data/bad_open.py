"""Known-bad: raw write-mode opens with no rename in sight."""

import json


def save_store(path, payload):
    with open(path, "w", encoding="utf-8") as handle:  # FLIP003
        json.dump(payload, handle)


def append_log(path, line):
    with path.open("a", encoding="utf-8") as handle:  # FLIP003
        handle.write(line + "\n")
