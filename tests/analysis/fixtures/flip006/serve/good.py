"""Known-good: generations published by single atomic swap."""


class PatternStore:
    def __init__(self, snapshot):
        self._snap = snapshot

    def apply_result(self, result, builder):
        builder.add(result)
        next_snapshot = builder.freeze()
        self._snap = next_snapshot

    def open(self, path, loaded):
        self._snap = loaded

    def snapshot(self):
        # readers pin the current generation with one read
        return self._snap
