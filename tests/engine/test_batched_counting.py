"""Backend parity for the batched counting API.

``supports_batched`` must return exactly what ``supports`` returns —
for every backend, every chunk size, and every candidate mix — and
``node_supports`` must be cached so repeated calls stop rescanning.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.counting import (
    BitmapBackend,
    HorizontalBackend,
    NumpyBackend,
    iter_chunks,
)
from repro.errors import ConfigError

ALL_BACKENDS = [BitmapBackend, HorizontalBackend, NumpyBackend]
CHUNK_SIZES = [1, 2, 3, 7, 1000, None]


def _pair_candidates(database, level):
    nodes = database.taxonomy.nodes_at_level(level)
    return [tuple(sorted(pair)) for pair in itertools.combinations(nodes, 2)]


class TestIterChunks:
    def test_none_is_one_chunk(self):
        items = [(1,), (2,), (3,)]
        assert list(iter_chunks(items, None)) == [items]

    def test_chunking_preserves_order(self):
        items = [(i,) for i in range(7)]
        chunks = list(iter_chunks(items, 3))
        assert [len(chunk) for chunk in chunks] == [3, 3, 1]
        assert [item for chunk in chunks for item in chunk] == items

    def test_empty_batch_yields_nothing(self):
        assert list(iter_chunks([], 5)) == []
        assert list(iter_chunks([], None)) == []

    def test_rejects_bad_chunk_size_at_the_call(self):
        # must raise immediately, not on first next()
        with pytest.raises(ConfigError, match="chunk_size"):
            iter_chunks([(1,)], 0)


class TestBatchedParity:
    @pytest.mark.parametrize("backend_cls", ALL_BACKENDS)
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_matches_unbatched_on_example3(
        self, example3_db, backend_cls, chunk_size
    ):
        backend = backend_cls(example3_db)
        for level in (1, 2, 3):
            candidates = _pair_candidates(example3_db, level)
            expected = backend.supports(level, candidates)
            assert (
                backend.supports_batched(
                    level, candidates, chunk_size=chunk_size
                )
                == expected
            )

    @pytest.mark.parametrize("backend_cls", ALL_BACKENDS)
    @pytest.mark.parametrize("chunk_size", [1, 5, None])
    def test_matches_unbatched_on_random_db(
        self, random_db, backend_cls, chunk_size
    ):
        backend = backend_cls(random_db)
        for level in (1, 2, 3):
            candidates = _pair_candidates(random_db, level)
            expected = backend.supports(level, candidates)
            assert (
                backend.supports_batched(
                    level, candidates, chunk_size=chunk_size
                )
                == expected
            )

    def test_all_backends_agree_across_all_chunk_sizes(self, random_db):
        """The cross-product: one truth, three backends, any chunking."""
        backends = [cls(random_db) for cls in ALL_BACKENDS]
        for level in (1, 2, 3):
            candidates = _pair_candidates(random_db, level)
            reference = backends[0].supports(level, candidates)
            for backend in backends:
                for chunk_size in CHUNK_SIZES:
                    assert (
                        backend.supports_batched(
                            level, candidates, chunk_size=chunk_size
                        )
                        == reference
                    ), (type(backend).__name__, level, chunk_size)

    @pytest.mark.parametrize("backend_cls", ALL_BACKENDS)
    def test_mixed_k_batch(self, example3_db, backend_cls):
        """A batch mixing itemset sizes (exercises the numpy
        uniform-k run splitting)."""
        backend = backend_cls(example3_db)
        nodes = example3_db.taxonomy.nodes_at_level(3)
        batch = (
            [tuple(sorted(p)) for p in itertools.combinations(nodes, 2)][:4]
            + [tuple(sorted(t)) for t in itertools.combinations(nodes, 3)][:3]
            + [tuple(sorted(p)) for p in itertools.combinations(nodes, 2)][4:6]
        )
        expected = backend.supports(3, batch)
        for chunk_size in (1, 2, 4, None):
            assert (
                backend.supports_batched(3, batch, chunk_size=chunk_size)
                == expected
            )

    @pytest.mark.parametrize("backend_cls", ALL_BACKENDS)
    def test_empty_batch(self, example3_db, backend_cls):
        backend = backend_cls(example3_db)
        assert backend.supports_batched(1, [], chunk_size=3) == {}

    @pytest.mark.parametrize("backend_cls", ALL_BACKENDS)
    def test_rejects_bad_chunk_size(self, example3_db, backend_cls):
        backend = backend_cls(example3_db)
        with pytest.raises(ConfigError, match="chunk_size"):
            backend.supports_batched(1, [(1, 2)], chunk_size=-1)


class TestNumpyGatherCap:
    def test_empty_itemset_matches_supports(self, example3_db):
        backend = NumpyBackend(example3_db)
        assert backend.supports_batched(1, [()]) == backend.supports(1, [()])

    def test_tiny_budget_still_correct(self, random_db, monkeypatch):
        """chunk_size=None must not mean an unbounded gather tensor:
        with the budget forced down to a few elements the run splitting
        kicks in on every batch and the counts must not change."""
        backend = NumpyBackend(random_db)
        candidates = _pair_candidates(random_db, 2)
        expected = backend.supports(2, candidates)
        monkeypatch.setattr(NumpyBackend, "_GATHER_BUDGET", 8)
        assert backend.supports_batched(2, candidates) == expected


class TestNodeSupportCache:
    @pytest.mark.parametrize("backend_cls", ALL_BACKENDS)
    def test_repeated_calls_return_same_mapping(
        self, example3_db, backend_cls
    ):
        backend = backend_cls(example3_db)
        first = backend.node_supports(2)
        assert backend.node_supports(2) == first

    def test_horizontal_does_not_rescan(self, example3_db):
        backend = HorizontalBackend(example3_db)
        backend.node_supports(1)
        scans = backend.scans
        backend.node_supports(1)
        backend.node_supports(1)
        assert backend.scans == scans
