"""Unit tests for repro.core.patterns."""

from __future__ import annotations

import pytest

from repro.core.labels import Label
from repro.core.patterns import ChainLink, FlippingPattern, MiningResult
from repro.core.stats import MiningStats


def link(level, names, corr, label, support=5):
    ids = tuple(range(level * 10, level * 10 + len(names)))
    return ChainLink(
        level=level,
        itemset=ids,
        names=tuple(names),
        support=support,
        correlation=corr,
        label=label,
    )


@pytest.fixture
def pattern():
    return FlippingPattern(
        links=(
            link(1, ("a", "b"), 0.8, Label.POSITIVE),
            link(2, ("a1", "b1"), 0.3, Label.NEGATIVE),
            link(3, ("a11", "b11"), 0.9, Label.POSITIVE),
        )
    )


class TestChainLink:
    def test_render(self):
        text = link(1, ("a", "b"), 0.8, Label.POSITIVE).render()
        assert "level 1" in text and "{a, b}" in text and "[+]" in text


class TestFlippingPattern:
    def test_basic_properties(self, pattern):
        assert pattern.k == 2
        assert pattern.height == 3
        assert pattern.leaf_names == ("a11", "b11")
        assert pattern.signature == "+-+"
        assert pattern.bottom_label is Label.POSITIVE

    def test_gaps(self, pattern):
        assert pattern.min_gap == pytest.approx(0.5)
        assert pattern.max_gap == pytest.approx(0.6)
        assert pattern.mean_gap == pytest.approx(0.55)

    def test_describe(self, pattern):
        text = pattern.describe()
        assert "a11" in text and "signature +-+" in text

    def test_to_dict(self, pattern):
        data = pattern.to_dict()
        assert data["items"] == ["a11", "b11"]
        assert len(data["chain"]) == 3
        assert data["chain"][1]["label"] == "negative"

    def test_str(self, pattern):
        assert str(pattern) == "{a11, b11} [+-+]"

    def test_rejects_single_level(self):
        with pytest.raises(ValueError):
            FlippingPattern(links=(link(1, ("a", "b"), 0.8, Label.POSITIVE),))


class TestMiningResult:
    def test_container_protocol(self, pattern):
        result = MiningResult(patterns=[pattern], stats=MiningStats())
        assert len(result) == 1
        assert list(result) == [pattern]

    def test_by_size(self, pattern):
        result = MiningResult(patterns=[pattern], stats=MiningStats())
        assert result.by_size(2) == [pattern]
        assert result.by_size(3) == []

    def test_sorted_by_gap(self, pattern):
        sharper = FlippingPattern(
            links=(
                link(1, ("c", "d"), 0.95, Label.POSITIVE),
                link(2, ("c1", "d1"), 0.05, Label.NEGATIVE),
                link(3, ("c11", "d11"), 0.99, Label.POSITIVE),
            )
        )
        result = MiningResult(patterns=[pattern, sharper], stats=MiningStats())
        ranked = result.sorted_by_gap()
        assert ranked[0] is sharper

    def test_sorted_by_gap_bad_score(self, pattern):
        result = MiningResult(patterns=[pattern], stats=MiningStats())
        with pytest.raises(ValueError):
            result.sorted_by_gap(score="magic")

    def test_describe_truncates(self, pattern):
        result = MiningResult(patterns=[pattern] * 12, stats=MiningStats())
        text = result.describe(limit=3)
        assert "(9 more patterns)" in text

    def test_to_dict(self, pattern):
        result = MiningResult(
            patterns=[pattern], stats=MiningStats(), config={"gamma": 0.5}
        )
        data = result.to_dict()
        assert data["config"]["gamma"] == 0.5
        assert len(data["patterns"]) == 1
