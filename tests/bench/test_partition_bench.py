"""End-to-end smoke of the partition bench (tiny scale)."""

from __future__ import annotations

import json

import pytest


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.01")


def test_partition_bench_writes_baseline(tmp_path, monkeypatch):
    from repro.bench import run_partition_bench

    out = tmp_path / "BENCH_partition.json"
    report, data = run_partition_bench(out_path=out)
    assert "Partition bench" in report
    assert "[PASS]" in report and "[FAIL]" not in report
    assert data["checks_pass"] is True
    assert data["patterns_identical"] is True
    on_disk = json.loads(out.read_text())
    assert on_disk["bench"] == "partition"
    runs = on_disk["runs"]
    assert set(runs) == {"shards=1", "shards=4"}
    for run in runs.values():
        assert run["peak_rss_mb"] > 0
        assert run["n_patterns"] > 0


def test_peak_rss_is_positive():
    from repro.bench.partition import _peak_rss_mb

    assert _peak_rss_mb() > 0
