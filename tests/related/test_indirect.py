"""Unit tests for indirect association mining."""

from __future__ import annotations

import pytest

from repro import Taxonomy, TransactionDatabase
from repro.errors import ConfigError
from repro.related import mine_indirect_associations


@pytest.fixture
def rivalry_db():
    """Two rival items (cola, pepsi-like soda) never bought together,
    both strongly bought with the mediator (chips)."""
    taxonomy = Taxonomy.from_dict(
        {"drinks": ["cola", "rival cola"], "snacks": ["chips", "nuts"]}
    )
    transactions = (
        [["cola", "chips"]] * 10
        + [["rival cola", "chips"]] * 10
        + [["nuts"]] * 5
        + [["cola", "rival cola"]] * 1  # rare joint purchase
    )
    return TransactionDatabase(transactions, taxonomy)


def names(database, assoc):
    return {
        database.item_name(assoc.item_a),
        database.item_name(assoc.item_b),
    }


class TestMining:
    def test_finds_the_rivalry(self, rivalry_db):
        found = mine_indirect_associations(
            rivalry_db, min_count=5, itempair_threshold=5
        )
        assert found, "the mediated rivalry must surface"
        top = found[0]
        assert names(rivalry_db, top) == {"cola", "rival cola"}
        assert [rivalry_db.item_name(m) for m in top.mediator] == ["chips"]
        assert top.pair_support == 1

    def test_direct_pairs_excluded(self, rivalry_db):
        """With the pair threshold at 1, the single joint purchase
        already counts as a direct association."""
        found = mine_indirect_associations(
            rivalry_db, min_count=5, itempair_threshold=1
        )
        assert all(
            names(rivalry_db, assoc) != {"cola", "rival cola"}
            for assoc in found
        )

    def test_dependence_threshold_filters(self, rivalry_db):
        weak = mine_indirect_associations(
            rivalry_db, min_count=5, dependence_threshold=0.99
        )
        assert weak == []

    def test_dependences_are_cosines_in_range(self, rivalry_db):
        for assoc in mine_indirect_associations(rivalry_db, min_count=3):
            assert 0.0 < assoc.dependence_a <= 1.0
            assert 0.0 < assoc.dependence_b <= 1.0
            assert assoc.min_dependence == min(
                assoc.dependence_a, assoc.dependence_b
            )

    def test_sorted_by_min_dependence(self, rivalry_db):
        found = mine_indirect_associations(rivalry_db, min_count=3)
        scores = [assoc.min_dependence for assoc in found]
        assert scores == sorted(scores, reverse=True)

    def test_render_names_everything(self, rivalry_db):
        found = mine_indirect_associations(rivalry_db, min_count=5)
        text = found[0].render(rivalry_db)
        assert "cola" in text and "chips" in text and "via" in text


class TestValidation:
    def test_min_count(self, rivalry_db):
        with pytest.raises(ConfigError):
            mine_indirect_associations(rivalry_db, min_count=0)

    def test_dependence_range(self, rivalry_db):
        with pytest.raises(ConfigError):
            mine_indirect_associations(
                rivalry_db, min_count=2, dependence_threshold=1.5
            )

    def test_mediator_size(self, rivalry_db):
        with pytest.raises(ConfigError):
            mine_indirect_associations(
                rivalry_db, min_count=2, max_mediator_size=0
            )


class TestMediatorSize:
    def test_two_item_mediators(self):
        taxonomy = Taxonomy.from_dict({"g": ["a", "b", "m1", "m2"]})
        transactions = [["a", "m1", "m2"]] * 8 + [["b", "m1", "m2"]] * 8
        database = TransactionDatabase(transactions, taxonomy)
        found = mine_indirect_associations(
            database, min_count=4, max_mediator_size=2
        )
        mediators = {
            tuple(database.item_name(m) for m in assoc.mediator)
            for assoc in found
            if names(database, assoc) == {"a", "b"}
        }
        assert ("m1", "m2") in mediators
