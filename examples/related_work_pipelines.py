#!/usr/bin/env python3
"""Related work, side by side: what each prior pipeline can express.

Section 6 of the paper positions flipping correlations against three
earlier uses of taxonomies in pattern mining.  This example runs all
of them — plus Flipper — on the same simulated GROCERIES data:

1. generalized association rules (Srikant & Agrawal's Cumulate) with
   R-interesting pruning: relates items to *categories*, one sign;
2. taxonomy-distance surprisingness ranking (Hamani & Maamri):
   re-ranks positive correlations, still one sign;
3. multi-level frequent mining (Han & Fu): per-level frequent
   itemsets, no correlation at all;
4. Flipper: level-specific correlations that *flip* sign between
   levels — the thing none of the above can say.

Run:  python examples/related_work_pipelines.py
"""

from repro import mine_flipping_patterns
from repro.datasets.groceries import GROCERIES_THRESHOLDS, generate_groceries
from repro.related import (
    cumulate_frequent_itemsets,
    generate_rules,
    mine_indirect_associations,
    mine_multilevel,
    prune_uninteresting,
    rank_by_surprisingness,
)

database = generate_groceries(scale=0.5)
taxonomy = database.taxonomy
print(database.describe())
print()

# ---------------------------------------------------------------------------
# 1. Cumulate: generalized rules, mixed levels, R-interesting pruning
# ---------------------------------------------------------------------------
frequent = cumulate_frequent_itemsets(database, min_support=0.01, max_k=3)
rules = generate_rules(frequent, min_confidence=0.35)
singles = {
    itemset[0]: support
    for itemset, support in frequent.items()
    if len(itemset) == 1
}
interesting = prune_uninteresting(taxonomy, rules, singles, r=1.3)
print(
    f"[Cumulate] {len(frequent)} generalized frequent itemsets -> "
    f"{len(rules)} rules -> {len(interesting)} R-interesting (R=1.3)"
)
for rule in interesting[:5]:
    print("   ", rule.render(taxonomy))
print()

# ---------------------------------------------------------------------------
# 2. Surprisingness: re-rank the 2-itemsets by taxonomy distance
# ---------------------------------------------------------------------------
pairs = [itemset for itemset in frequent if len(itemset) == 2]
ranked = rank_by_surprisingness(taxonomy, pairs)
print(f"[Surprisingness] {len(pairs)} frequent pairs; most surprising:")
for score, itemset in ranked[:5]:
    names = ", ".join(taxonomy.name_of(node) for node in itemset)
    print(f"    distance {score:.1f}: {{{names}}}")
print()

# ---------------------------------------------------------------------------
# 3. Multi-level mining: per-level frequent itemsets
# ---------------------------------------------------------------------------
multilevel = mine_multilevel(database, GROCERIES_THRESHOLDS)
print(f"[Multi-level] {multilevel.summary()}")
print()

# ---------------------------------------------------------------------------
# 4. Indirect associations: rarely-together pairs sharing a mediator
# ---------------------------------------------------------------------------
indirect = mine_indirect_associations(
    database,
    min_count=max(5, database.n_transactions // 400),
    dependence_threshold=0.2,
)
print(f"[Indirect] {len(indirect)} mediated pairs; strongest:")
for assoc in indirect[:3]:
    print("   ", assoc.render(database))
print()

# ---------------------------------------------------------------------------
# 5. Flipper: what none of the above can express
# ---------------------------------------------------------------------------
result = mine_flipping_patterns(database, GROCERIES_THRESHOLDS)
print(f"[Flipper] {len(result.patterns)} flipping patterns; sharpest:")
for pattern in result.sorted_by_gap()[:2]:
    print()
    print(pattern.describe())

print()
print(
    "Note how every prior pipeline reports one-signed facts "
    "(rules, rankings, frequencies) while each flipping pattern "
    "carries a sign *contrast* across levels."
)
