"""Property-based equivalence of the mining ladder.

The brute-force enumerator (repro.core.basic) is the ground truth.
On random small databases with random taxonomies and thresholds:

* the BASIC Apriori configuration must match it exactly (both are
  complete by construction);
* the flipping / +TPG / +SIBP configurations must never report a
  false pattern (soundness), and in practice match exactly — the
  theoretical corner case where TPG over-prunes is documented in
  DESIGN.md and exercised deterministically in
  tests/regression/test_tpg_corner_case.py.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro import (
    PruningConfig,
    Taxonomy,
    Thresholds,
    TransactionDatabase,
    mine_flipping_bruteforce,
    mine_flipping_patterns,
)


@st.composite
def mining_instances(draw):
    """Random taxonomy (2-3 levels, 2-3 categories), random
    transactions, random thresholds."""
    n_categories = draw(st.integers(min_value=2, max_value=3))
    height = draw(st.integers(min_value=2, max_value=3))
    fanout = draw(st.integers(min_value=1, max_value=2))

    tree: dict = {}
    leaves: list[str] = []
    for c in range(n_categories):
        cat = f"c{c}"
        if height == 2:
            children = [f"{cat}x{j}" for j in range(fanout + 1)]
            tree[cat] = children
            leaves.extend(children)
        else:
            subtree = {}
            for m in range(fanout):
                mid = f"{cat}m{m}"
                children = [f"{mid}x{j}" for j in range(fanout + 1)]
                subtree[mid] = children
                leaves.extend(children)
            tree[cat] = subtree
    if draw(st.booleans()):
        # an unbalanced top-level item (like CENSUS income), repaired
        # by the database via rebalancing copies
        tree["solo"] = None
        leaves.append("solo")
    taxonomy = Taxonomy.from_dict(tree)

    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    n_transactions = draw(st.integers(min_value=4, max_value=30))
    transactions = []
    for _ in range(n_transactions):
        width = rng.randint(1, min(len(leaves), 5))
        transactions.append(rng.sample(leaves, width))
    database = TransactionDatabase(transactions, taxonomy)

    gamma = draw(st.floats(min_value=0.3, max_value=0.9))
    epsilon = draw(st.floats(min_value=0.05, max_value=0.25))
    theta = draw(st.integers(min_value=1, max_value=3))
    thresholds = Thresholds(gamma=gamma, epsilon=epsilon, min_support=theta)
    return database, thresholds


def pattern_keys(patterns):
    return sorted(p.leaf_names for p in patterns)


@given(mining_instances())
@settings(max_examples=120, deadline=None)
def test_basic_matches_bruteforce(instance):
    database, thresholds = instance
    oracle = mine_flipping_bruteforce(database, thresholds)
    basic = mine_flipping_patterns(
        database, thresholds, pruning=PruningConfig.basic()
    )
    assert pattern_keys(basic.patterns) == pattern_keys(oracle)


@given(mining_instances())
@settings(max_examples=120, deadline=None)
def test_flipper_full_matches_bruteforce(instance):
    database, thresholds = instance
    oracle = mine_flipping_bruteforce(database, thresholds)
    full = mine_flipping_patterns(
        database, thresholds, pruning=PruningConfig.full()
    )
    assert pattern_keys(full.patterns) == pattern_keys(oracle)


@given(mining_instances())
@settings(max_examples=80, deadline=None)
def test_ladder_is_sound(instance):
    """No configuration may ever report a non-pattern (soundness)."""
    database, thresholds = instance
    oracle = set(pattern_keys(mine_flipping_bruteforce(database, thresholds)))
    for config in PruningConfig.ladder():
        result = mine_flipping_patterns(database, thresholds, pruning=config)
        reported = set(pattern_keys(result.patterns))
        assert reported <= oracle, config.name


@given(mining_instances())
@settings(max_examples=60, deadline=None)
def test_chain_values_match_oracle(instance):
    """When both find a pattern, supports and correlations agree."""
    database, thresholds = instance
    oracle = {
        p.leaf_names: p for p in mine_flipping_bruteforce(database, thresholds)
    }
    result = mine_flipping_patterns(database, thresholds)
    for pattern in result.patterns:
        reference = oracle[pattern.leaf_names]
        for mine_link, ref_link in zip(pattern.links, reference.links):
            assert mine_link.support == ref_link.support
            assert abs(mine_link.correlation - ref_link.correlation) < 1e-12
            assert mine_link.label is ref_link.label
