"""Brute-force reference miner (test oracle).

:func:`mine_flipping_bruteforce` enumerates *every* k-subset of items
with distinct level-1 ancestors, computes the full generalization
chain by direct counting, and keeps the chains that satisfy
Definition 2.  No pruning, no cleverness — exponential, so only for
tiny instances — but its output is the ground truth the property-based
test suite holds the real miners against.

(The paper's BASIC *baseline*, in contrast, is the level-wise Apriori
run by :class:`~repro.core.flipper.FlipperMiner` with
``PruningConfig.basic()``; it is efficient enough for the benches and
also complete.)
"""

from __future__ import annotations

import itertools

from repro.core.itemsets import generalize
from repro.core.labels import Label, flips, label_for
from repro.core.measures import Measure, get_measure
from repro.core.patterns import ChainLink, FlippingPattern
from repro.core.thresholds import ResolvedThresholds, Thresholds
from repro.data.database import TransactionDatabase
from repro.data.vertical import VerticalIndex
from repro.errors import ConfigError
from repro.taxonomy.tree import Taxonomy

__all__ = ["mine_flipping_bruteforce"]


def mine_flipping_bruteforce(
    database: TransactionDatabase,
    thresholds: Thresholds,
    measure: str | Measure = "kulczynski",
    max_k: int | None = None,
) -> list[FlippingPattern]:
    """All flipping patterns by exhaustive enumeration.

    Raises :class:`ConfigError` for databases that are clearly too
    large to brute-force (a guard against accidental misuse).
    """
    taxonomy = database.taxonomy
    height = taxonomy.height
    if height < 2:
        raise ConfigError("flipping needs taxonomy height >= 2")
    n_items = len(database.item_ids)
    if n_items > 40:
        raise ConfigError(
            f"brute force limited to 40 items, got {n_items}; "
            "use FlipperMiner for real data"
        )
    resolved = thresholds.resolve(height, database.n_transactions)
    measure = get_measure(measure)
    index = VerticalIndex(database)
    ancestor_maps = {
        level: taxonomy.item_ancestor_map(level)
        for level in range(1, height + 1)
    }
    node_supports = {
        level: index.node_supports(level) for level in range(1, height + 1)
    }

    items = database.item_ids
    k_bound = min(
        len(taxonomy.nodes_at_level(1)),
        database.width_at_level(1),
        max_k if max_k is not None else n_items,
    )

    patterns: list[FlippingPattern] = []
    for k in range(2, k_bound + 1):
        for combo in itertools.combinations(items, k):
            roots = {ancestor_maps[1][item] for item in combo}
            if len(roots) != k:
                continue  # items must descend from distinct categories
            links = _chain_for(
                combo,
                height,
                ancestor_maps,
                node_supports,
                index,
                resolved,
                measure,
                taxonomy,
            )
            if links is not None:
                patterns.append(FlippingPattern(links=tuple(links)))
    patterns.sort(key=lambda p: (p.k, p.leaf_names))
    return patterns


def _chain_for(
    combo: tuple[int, ...],
    height: int,
    ancestor_maps: dict[int, dict[int, int]],
    node_supports: dict[int, dict[int, int]],
    index: VerticalIndex,
    resolved: ResolvedThresholds,
    measure: Measure,
    taxonomy: Taxonomy,
) -> list[ChainLink] | None:
    """Build the full chain for one candidate, or None if it breaks."""
    links: list[ChainLink] = []
    previous: Label | None = None
    for level in range(1, height + 1):
        itemset = generalize(combo, ancestor_maps[level])
        if len(itemset) != len(combo):
            return None
        support = index.support(level, itemset)
        supports = [node_supports[level][node] for node in itemset]
        correlation = measure(support, supports)
        label = label_for(
            support,
            correlation,
            resolved.min_count(level),
            resolved.gamma,
            resolved.epsilon,
        )
        if not label.is_signed:
            return None
        if previous is not None and not flips(previous, label):
            return None
        previous = label
        links.append(
            ChainLink(
                level=level,
                itemset=itemset,
                names=tuple(taxonomy.name_of(node) for node in itemset),
                support=support,
                correlation=correlation,
                label=label,
            )
        )
    return links
