"""Shared fixtures for the benchmark suite.

Every bench runs at the scale set by ``REPRO_BENCH_SCALE`` (default
0.025 -> synthetic N = 2,500).  Set ``REPRO_BENCH_SCALE=1.0`` to run
at the paper's sizes (synthetic N = 100K; budget hours for BASIC).
Workloads are generated once per session and shared.
"""

from __future__ import annotations

import pytest

from repro.bench import bench_config, real_datasets, thresholds_for_profile
from repro.bench.profiles import DEFAULT_MINSUP
from repro.datasets import generate_synthetic


@pytest.fixture(scope="session")
def synthetic_db():
    """The paper's default synthetic workload at bench scale."""
    return generate_synthetic(bench_config())


@pytest.fixture(scope="session")
def default_thresholds(synthetic_db):
    return thresholds_for_profile(
        DEFAULT_MINSUP, n_transactions=synthetic_db.n_transactions
    )


@pytest.fixture(scope="session")
def real_workloads():
    """GROCERIES / CENSUS / MEDLINE simulators at bench scale."""
    return real_datasets()


def one_shot(benchmark, fn, *args, **kwargs):
    """Run a mining benchmark exactly once (mining is deterministic;
    repeated rounds would only re-measure the same work)."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
