"""Synthetic transaction generator in the style of Srikant & Agrawal.

The paper's Section 5.1 uses "the generator by Srikant and Agrawal
[17]" (the IBM Quest generator extended with taxonomies, from *Mining
Generalized Association Rules*, VLDB 1995) with these defaults:
N = 100K transactions, average width W = 5, |I| = 1,000 items,
H = 4 hierarchy levels, 10 top-level categories, fanout 5.

The original C code is not redistributable, so this module
reimplements its generative process:

1. build a taxonomy with ``n_roots`` top categories and ``fanout``
   children per node, distributing exactly ``n_items`` leaves across
   the bottom level;
2. draw a pool of *potentially large itemsets* (the seeds): sizes
   geometric around ``avg_pattern_size``, items drawn from leaves
   *and* interior nodes, consecutive seeds sharing a fraction of
   items (``correlation``), each seed weighted exponentially and
   given a corruption level;
3. emit transactions: width geometric around ``avg_width``; seeds are
   picked by weight and written into the transaction, replacing
   interior nodes by uniformly-drawn descendant leaves and dropping
   items per the seed's corruption level.

Every knob the paper sweeps (N, W, ``n_items``, H, roots, fanout) is a
:class:`SyntheticConfig` field, so the Fig. 8 benches can reproduce
each sweep directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.data.database import TransactionDatabase
from repro.errors import ConfigError
from repro.taxonomy.tree import Taxonomy

__all__ = ["SyntheticConfig", "generate_taxonomy", "generate_synthetic"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic workload (paper defaults)."""

    n_transactions: int = 10_000
    avg_width: float = 5.0          # W: average items per transaction
    n_items: int = 1_000            # |I|: distinct leaf items
    height: int = 4                 # H: taxonomy levels
    n_roots: int = 10               # top-level categories
    fanout: int = 5                 # children per internal node
    n_patterns: int = 300           # |L|: potentially large itemsets
    avg_pattern_size: float = 4.0   # mean seed size
    correlation: float = 0.25       # item-sharing between consecutive seeds
    corruption_mean: float = 0.5    # mean per-seed corruption level
    interior_fraction: float = 0.25 # chance a seed item is an interior node
    seed: int = 20111231            # RNG seed (paper submission date)

    def __post_init__(self) -> None:
        if self.n_transactions < 1:
            raise ConfigError("n_transactions must be >= 1")
        if self.avg_width < 1.0:
            raise ConfigError("avg_width must be >= 1")
        if self.height < 2:
            raise ConfigError("height must be >= 2")
        if self.n_roots < 2:
            raise ConfigError(
                "n_roots must be >= 2 (patterns span categories)"
            )
        if self.fanout < 1:
            raise ConfigError("fanout must be >= 1")
        min_leaves = self.n_roots * self.fanout ** max(self.height - 2, 0)
        if self.n_items < min_leaves:
            raise ConfigError(
                f"n_items={self.n_items} cannot fill {min_leaves} "
                "level-(H-1) nodes with at least one leaf each"
            )
        if not 0.0 <= self.correlation <= 1.0:
            raise ConfigError("correlation must be in [0, 1]")
        if not 0.0 <= self.corruption_mean < 1.0:
            raise ConfigError("corruption_mean must be in [0, 1)")
        if not 0.0 <= self.interior_fraction <= 1.0:
            raise ConfigError("interior_fraction must be in [0, 1]")

    def scaled(self, **overrides: object) -> "SyntheticConfig":
        """A copy with some fields replaced (bench sweeps)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


def generate_taxonomy(config: SyntheticConfig) -> Taxonomy:
    """Build the ``n_roots`` × ``fanout`` taxonomy with exactly
    ``n_items`` leaves on the bottom level, spread as evenly as the
    arithmetic allows."""
    edges: list[tuple[str, str]] = []
    current = [f"cat{r}" for r in range(config.n_roots)]
    for _level in range(2, config.height):
        next_level = []
        for name in current:
            for j in range(config.fanout):
                child = f"{name}.{j}"
                edges.append((name, child))
                next_level.append(child)
        current = next_level
    # bottom level: distribute n_items leaves over the current nodes
    n_parents = len(current)
    base, remainder = divmod(config.n_items, n_parents)
    leaf_index = 0
    for position, name in enumerate(current):
        count = base + (1 if position < remainder else 0)
        for _ in range(count):
            edges.append((name, f"item{leaf_index}"))
            leaf_index += 1
    return Taxonomy.from_edges(edges)


def _geometric_size(rng: random.Random, mean: float, minimum: int = 1) -> int:
    """Sample around ``mean`` with a geometric tail (Quest uses Poisson;
    a geometric keeps the same mean with a simpler, dependency-free
    sampler).  The tail is capped at 3x the mean, matching the light
    Poisson tail — without the cap a single freak 30-item transaction
    makes *every* subset frequent at minimum support 1 and blows the
    BASIC baseline out of all proportion."""
    if mean <= minimum:
        return minimum
    p = 1.0 / (mean - minimum + 1.0)
    cap = max(minimum + 1, round(3 * mean))
    size = minimum
    while rng.random() > p:
        size += 1
        if size >= cap:
            break
    return size


def _make_seeds(
    config: SyntheticConfig,
    taxonomy: Taxonomy,
    rng: random.Random,
) -> tuple[list[list[int]], list[float], list[float]]:
    """The potentially-large itemsets with their weights and
    corruption levels."""
    leaves = taxonomy.item_ids
    interiors = [
        node.node_id
        for node in taxonomy.iter_nodes()
        if not node.is_leaf and node.level >= 1
    ]
    seeds: list[list[int]] = []
    weights: list[float] = []
    corruptions: list[float] = []
    previous: list[int] = []
    for _ in range(config.n_patterns):
        size = _geometric_size(rng, config.avg_pattern_size, minimum=1)
        itemset: list[int] = []
        reuse = [i for i in previous if rng.random() < config.correlation]
        itemset.extend(reuse[:size])
        while len(itemset) < size:
            if interiors and rng.random() < config.interior_fraction:
                candidate = rng.choice(interiors)
            else:
                candidate = rng.choice(leaves)
            if candidate not in itemset:
                itemset.append(candidate)
        seeds.append(itemset)
        previous = itemset
        weights.append(rng.expovariate(1.0))
        corruption = rng.gauss(config.corruption_mean, 0.1)
        corruptions.append(min(max(corruption, 0.0), 0.95))
    total = sum(weights)
    weights = [w / total for w in weights]
    return seeds, weights, corruptions


def _instantiate(node_id: int, taxonomy: Taxonomy, rng: random.Random) -> int:
    """Replace an interior node by a uniformly random descendant leaf."""
    node = taxonomy.node(node_id)
    while not node.is_leaf:
        node = taxonomy.node(rng.choice(node.children_ids))
    assert node.source_id is not None
    return node.source_id


def generate_synthetic(
    config: SyntheticConfig | None = None,
) -> TransactionDatabase:
    """Generate the synthetic database for a configuration."""
    config = config or SyntheticConfig()
    rng = random.Random(config.seed)
    taxonomy = generate_taxonomy(config)
    seeds, weights, corruptions = _make_seeds(config, taxonomy, rng)
    cumulative: list[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running)

    def pick_seed() -> int:
        value = rng.random() * running
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    name_of = taxonomy.name_of
    transactions: list[list[str]] = []
    for _ in range(config.n_transactions):
        width = _geometric_size(rng, config.avg_width, minimum=1)
        items: set[int] = set()
        guard = 0
        while len(items) < width and guard < 20:
            guard += 1
            seed_index = pick_seed()
            corruption = corruptions[seed_index]
            for node_id in seeds[seed_index]:
                if rng.random() < corruption:
                    continue  # corrupted away
                items.add(_instantiate(node_id, taxonomy, rng))
                if len(items) >= width:
                    break
        if not items:  # fully corrupted: fall back to one random leaf
            items.add(rng.choice(taxonomy.item_ids))
        transactions.append([name_of(item) for item in items])
    return TransactionDatabase(transactions, taxonomy)
