"""Planting flipping chains into generated datasets.

The paper's qualitative results (Figs. 10-12, Table 4) come from
proprietary or access-gated datasets (a store's point-of-sale log, a
census extract, MEDLINE).  Our simulators rebuild them as *transaction
block plans*: lists of ``(template, count)`` pairs where a template is
a list of item names emitted ``count`` times (plus noise blocks).  The
correlations that make a chain flip are controlled by the relative
block counts:

* joint blocks (both pattern items together) raise the leaf-level
  correlation;
* sibling-only blocks (other children of one parent, without the
  other side) inflate the parents' supports and depress the mid-level
  correlation;
* cousin blocks (items under both grandparents but other branches,
  together) raise the top-level correlation again.

:func:`measure_chain` recomputes the per-level correlation of a pair
directly from the database, so dataset tests can assert the planted
signature actually holds rather than trusting the arithmetic.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.labels import Label
from repro.core.measures import Measure, get_measure
from repro.data.database import TransactionDatabase
from repro.data.vertical import VerticalIndex
from repro.errors import ConfigError
from repro.taxonomy.tree import Taxonomy

__all__ = [
    "BlockPlan",
    "measure_chain",
    "chain_signature",
    "plant_pnp_chain",
    "plant_npn_chain",
]


@dataclass
class BlockPlan:
    """A dataset described as repeated transaction templates.

    >>> plan = BlockPlan()
    >>> plan.add(["canned beer", "baby cosmetics"], 30)
    >>> transactions = plan.materialize(random.Random(1))
    >>> len(transactions)
    30
    """

    blocks: list[tuple[list[str], int]] = field(default_factory=list)

    def add(self, template: Sequence[str], count: int) -> "BlockPlan":
        """Emit ``template`` ``count`` times; returns self for chaining."""
        if count < 0:
            raise ConfigError(f"block count must be >= 0, got {count}")
        if not template:
            raise ConfigError("block template must contain items")
        self.blocks.append((list(template), count))
        return self

    @property
    def n_transactions(self) -> int:
        return sum(count for _, count in self.blocks)

    def materialize(self, rng: random.Random | None = None) -> list[list[str]]:
        """Expand all blocks and shuffle transaction order."""
        transactions: list[list[str]] = []
        for template, count in self.blocks:
            for _ in range(count):
                transactions.append(list(template))
        if rng is not None:
            rng.shuffle(transactions)
        return transactions


def _relatives(
    taxonomy: Taxonomy,
    leaf_name: str,
    avoid: frozenset[str] = frozenset(),
) -> tuple[str, str]:
    """``(sibling, cousin)`` leaf names for a level-3 item: a different
    leaf under the same category, and a leaf under the same department
    but a different category.  Names in ``avoid`` (typically the other
    planted pattern leaves) are skipped so recipes never inflate each
    other's supports."""
    leaf = taxonomy.node_by_name(leaf_name)
    category = taxonomy.node(leaf.parent_id)
    department = taxonomy.node(category.parent_id)
    sibling = None
    for child_id in category.children_ids:
        child = taxonomy.node(child_id)
        if (
            child.name != leaf_name
            and not child.is_copy
            and child.name not in avoid
        ):
            sibling = child.name
            break
    cousin = None
    for cat_id in department.children_ids:
        if cat_id == category.node_id:
            continue
        other = taxonomy.node(cat_id)
        if other.is_copy or other.is_leaf:
            continue
        for grandchild_id in other.children_ids:
            grandchild = taxonomy.node(grandchild_id)
            if not grandchild.is_copy and grandchild.name not in avoid:
                cousin = grandchild.name
                break
        if cousin is not None:
            break
    if sibling is None or cousin is None:
        raise ConfigError(
            f"planting around {leaf_name!r} needs a free sibling leaf and "
            "a free cousin leaf under the same department"
        )
    return sibling, cousin


def plant_pnp_chain(
    plan: BlockPlan,
    taxonomy: Taxonomy,
    leaf_x: str,
    leaf_y: str,
    base: int = 10,
    avoid: frozenset[str] = frozenset(),
    cousin_blocks: int = 35,
) -> None:
    """Plant a ``+ - +`` chain (positive at level 1 and at the leaves,
    negative in between) for two level-3 items of different
    departments — the beer/diapers shape of the paper's Fig. 10 A.

    Blocks added (scaled by ``base``):

    * joint leaf purchases  -> strong leaf correlation,
    * small solo purchases of each leaf,
    * heavy solo purchases of a *sibling* product  -> parents frequent
      but rarely together (mid-level negative),
    * heavy joint purchases of *cousin* products  -> departments
      strongly co-occur (top-level positive).  Raise ``cousin_blocks``
      when the dataset's gamma is strict (e.g. MEDLINE's 0.40).
    """
    sibling_x, cousin_x = _relatives(taxonomy, leaf_x, avoid)
    sibling_y, cousin_y = _relatives(taxonomy, leaf_y, avoid)
    plan.add([leaf_x, leaf_y], 3 * base)
    plan.add([leaf_x], base)
    plan.add([leaf_y], base)
    plan.add([sibling_x], 45 * base)
    plan.add([sibling_y], 45 * base)
    plan.add([cousin_x, cousin_y], cousin_blocks * base)


def plant_npn_chain(
    plan: BlockPlan,
    taxonomy: Taxonomy,
    leaf_x: str,
    leaf_y: str,
    base: int = 10,
    avoid: frozenset[str] = frozenset(),
) -> None:
    """Plant a ``- + -`` chain (negative at level 1 and at the leaves,
    positive in between) — the eggs/fish shape of the paper's
    Groceries discussion.

    The mid-level positive comes from sibling products bought
    together; the top-level negative from heavy *cousin* traffic that
    inflates both departments without joining them.
    """
    sibling_x, cousin_x = _relatives(taxonomy, leaf_x, avoid)
    sibling_y, cousin_y = _relatives(taxonomy, leaf_y, avoid)
    joint = max(3, round(0.3 * base))
    solo = 4 * base + 7 * joint  # keeps joint/solo below epsilon at any scale
    plan.add([leaf_x, leaf_y], joint)
    plan.add([leaf_x], solo)
    plan.add([leaf_y], solo)
    plan.add([sibling_x, sibling_y], 5 * base)
    plan.add([cousin_x], 60 * base)
    plan.add([cousin_y], 60 * base)


def measure_chain(
    database: TransactionDatabase,
    item_names: Sequence[str],
    measure: str | Measure = "kulczynski",
    index: VerticalIndex | None = None,
) -> list[tuple[int, int, float]]:
    """Per-level ``(level, support, correlation)`` of an item tuple.

    Items are leaf names; at each level the tuple is generalized and
    the chosen measure computed from exact supports.  Raises
    :class:`ConfigError` if the items collapse onto a shared
    generalization (no chain exists then).
    """
    measure = get_measure(measure)
    taxonomy = database.taxonomy
    if index is None:
        index = VerticalIndex(database)
    items = [database.item_id(name) for name in item_names]
    k = len(items)
    if k < 2:
        raise ConfigError("a chain needs at least two items")
    chain: list[tuple[int, int, float]] = []
    for level in range(1, taxonomy.height + 1):
        mapping = taxonomy.item_ancestor_map(level)
        nodes = tuple(sorted({mapping[item] for item in items}))
        if len(nodes) != k:
            raise ConfigError(
                f"items {tuple(item_names)} share a level-{level} ancestor"
            )
        support = index.support(level, nodes)
        node_supports = [index.support_of_node(level, node) for node in nodes]
        chain.append((level, support, measure(support, node_supports)))
    return chain


def chain_signature(
    database: TransactionDatabase,
    item_names: Sequence[str],
    gamma: float,
    epsilon: float,
    min_counts: Sequence[int],
    measure: str | Measure = "kulczynski",
    index: VerticalIndex | None = None,
) -> str:
    """Label trajectory (e.g. ``"+-+"``) of an item tuple under the
    given thresholds — the planted-signature check used by dataset
    tests and examples."""
    chain = measure_chain(database, item_names, measure=measure, index=index)
    if len(min_counts) != len(chain):
        raise ConfigError(
            f"need {len(chain)} per-level min counts, got {len(min_counts)}"
        )
    symbols = []
    for (level, support, correlation), theta in zip(chain, min_counts):
        if support < theta:
            symbols.append(Label.INFREQUENT.symbol)
        elif correlation >= gamma:
            symbols.append(Label.POSITIVE.symbol)
        elif correlation <= epsilon:
            symbols.append(Label.NEGATIVE.symbol)
        else:
            symbols.append(Label.NON_CORRELATED.symbol)
    return "".join(symbols)
