"""Sample-then-verify approximate mining (the two-phase path).

:class:`ApproxMiner` trades a bounded, quantified risk of *missing*
patterns for mining speed, while never fabricating one:

* **Phase 1 — screen.**  Draw a deterministic sample from the
  :class:`~repro.data.shards.ShardedTransactionStore` (see
  :mod:`repro.approx.sampling`), derive relaxed thresholds from the
  Hoeffding/Chernoff bounds at the requested confidence (see
  :mod:`repro.approx.bounds`), and mine the sample through a standard
  engine run (``build_approx_stages``).  The output is a set of
  *candidate* flipping patterns, each carrying full-data support
  confidence intervals; any given true pattern appears among them
  with probability ``>= confidence`` (a per-pattern union bound over
  its chain's tests — see the bounds module for exactly what is and
  is not guaranteed).
* **Phase 2 — verify.**  Count every candidate chain *exactly* over
  the full store through the partitioned counting path
  (:class:`~repro.core.counting.PartitionedBackend` /
  :class:`~repro.core.counting.DeltaCounter`), batched per taxonomy
  level, re-label at the exact thresholds and keep only chains that
  genuinely flip.  Survivors are rebuilt with exact supports and
  correlations, so the returned
  :class:`~repro.core.patterns.MiningResult` contains only
  exact-verified patterns and is byte-compatible with everything
  downstream (``PatternStore``, the serving API, ``save_result``).

The cost profile: phase 1 counts the whole search space over
``sample_rate * N`` rows; phase 2 counts only ``O(candidates ×
height)`` itemsets over the full store.  ``repro bench approx``
quantifies the resulting speedup and the measured recall against an
exact mine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.approx.bounds import SampleBounds
from repro.approx.sampling import draw_sample
from repro.approx.stages import build_approx_stages
from repro.core.counting import (
    DeltaCounter,
    PartitionedBackend,
    merge_shard_counts,
)
from repro.core.labels import flips, label_for
from repro.core.measures import Measure, get_measure
from repro.core.patterns import ChainLink, FlippingPattern, MiningResult
from repro.core.stats import Timer
from repro.core.thresholds import ResolvedThresholds, Thresholds
from repro.data.database import TransactionDatabase
from repro.data.shards import (
    ShardedTransactionStore,
    open_or_partition_store,
)
from repro.errors import ConfigError

__all__ = [
    "CandidateLink",
    "ApproxCandidate",
    "ApproxMiner",
    "mine_approximate",
]


@dataclass(frozen=True)
class CandidateLink:
    """One level of a candidate chain, with its full-data support CI."""

    level: int
    itemset: tuple[int, ...]
    names: tuple[str, ...]
    sample_support: int
    #: estimated full-data support (sample frequency scaled to N)
    support_estimate: int
    #: full-data support confidence interval at the run's confidence
    support_lo: int
    support_hi: int
    correlation: float
    label: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "level": self.level,
            "names": list(self.names),
            "sample_support": self.sample_support,
            "support_estimate": self.support_estimate,
            "support_interval": [self.support_lo, self.support_hi],
            "correlation": self.correlation,
            "label": self.label,
        }


@dataclass(frozen=True)
class ApproxCandidate:
    """A phase-1 candidate pattern awaiting exact verification."""

    links: tuple[CandidateLink, ...]

    @property
    def leaf_names(self) -> tuple[str, ...]:
        return self.links[-1].names

    @property
    def signature(self) -> str:
        return "".join(link.label for link in self.links)

    def to_dict(self) -> dict[str, Any]:
        return {
            "leaf_names": list(self.leaf_names),
            "signature": self.signature,
            "links": [link.to_dict() for link in self.links],
        }


class ApproxMiner:
    """One sample-then-verify mining run over a sharded store.

    Parameters mirror :class:`~repro.core.flipper.FlipperMiner` where
    they overlap; the approximate knobs are:

    sample_rate:
        Fraction of the store phase 1 mines, in ``(0, 1]``.
    confidence:
        Probability that phase 1's candidate set contains every true
        pattern (default 0.95); drives the Hoeffding relaxation.
    sample_method / sample_seed:
        ``"stratified"`` (default) or ``"reservoir"``; deterministic
        under the seed.
    max_sample_rows / sample_memory_budget_mb:
        Optional absolute row / memory budgets capping the sample.
    verify_backend:
        An existing :class:`PartitionedBackend` (or
        :class:`DeltaCounter`) over the same store to run phase 2
        through — lets :class:`~repro.core.flipper.FlipperMiner` share
        its warm counter.  Built from ``backend`` when omitted.
    """

    def __init__(
        self,
        database: TransactionDatabase | ShardedTransactionStore,
        thresholds: Thresholds,
        *,
        sample_rate: float,
        confidence: float = 0.95,
        measure: str | Measure = "kulczynski",
        pruning: object | None = None,
        backend: str = "bitmap",
        sample_method: str = "stratified",
        sample_seed: int = 0,
        max_sample_rows: int | None = None,
        sample_memory_budget_mb: float | None = None,
        max_k: int | None = None,
        partitions: int | None = None,
        memory_budget_mb: float | None = None,
        shard_dir: str | None = None,
        chunk_size: int | None = None,
        verify_backend: PartitionedBackend | None = None,
    ) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ConfigError(
                f"sample_rate must be in (0, 1], got {sample_rate}"
            )
        if not 0.0 < confidence < 1.0:
            raise ConfigError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        self._store, self._shard_tmpdir = open_or_partition_store(
            database,
            partitions,
            shard_dir,
            tmp_prefix="repro-approx-shards-",
        )
        if verify_backend is not None:
            if verify_backend.store is not self._store:
                raise ConfigError(
                    "the verify backend counts a different store than "
                    "the one being mined; build it from the same "
                    "ShardedTransactionStore"
                )
            self._verify_backend = verify_backend
            self._inner = verify_backend.inner_name
        else:
            self._verify_backend = DeltaCounter(
                self._store,
                inner=backend,
                memory_budget_mb=memory_budget_mb,
            )
            self._inner = backend
        self._thresholds = thresholds
        self._measure = get_measure(measure)
        self._pruning = pruning
        self._sample_rate = sample_rate
        self._confidence = confidence
        self._sample_method = sample_method
        self._sample_seed = sample_seed
        self._max_sample_rows = max_sample_rows
        self._sample_memory_budget_mb = sample_memory_budget_mb
        self._max_k = max_k
        self._chunk_size = chunk_size
        #: phase-1 candidates of the most recent run (CIs included)
        self.candidates: list[ApproxCandidate] = []
        #: the derived bounds of the most recent run
        self.bounds: SampleBounds | None = None

    @property
    def store(self) -> ShardedTransactionStore:
        return self._store

    @property
    def verify_backend(self) -> PartitionedBackend:
        return self._verify_backend

    # ------------------------------------------------------------------
    # the two phases
    # ------------------------------------------------------------------

    def mine(self) -> MiningResult:
        """Screen on the sample, verify exactly, return the result."""
        # Local import: core.flipper imports this package lazily too.
        from repro.core.flipper import FlipperMiner, PruningConfig

        taxonomy = self._store.taxonomy
        n_total = self._store.n_transactions
        resolved = self._thresholds.resolve(taxonomy.height, n_total)
        scans_before = self._verify_backend.scans
        with Timer() as total_timer:
            with Timer() as sample_timer:
                draw = draw_sample(
                    self._store,
                    self._sample_rate,
                    method=self._sample_method,
                    seed=self._sample_seed,
                    max_rows=self._max_sample_rows,
                    memory_budget_mb=self._sample_memory_budget_mb,
                )
                sample_db = TransactionDatabase(list(draw.rows), taxonomy)
            bounds = SampleBounds.derive(
                resolved, n_total, draw.n_rows, self._confidence
            )
            # Support thresholds are relaxed by the bounds; the
            # correlation thresholds stay exact here — the per-itemset
            # widening happens inside ApproxLabelStage.  SIBP is
            # disabled for the screen: its bans compare sampled
            # correlations against the exact gamma and could prune a
            # true pattern (the one error the screen must not make).
            relaxed = Thresholds(
                gamma=resolved.gamma,
                epsilon=resolved.epsilon,
                min_support=list(bounds.sample_min_counts),
            )
            base = (
                self._pruning
                if isinstance(self._pruning, PruningConfig)
                else PruningConfig.full()
            )
            screen_pruning = (
                PruningConfig(
                    flipping=True, tpg=base.tpg, sibp=False
                )
                if base.flipping
                else PruningConfig.basic()
            )
            with Timer() as screen_timer:
                screen = FlipperMiner(
                    sample_db,
                    relaxed,
                    measure=self._measure,
                    pruning=screen_pruning,
                    backend=self._inner,
                    max_k=self._max_k,
                    stages=build_approx_stages(bounds),
                )
                screened = screen.mine()
            self.bounds = bounds
            self.candidates = [
                self._candidate(pattern, bounds)
                for pattern in screened.patterns
            ]
            with Timer() as verify_timer:
                verified, rejected = self._verify(screened.patterns, resolved)
        stats = screened.stats
        stats.method = f"approx+{stats.method}"
        stats.elapsed_seconds = total_timer.seconds
        stats.n_patterns = len(verified)
        stats.db_scans += self._verify_backend.scans - scans_before
        config: dict[str, Any] = {
            "method": stats.method,
            "measure": self._measure.name,
            "gamma": resolved.gamma,
            "epsilon": resolved.epsilon,
            "min_counts": list(resolved.min_counts),
            "height": taxonomy.height,
            "n_transactions": n_total,
            "executor": "approx",
            "partitions": self._store.n_shards,
            "approx": {
                **bounds.to_dict(),
                "sample_rate": self._sample_rate,
                "sample_method": draw.method,
                "sample_seed": draw.seed,
                "sample_capped_by": draw.capped_by,
                "n_candidates": len(self.candidates),
                "n_verified": len(verified),
                "n_rejected": rejected,
                "sample_seconds": sample_timer.seconds,
                "screen_seconds": screen_timer.seconds,
                "verify_seconds": verify_timer.seconds,
                "pool_rebuilds": self._verify_backend.pool.rebuilds,
                "pool_image_admits": (
                    self._verify_backend.pool.image_admits
                ),
            },
        }
        return MiningResult(patterns=verified, stats=stats, config=config)

    def _candidate(
        self, pattern: FlippingPattern, bounds: SampleBounds
    ) -> ApproxCandidate:
        scale = bounds.n_total / max(1, bounds.n_sample)
        links = []
        for link in pattern.links:
            lo, hi = bounds.interval(link.support)
            links.append(
                CandidateLink(
                    level=link.level,
                    itemset=link.itemset,
                    names=link.names,
                    sample_support=link.support,
                    support_estimate=round(link.support * scale),
                    support_lo=lo,
                    support_hi=hi,
                    correlation=link.correlation,
                    label=link.label.symbol,
                )
            )
        return ApproxCandidate(links=tuple(links))

    def _verify(
        self,
        patterns: list[FlippingPattern],
        resolved: ResolvedThresholds,
    ) -> tuple[list[FlippingPattern], int]:
        """Exact-count every candidate chain and keep true flips.

        All levels' candidate itemsets *and* node supports are counted
        in one residency pass over the shard pool: under a memory
        budget every extra pass would rebuild each evicted shard
        backend again, and the single pass is what keeps phase 2 at
        ~one store-read regardless of taxonomy height.
        """
        if not patterns:
            return [], 0
        exact, node_supports = self._exact_counts(patterns)
        verified: list[FlippingPattern] = []
        rejected = 0
        for pattern in patterns:
            links = self._exact_links(pattern, resolved, exact, node_supports)
            if links is None:
                rejected += 1
            else:
                verified.append(FlippingPattern(links=tuple(links)))
        verified.sort(key=lambda p: (p.k, p.leaf_names))
        return verified, rejected

    def _exact_counts(
        self, patterns: list[FlippingPattern]
    ) -> tuple[
        dict[int, dict[tuple[int, ...], int]],
        dict[int, dict[int, int]],
    ]:
        """Exact candidate-itemset and node supports, one pool pass."""
        by_level: dict[int, list[tuple[int, ...]]] = {}
        for pattern in patterns:
            for link in pattern.links:
                by_level.setdefault(link.level, []).append(link.itemset)
        by_level = {
            level: sorted(set(itemsets))
            for level, itemsets in sorted(by_level.items())
        }
        taxonomy = self._store.taxonomy
        exact: dict[int, dict[tuple[int, ...], int]] = {
            level: {itemset: 0 for itemset in itemsets}
            for level, itemsets in by_level.items()
        }
        node_supports: dict[int, dict[int, int]] = {
            level: {
                node_id: 0 for node_id in taxonomy.nodes_at_level(level)
            }
            for level in by_level
        }
        for _index, backend in self._verify_backend.pool.iter_backends():
            for level, itemsets in by_level.items():
                for node_id, count in backend.node_supports(level).items():
                    node_supports[level][node_id] += count
                counts = backend.supports_batched(
                    level, itemsets, chunk_size=self._chunk_size
                )
                merge_shard_counts(exact[level], counts)
        return exact, node_supports

    def _exact_links(
        self,
        pattern: FlippingPattern,
        resolved: ResolvedThresholds,
        exact: dict[int, dict[tuple[int, ...], int]],
        node_supports: dict[int, dict[int, int]],
    ) -> list[ChainLink] | None:
        links: list[ChainLink] = []
        previous = None
        for link in pattern.links:
            support = exact[link.level][link.itemset]
            item_supports = [
                node_supports[link.level][node] for node in link.itemset
            ]
            correlation = self._measure(support, item_supports)
            label = label_for(
                support,
                correlation,
                resolved.min_count(link.level),
                resolved.gamma,
                resolved.epsilon,
            )
            if not label.is_signed:
                return None
            if previous is not None and not flips(previous, label):
                return None
            previous = label
            links.append(
                ChainLink(
                    level=link.level,
                    itemset=link.itemset,
                    names=link.names,
                    support=support,
                    correlation=correlation,
                    label=label,
                )
            )
        return links


def mine_approximate(
    database: TransactionDatabase | ShardedTransactionStore,
    thresholds: Thresholds,
    *,
    sample_rate: float,
    confidence: float = 0.95,
    **kwargs: Any,
) -> MiningResult:
    """One-call façade over :class:`ApproxMiner`."""
    return ApproxMiner(
        database,
        thresholds,
        sample_rate=sample_rate,
        confidence=confidence,
        **kwargs,
    ).mine()
