"""Fig. 8(b): runtime vs number of transactions.

Paper shape: all methods scale roughly linearly in N (the paper
sweeps 100K-1M); Flipper stays 15-20x under BASIC throughout.  The
ladder is timed once at the base size, and the sweep itself runs as a
single one-shot (mining is deterministic; re-running per point would
only re-measure identical work).
"""

from __future__ import annotations

import pytest

from conftest import one_shot
from repro.bench import run_fig8b, run_method
from repro.bench.harness import LADDER


@pytest.mark.parametrize("label,pruning", LADDER, ids=[m for m, _ in LADDER])
def test_fig8b_method_at_base_size(
    benchmark, synthetic_db, default_thresholds, label, pruning
):
    record = one_shot(
        benchmark, run_method, synthetic_db, default_thresholds, pruning, label
    )
    assert record.db_scans >= 1


def test_fig8b_series_shape(benchmark, capsys):
    report, result = one_shot(benchmark, run_fig8b)
    with capsys.disabled():
        print("\n" + report)
    # growth: the largest N costs more than the smallest for the
    # heavyweight method
    basic = result.metric("BASIC", "seconds")
    assert basic[-1] >= basic[0] * 0.8
    # the paper's headline gap: full Flipper well under BASIC at
    # every size (the paper reports 15-20x in seconds; candidates are
    # the scale-robust proxy)
    for index in range(len(result.values)):
        full = result.series["FLIPPING+TPG+SIBP"][index].candidates
        basic_c = result.series["BASIC"][index].candidates
        assert full * 5 <= basic_c
