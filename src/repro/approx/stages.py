"""Engine stages of the approximate (phase-1) pipeline.

The sample mine runs the standard generate → count → label → prune
cell visit with two substitutions:

* :class:`ApproxCountStage` — counts are still exact *over the
  sample* (the relaxation lives in thresholds and labels, not the
  counting), but the stage records the per-cell counted-candidate
  volume into the run stats, so the result config can report how much
  of the search space the screen touched — the number the sample's
  speedup is bought with.
* :class:`ApproxLabelStage` — labels each itemset against a
  *per-itemset* widened correlation band.  Every null-invariant
  measure is a mean of ratios ``sup(A)/sup(a_i)``; with all sampled
  frequencies within ``eps`` of their true values (Hoeffding), the
  sampled correlation sits within ``m = 2 eps / (p_min - 2 eps)`` of
  the true one, where ``p_min`` is the smallest *sampled* member-item
  frequency.  Upper taxonomy levels have common items, so their bands
  stay nearly exact and vertical (flipping) pruning keeps its teeth;
  only itemsets of genuinely rare items fall back to the fully
  widened band (clamped at the gamma/epsilon midpoint so positive and
  negative can never overlap).  A uniform worst-case band — one
  margin for the whole run — would leave almost every frequent
  itemset signed and the chain-alive space would explode.

The screen never runs SIBP: its removal lists compare *sampled*
correlations against the exact gamma, which could ban an item whose
true correlation clears the threshold — the one kind of error the
sample phase is not allowed to make.  :func:`build_approx_stages`
therefore has no prune stage; :class:`~repro.approx.miner.ApproxMiner`
also downgrades the screen's pruning config accordingly.
"""

from __future__ import annotations

from repro.approx.bounds import SampleBounds
from repro.core.cells import Cell, CellEntry
from repro.core.labels import label_for
from repro.engine.plan import CellState, MiningContext, Stage
from repro.engine.stages import CountStage, GenerateStage, LabelStage

__all__ = ["ApproxCountStage", "ApproxLabelStage", "build_approx_stages"]


class ApproxCountStage(CountStage):
    """Count on the sample; record per-cell screen volume."""

    name = "count"

    def run(self, context: MiningContext, state: CellState) -> None:
        super().run(context, state)
        cells = context.stats.extra.setdefault("sampled_cells", {})
        key = f"{state.task.level},{state.task.k}"
        cells[key] = cells.get(key, 0) + len(state.supports)


class ApproxLabelStage(LabelStage):
    """Label against per-itemset Hoeffding-widened bands."""

    name = "label"

    def __init__(self, bounds: SampleBounds) -> None:
        self._bounds = bounds

    def margin_for(self, min_item_fraction: float) -> float:
        """Correlation margin for an itemset whose rarest member has
        the given *sampled* frequency (see the module docstring)."""
        bounds = self._bounds
        eps = bounds.epsilon_support
        half_band = max(0.0, (bounds.gamma - bounds.epsilon) / 2.0 - 1e-9)
        raw = 2.0 * eps / max(min_item_fraction - 2.0 * eps, eps)
        return min(half_band, raw)

    def run(self, context: MiningContext, state: CellState) -> None:
        level, k = state.task.level, state.task.k
        cell = Cell(level=level, k=k, n_candidates=state.stats.candidates)
        node_supports = context.node_supports[level]
        theta = context.thresholds.min_count(level)
        gamma = context.thresholds.gamma
        epsilon = context.thresholds.epsilon
        measure = context.measure
        n_sample = self._bounds.n_sample
        parent_cell = context.cells.get((level - 1, k))
        for itemset, support in state.supports.items():
            item_supports = [node_supports[node] for node in itemset]
            correlation = measure(support, item_supports)
            margin = self.margin_for(min(item_supports) / n_sample)
            label = label_for(
                support,
                correlation,
                theta,
                gamma - margin,
                epsilon + margin,
            )
            alive = self._chain_alive(
                context, level, itemset, label, parent_cell
            )
            cell.add(
                CellEntry(
                    itemset=itemset,
                    support=support,
                    correlation=correlation,
                    label=label,
                    alive=alive,
                )
            )
        state.cell = cell


def build_approx_stages(bounds: SampleBounds) -> list[Stage]:
    """The phase-1 pipeline (drop-in for ``build_default_stages``)."""
    return [
        GenerateStage(),
        ApproxCountStage(),
        ApproxLabelStage(bounds),
    ]
