"""Unit tests for repro.core.counting: all backends must agree."""

from __future__ import annotations

import itertools

import pytest

from repro.core.counting import (
    BitmapBackend,
    HorizontalBackend,
    NumpyBackend,
    make_backend,
)
from repro.errors import ConfigError, DataError

ALL_BACKENDS = [BitmapBackend, HorizontalBackend, NumpyBackend]


class TestFactory:
    def test_known_names(self, example3_db):
        assert isinstance(make_backend("bitmap", example3_db), BitmapBackend)
        assert isinstance(
            make_backend("Horizontal", example3_db), HorizontalBackend
        )
        assert isinstance(make_backend("numpy", example3_db), NumpyBackend)

    def test_unknown_rejected(self, example3_db):
        with pytest.raises(ConfigError, match="unknown counting backend"):
            make_backend("gpu", example3_db)


class TestAgreement:
    @pytest.mark.parametrize("other_cls", [HorizontalBackend, NumpyBackend])
    def test_node_supports_agree(self, example3_db, other_cls):
        bitmap = BitmapBackend(example3_db)
        other = other_cls(example3_db)
        for level in (1, 2, 3):
            assert bitmap.node_supports(level) == other.node_supports(level)

    @pytest.mark.parametrize("other_cls", [HorizontalBackend, NumpyBackend])
    def test_itemset_supports_agree(self, example3_db, other_cls):
        bitmap = BitmapBackend(example3_db)
        other = other_cls(example3_db)
        tax = example3_db.taxonomy
        for level in (1, 2, 3):
            nodes = tax.nodes_at_level(level)
            candidates = [
                tuple(sorted(pair))
                for pair in itertools.combinations(nodes, 2)
            ]
            assert bitmap.supports(level, candidates) == other.supports(
                level, candidates
            )

    @pytest.mark.parametrize("other_cls", [HorizontalBackend, NumpyBackend])
    def test_triple_supports_agree(self, random_db, other_cls):
        bitmap = BitmapBackend(random_db)
        other = other_cls(random_db)
        tax = random_db.taxonomy
        nodes = tax.nodes_at_level(2)
        candidates = [
            tuple(sorted(t)) for t in itertools.combinations(nodes, 3)
        ]
        assert bitmap.supports(2, candidates) == other.supports(2, candidates)


class TestNumpyBackend:
    def test_wrong_level_node_rejected(self, example3_db):
        backend = NumpyBackend(example3_db)
        level1 = example3_db.taxonomy.nodes_at_level(1)
        with pytest.raises(DataError):
            backend.supports(2, [tuple(sorted(level1[:2]))])

    def test_empty_batch(self, example3_db):
        backend = NumpyBackend(example3_db)
        assert backend.supports(1, []) == {}

    def test_levels_materialized_lazily(self, example3_db):
        backend = NumpyBackend(example3_db)
        assert backend._levels == {}
        backend.node_supports(2)
        assert set(backend._levels) == {2}


class TestScanAccounting:
    def test_horizontal_counts_scans(self, example3_db):
        backend = HorizontalBackend(example3_db)
        assert backend.scans == 0
        backend.node_supports(1)
        assert backend.scans == 1
        nodes = example3_db.taxonomy.nodes_at_level(1)
        backend.supports(1, [tuple(sorted(nodes))])
        backend.supports(1, [])
        assert backend.scans == 3

    @pytest.mark.parametrize("backend_cls", [BitmapBackend, NumpyBackend])
    def test_index_backends_single_build_scan(self, example3_db, backend_cls):
        backend = backend_cls(example3_db)
        backend.node_supports(1)
        backend.supports(1, [])
        assert backend.scans == 1


class TestMinerIntegration:
    @pytest.mark.parametrize("name", ["bitmap", "horizontal", "numpy"])
    def test_all_backends_find_the_toy_pattern(
        self, example3_db, example3_thresholds, name
    ):
        from repro import mine_flipping_patterns

        result = mine_flipping_patterns(
            example3_db, example3_thresholds, backend=name
        )
        assert [p.leaf_names for p in result.patterns] == [("a11", "b11")]


# ---------------------------------------------------------------------------
# DeltaCounter: incremental SON counting over a growing store
# ---------------------------------------------------------------------------


class TestDeltaCounter:
    @pytest.fixture
    def store(self, random_db, tmp_path):
        from repro.data.shards import ShardedTransactionStore

        return ShardedTransactionStore.partition_database(
            random_db, tmp_path, 3
        )

    def test_refresh_is_noop_without_growth(self, store):
        from repro.core.counting import DeltaCounter

        counter = DeltaCounter(store)
        assert counter.refresh() == []
        counter.node_supports(1)
        assert counter.refresh() == []
        assert counter.refreshes == 0

    def test_node_supports_track_appends(self, store, random_db):
        from repro.core.counting import DeltaCounter, PartitionedBackend

        counter = DeltaCounter(store)
        before = dict(counter.node_supports(2))
        delta = [random_db.transaction_names(index) for index in range(40)]
        store.append_batch(delta)
        after = counter.node_supports(2)
        oracle = PartitionedBackend(store).node_supports(2)
        assert after == oracle
        assert after != before
        assert counter.counted_shards == store.n_shards

    def test_cached_supports_merge_delta_counts(self, store, random_db):
        from repro.core.counting import DeltaCounter, PartitionedBackend

        counter = DeltaCounter(store)
        nodes = sorted(store.taxonomy.nodes_at_level(2))
        itemsets = [
            (nodes[i], nodes[j])
            for i in range(len(nodes))
            for j in range(i + 1, len(nodes))
        ][:12]
        first = counter.supports_batched(2, itemsets)
        assert counter.cache_misses == len(itemsets)
        delta = [random_db.transaction_names(index) for index in range(25)]
        store.append_batch(delta)
        second = counter.supports_batched(2, itemsets)
        # second pass is all hits: no itemset was recounted in full
        assert counter.cache_misses == len(itemsets)
        assert counter.cache_hits == len(itemsets)
        oracle = PartitionedBackend(store).supports_batched(2, itemsets)
        assert second == oracle
        assert any(second[i] > first[i] for i in itemsets)

    def test_supports_preserve_request_order(self, store):
        from repro.core.counting import DeltaCounter

        counter = DeltaCounter(store)
        nodes = sorted(store.taxonomy.nodes_at_level(1))
        itemsets = [(nodes[1], nodes[2]), (nodes[0], nodes[1])]
        out = counter.supports_batched(1, itemsets)
        assert list(out) == itemsets

    def test_empty_delta_shard_contributes_zero(self, store):
        from repro.core.counting import DeltaCounter

        counter = DeltaCounter(store)
        before = dict(counter.node_supports(1))
        assert store.append_batch([]) == []
        assert counter.refresh() == []
        assert counter.node_supports(1) == before


class TestShardPoolResidency:
    """Regression: a budget smaller than one shard must neither starve
    the pool nor evict the shard currently being counted."""

    @pytest.fixture
    def store(self, random_db, tmp_path):
        from repro.data.shards import ShardedTransactionStore

        return ShardedTransactionStore.partition_database(
            random_db, tmp_path, 4
        )

    def test_tiny_budget_always_keeps_one_resident(self, store):
        from repro.core.counting import ShardBackendPool

        pool = ShardBackendPool(store, memory_budget_mb=0.0001)
        for index in range(store.n_shards):
            backend = pool.backend(index)
            assert backend is not None
            assert pool.resident_shards == [index]

    def test_counted_shard_is_not_evicted_by_nested_access(self, store):
        from repro.core.counting import ShardBackendPool

        pool = ShardBackendPool(store, memory_budget_mb=0.0001)
        for index, backend in pool.iter_backends():
            # nested accesses mid-count (as a re-entrant consumer
            # would trigger) must not evict the pinned shard ...
            other = (index + 1) % store.n_shards
            pool.backend(other)
            again = pool.backend(index)
            # ... so re-asking for it returns the very same object
            assert again is backend
            assert index in pool.resident_shards

    def test_tiny_budget_counts_are_exact(self, store, random_db):
        from repro.core.counting import (
            BitmapBackend,
            PartitionedBackend,
        )

        budgeted = PartitionedBackend(store, memory_budget_mb=0.0001)
        oracle = BitmapBackend(random_db)
        assert budgeted.node_supports(1) == oracle.node_supports(1)
        nodes = sorted(store.taxonomy.nodes_at_level(1))
        itemsets = [(nodes[0], nodes[1]), (nodes[1], nodes[2])]
        assert budgeted.supports_batched(1, itemsets) == (
            oracle.supports_batched(1, itemsets)
        )

    def test_unpinned_lru_eviction_still_happens(self, store):
        from repro.core.counting import ShardBackendPool

        pool = ShardBackendPool(store, memory_budget_mb=0.0001)
        pool.backend(0)
        pool.backend(1)
        assert pool.resident_shards == [1]
        pool.backend(0)
        # the evicted shard was re-admitted: either rebuilt from rows
        # or (columnar default) mapped back from its persisted image
        assert pool.rebuilds + pool.image_admits == 1

    def test_eviction_without_image_persistence_rebuilds(self, store):
        from repro.core.counting import ShardBackendPool

        pool = ShardBackendPool(
            store, memory_budget_mb=0.0001, persist_images=False
        )
        pool.backend(0)
        pool.backend(1)
        pool.backend(0)
        assert pool.rebuilds == 1
        assert pool.image_admits == 0


class TestBackendImageAdmits:
    """Persisted backend images: zero-parse re-admits, staleness."""

    @pytest.fixture
    def store(self, random_db, tmp_path):
        from repro.data.shards import ShardedTransactionStore

        return ShardedTransactionStore.partition_database(
            random_db, tmp_path, 3
        )

    def _imaged_store(self, store, inner="bitmap"):
        from repro.core.counting import ShardBackendPool

        pool = ShardBackendPool(store, inner=inner)
        height = store.taxonomy.height
        for index in range(store.n_shards):
            backend = pool.backend(index)
            # materialize every level (numpy builds them lazily) so
            # the persisted image carries the full structure
            for level in range(1, height + 1):
                backend.node_supports(level)
        assert pool.save_images() == store.n_shards
        return pool

    @pytest.mark.parametrize("inner", ["bitmap", "numpy"])
    def test_image_admit_counts_match_build(self, store, random_db, inner):
        from repro.core.counting import ShardBackendPool, make_backend

        self._imaged_store(store, inner)
        warm = ShardBackendPool(store, inner=inner)
        oracle = make_backend(inner, random_db)
        height = random_db.taxonomy.height
        for level in range(1, height + 1):
            merged: dict[int, int] = {}
            for index in range(store.n_shards):
                backend = warm.backend(index)
                for node, count in backend.node_supports(level).items():
                    merged[node] = merged.get(node, 0) + count
            assert merged == oracle.node_supports(level)
        assert warm.image_admits == store.n_shards
        assert warm.rebuilds == 0
        assert warm.scans == 0  # no shard was ever re-parsed

    def test_stale_taxonomy_fingerprint_forces_rebuild(
        self, store, grocery_taxonomy, tmp_path
    ):
        from repro.core.counting import ShardBackendPool
        from repro.data.shards import ShardedTransactionStore
        from repro.taxonomy.tree import Taxonomy

        self._imaged_store(store)
        # same leaves, different grouping: images written under the
        # original taxonomy must not be served under this one
        regrouped = Taxonomy.from_dict(
            {
                "drinks": {
                    "beer": ["canned beer", "bottled beer"],
                    "soda": ["cola", "lemonade"],
                },
                "non-food": {
                    "cosmetics": ["baby cosmetics", "soap"],
                    "cleaning": ["detergent", "sponges"],
                },
                "fresh": {
                    "fruit": ["apples", "milk"],  # swapped pair
                    "dairy": ["bananas", "yogurt"],
                },
            }
        )
        reopened = ShardedTransactionStore.open(tmp_path, regrouped)
        pool = ShardBackendPool(reopened)
        backend = pool.backend(0)
        assert pool.image_admits == 0  # stale image was never served
        assert backend is not None
        # counts reflect the *new* taxonomy: "milk" sits under fruit
        fruit = regrouped.node_by_name("fruit").node_id
        rows = reopened.shard_transactions(0)
        expected = sum(
            1
            for row in rows
            if any(item in ("apples", "milk") for item in row)
        )
        assert backend.node_supports(2)[fruit] == expected

    def test_corrupt_image_falls_back_to_rebuild(self, store):
        from repro.core.counting import ShardBackendPool

        self._imaged_store(store)
        image = store.image_path(0, "bitmap")
        image.write_bytes(b"FLIPIMG1" + b"\x00" * 32)
        pool = ShardBackendPool(store)
        assert pool.backend(0) is not None
        assert pool.image_admits == 0

    def test_truncated_image_falls_back_to_rebuild(self, store):
        from repro.core.counting import ShardBackendPool

        self._imaged_store(store)
        image = store.image_path(0, "bitmap")
        raw = image.read_bytes()
        image.write_bytes(raw[: len(raw) // 2])
        pool = ShardBackendPool(store)
        backend = pool.backend(0)
        assert pool.image_admits == 0
        assert backend.node_supports(1)  # still serves exact counts

    def test_image_admits_count_separately_from_rebuilds(self, store):
        from repro.core.counting import ShardBackendPool

        self._imaged_store(store)
        pool = ShardBackendPool(store, memory_budget_mb=0.0001)
        pool.backend(0)
        pool.backend(1)  # evicts 0
        pool.backend(0)  # re-admit: from image, not rebuild
        assert pool.image_admits >= 2
        assert pool.rebuilds == 0

    def test_horizontal_inner_never_persists_images(self, store):
        from repro.core.counting import ShardBackendPool

        pool = ShardBackendPool(store, inner="horizontal")
        for index in range(store.n_shards):
            pool.backend(index)
        assert pool.save_images() == 0
        assert store.shard_images(0) == []


class TestBudgetRespected:
    """S1: truthful estimates keep the resident set within budget."""

    @pytest.fixture
    def store(self, random_db, tmp_path):
        from repro.data.shards import ShardedTransactionStore

        return ShardedTransactionStore.partition_database(
            random_db, tmp_path, 4
        )

    def test_resident_bytes_track_budget_within_ten_percent(self, store):
        from repro.core.counting import ShardBackendPool

        probe = ShardBackendPool(store)
        largest = max(
            probe._estimate_bytes(index)
            for index in range(store.n_shards)
        )
        budget_bytes = int(largest * 1.6)
        pool = ShardBackendPool(
            store, memory_budget_mb=budget_bytes / (1024 * 1024)
        )
        for index in list(range(store.n_shards)) * 3:
            pool.backend(index)
            # the pool may run over only for the single shard it is
            # admitting; steady-state residency honours the budget
            assert pool.resident_bytes <= budget_bytes * 1.1

    def test_columnar_estimate_is_truthful(self, store):
        from repro.core.counting import ShardBackendPool

        pool = ShardBackendPool(store)
        for index in range(store.n_shards):
            pool.backend(index)
        pool.save_images()
        estimate = pool._estimate_bytes(0)
        actual = store.shard_bytes(0) + store.image_bytes(0)
        # estimate equals mapped shard + image bytes once on disk
        assert estimate == actual

    def test_jsonl_estimate_keeps_expansion_heuristic(
        self, random_db, tmp_path
    ):
        from repro.core.counting import ShardBackendPool
        from repro.data.shards import ShardedTransactionStore

        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2, format="jsonl"
        )
        pool = ShardBackendPool(store)
        assert pool._estimate_bytes(0) == (
            store.shard_bytes(0) * ShardBackendPool.RESIDENCY_FACTOR
        )


class TestDeltaCounterCacheCap:
    def test_budget_caps_memoization_but_not_exactness(
        self, random_db, tmp_path, monkeypatch
    ):
        from repro.core.counting import (
            DeltaCounter,
            PartitionedBackend,
        )
        from repro.data.shards import ShardedTransactionStore

        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 3
        )
        monkeypatch.setattr(
            DeltaCounter, "CACHE_BYTES_PER_ITEMSET", 1024 * 1024
        )
        counter = DeltaCounter(store, memory_budget_mb=2.0)
        # budget / bytes-per-entry = 2 entries, floored at... the
        # floor is 1024; shrink it through the estimate instead
        counter._max_cached_itemsets = 2
        nodes = sorted(store.taxonomy.nodes_at_level(2))
        itemsets = [
            (nodes[i], nodes[j])
            for i in range(len(nodes))
            for j in range(i + 1, len(nodes))
        ][:8]
        out = counter.supports_batched(2, itemsets)
        assert counter.cached_itemsets == 2
        oracle = PartitionedBackend(store).supports_batched(2, itemsets)
        assert out == oracle
        # uncached entries are recounted, still exactly
        assert counter.supports_batched(2, itemsets) == oracle

    def test_unbudgeted_counter_memoizes_everything(self, random_db, tmp_path):
        from repro.core.counting import DeltaCounter
        from repro.data.shards import ShardedTransactionStore

        store = ShardedTransactionStore.partition_database(
            random_db, tmp_path, 2
        )
        counter = DeltaCounter(store)
        nodes = sorted(store.taxonomy.nodes_at_level(1))
        itemsets = [(nodes[0], nodes[1]), (nodes[1], nodes[2])]
        counter.supports_batched(1, itemsets)
        assert counter.cached_itemsets == len(itemsets)
