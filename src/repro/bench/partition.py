"""Partition bench: 1-shard vs N-shard wall-clock and peak RSS.

The out-of-core partitioned path trades re-reading shards from disk
for a bounded resident set; this bench quantifies the trade on the
planted groceries dataset and asserts the property that makes the
trade safe — N-shard mining produces *byte-identical* patterns to the
single-partition path.

Each configuration runs in a fresh ``spawn`` subprocess so its peak
RSS (``getrusage(RUSAGE_SELF).ru_maxrss``) is its own: peak RSS is a
process-lifetime high-water mark, so in-process sequential runs would
all report the first run's peak.  ``run_partition_bench`` collects
the probes, renders a report, and writes the machine-readable
``BENCH_partition.json`` (path overridable via
``REPRO_BENCH_PARTITION_OUT``) so later PRs can diff the partitioned
path's cost profile.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import resource
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.bench.profiles import bench_scale
from repro.bench.report import ShapeCheck, format_table, render_checks

__all__ = ["run_partition_bench", "DEFAULT_OUT_PATH"]

DEFAULT_OUT_PATH = "BENCH_partition.json"

#: shard count of the partitioned probe
_N_SHARDS = 4
#: per-process resident-shard budget of the partitioned probe (MiB)
_MEMORY_BUDGET_MB = 8.0


def _peak_rss_mb() -> float:
    """Process-lifetime peak resident set size, in MiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; normalize both.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return peak / (1024 * 1024)
    return peak / 1024


def _partition_probe(config: dict[str, object]) -> dict[str, object]:
    """One configuration, run inside a fresh subprocess."""
    # Imports stay inside the probe: under ``spawn`` the worker pays
    # them itself, so both configurations carry the same baseline.
    from repro.core.flipper import FlipperMiner
    from repro.data.shards import ShardedTransactionStore
    from repro.datasets.groceries import (
        GROCERIES_THRESHOLDS,
        generate_groceries,
    )

    database = generate_groceries(scale=float(config["scale"]))  # type: ignore[arg-type]
    partitions = int(config["partitions"])  # type: ignore[arg-type]
    budget = config["memory_budget_mb"]
    with tempfile.TemporaryDirectory(prefix="repro-bench-shards-") as tmp:
        start = time.perf_counter()
        if partitions > 1:
            store = ShardedTransactionStore.partition_database(
                database, tmp, partitions
            )
            ingest_seconds = time.perf_counter() - start
            miner = FlipperMiner(
                store,
                GROCERIES_THRESHOLDS,
                memory_budget_mb=(
                    float(budget) if budget is not None else None  # type: ignore[arg-type]
                ),
            )
        else:
            ingest_seconds = 0.0
            miner = FlipperMiner(database, GROCERIES_THRESHOLDS)
        start = time.perf_counter()
        result = miner.mine()
        mine_seconds = time.perf_counter() - start
    return {
        "partitions": partitions,
        "memory_budget_mb": budget,
        "ingest_seconds": ingest_seconds,
        "mine_seconds": mine_seconds,
        "peak_rss_mb": _peak_rss_mb(),
        "n_patterns": len(result.patterns),
        "db_scans": result.stats.db_scans,
        "fingerprint": json.dumps(
            [pattern.to_dict() for pattern in result.patterns],
            sort_keys=True,
        ),
    }


def _run_probe(config: dict[str, object]) -> dict[str, object]:
    """Run one probe in a fresh spawned subprocess (fresh RSS)."""
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=1, mp_context=context
    ) as pool:
        return pool.submit(_partition_probe, config).result()


def run_partition_bench(
    out_path: str | os.PathLike[str] | None = None,
) -> tuple[str, dict[str, object]]:
    """Run the partition bench and write ``BENCH_partition.json``."""
    if out_path is None:
        out_path = os.environ.get(
            "REPRO_BENCH_PARTITION_OUT", DEFAULT_OUT_PATH
        )
    scale = min(1.0, max(0.1, bench_scale() * 10))
    configs: dict[str, dict[str, object]] = {
        "shards=1": {
            "scale": scale,
            "partitions": 1,
            "memory_budget_mb": None,
        },
        f"shards={_N_SHARDS}": {
            "scale": scale,
            "partitions": _N_SHARDS,
            "memory_budget_mb": _MEMORY_BUDGET_MB,
        },
    }
    probes = {name: _run_probe(config) for name, config in configs.items()}

    names = list(probes)
    fingerprints = [probes[name].pop("fingerprint") for name in names]
    identical = len(set(fingerprints)) == 1
    baseline, partitioned = (probes[name] for name in names)
    checks = [
        ShapeCheck(
            f"{_N_SHARDS}-shard patterns byte-identical to 1-shard",
            identical,
            f"{baseline['n_patterns']} vs {partitioned['n_patterns']} "
            "patterns",
        ),
        ShapeCheck(
            "the planted patterns were found",
            int(baseline["n_patterns"]) > 0,  # type: ignore[call-overload]
            f"{baseline['n_patterns']} patterns",
        ),
    ]
    data: dict[str, object] = {
        "bench": "partition",
        "scale": scale,
        "n_shards": _N_SHARDS,
        "memory_budget_mb": _MEMORY_BUDGET_MB,
        "runs": probes,
        "patterns_identical": identical,
        "checks_pass": all(check.passed for check in checks),
    }
    Path(out_path).write_text(json.dumps(data, indent=2) + "\n")

    rows = [
        [
            name,
            f"{probe['mine_seconds']:.3f}",
            f"{probe['ingest_seconds']:.3f}",
            f"{probe['peak_rss_mb']:.1f}",
            probe["n_patterns"],
            probe["db_scans"],
        ]
        for name, probe in probes.items()
    ]
    report = "\n".join(
        [
            f"== Partition bench (groceries scale {scale:g}) ==",
            "each config in a fresh subprocess; RSS is the process peak",
            "",
            format_table(
                ["config", "mine s", "shard s", "peak MB", "patterns",
                 "scans"],
                rows,
            ),
            "",
            render_checks(checks),
            f"baseline written to {out_path}",
        ]
    )
    return report, data
