"""Known-bad: public functions leaking builtin exceptions."""

import json


def load_manifest(path):
    text = path.read_text(encoding="utf-8")  # FLIP004
    return json.loads(text)  # FLIP004


def lookup(index, key):
    if key not in index:
        raise KeyError(key)  # FLIP004
    return index[key]
