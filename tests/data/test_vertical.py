"""Unit tests for repro.data.vertical: the bitmap index must agree with
naive counting on every level."""

from __future__ import annotations

import pytest

from repro.data import TransactionDatabase, VerticalIndex
from repro.errors import DataError


@pytest.fixture
def index(example3_db) -> VerticalIndex:
    return VerticalIndex(example3_db)


def naive_support(db: TransactionDatabase, level: int, names: set[str]) -> int:
    """Count by direct projection — the definition, not the index."""
    tax = db.taxonomy
    ids = {tax.node_by_name(n, level=level).node_id for n in names}
    return sum(
        1 for projected in db.project_to_level(level) if ids <= projected
    )


class TestSingleNodeSupports:
    # Hand-computed from Fig. 4 (see paper Example 3).
    @pytest.mark.parametrize(
        "name,level,expected",
        [
            ("a11", 3, 2),
            ("a12", 3, 4),
            ("a21", 3, 4),
            ("b12", 3, 4),
            ("a1", 2, 6),
            ("b1", 2, 6),
            ("a", 1, 8),
            ("b", 1, 9),
        ],
    )
    def test_matches_paper_counts(
        self, index, example3_db, name, level, expected
    ):
        node = example3_db.taxonomy.node_by_name(name, level=level)
        assert index.support_of_node(level, node.node_id) == expected

    def test_node_supports_bulk(self, index, example3_db):
        supports = index.node_supports(1)
        by_name = {
            example3_db.taxonomy.name_of(nid): s for nid, s in supports.items()
        }
        assert by_name == {"a": 8, "b": 9}


class TestItemsetSupport:
    def test_pair_support_matches_paper(self, index, example3_db):
        tax = example3_db.taxonomy
        a1 = tax.node_by_name("a1").node_id
        b1 = tax.node_by_name("b1").node_id
        assert index.support(2, (a1, b1)) == 2

    def test_agrees_with_naive_counting(self, index, example3_db):
        import itertools

        tax = example3_db.taxonomy
        for level in (1, 2, 3):
            nodes = tax.nodes_at_level(level)
            for pair in itertools.combinations(nodes, 2):
                names = {tax.name_of(n) for n in pair}
                assert index.support(level, pair) == naive_support(
                    example3_db, level, names
                ), (level, names)

    def test_empty_itemset_rejected(self, index):
        with pytest.raises(DataError):
            index.support(1, ())

    def test_wrong_level_rejected(self, index, example3_db):
        leaf = example3_db.taxonomy.node_by_name("a11").node_id
        with pytest.raises(DataError):
            index.support(1, (leaf,))

    def test_disjoint_itemset_is_zero(self, index, example3_db):
        tax = example3_db.taxonomy
        a11 = tax.node_by_name("a11").node_id
        b21 = tax.node_by_name("b21").node_id
        # a11 appears in D1, D2; b21 in D4, D5, D8, D9 — disjoint
        assert index.support(3, (a11, b21)) == 0


class TestBitsets:
    def test_internal_bitset_is_union_of_items(self, index, example3_db):
        tax = example3_db.taxonomy
        a1 = tax.node_by_name("a1")
        children_bits = 0
        for item in tax.item_leaves(a1.node_id):
            children_bits |= index.bitset(3, item)
        assert index.bitset(2, a1.node_id) == children_bits

    def test_itemset_bitset_popcount_equals_support(self, index, example3_db):
        tax = example3_db.taxonomy
        a = tax.node_by_name("a").node_id
        b = tax.node_by_name("b").node_id
        bits = index.itemset_bitset(1, (a, b))
        assert bits.bit_count() == index.support(1, (a, b)) == 7


class TestUnknownItemValidation:
    """Regression: a transaction holding an item id outside the bound
    taxonomy's item universe used to surface as a bare KeyError."""

    def test_foreign_item_id_raises_data_error(self, example3_db):
        bogus = max(example3_db.item_ids) + 999
        example3_db._transactions[3] = example3_db._transactions[3] + (
            bogus,
        )
        with pytest.raises(DataError) as excinfo:
            VerticalIndex(example3_db)
        message = str(excinfo.value)
        assert "transaction 3" in message
        assert str(bogus) in message
