"""Unit tests for repro.bench.harness and repro.bench.report."""

from __future__ import annotations

import pytest

from repro import PruningConfig, Thresholds
from repro.bench.harness import (
    LADDER,
    RunRecord,
    run_ladder,
    run_method,
    sweep,
)
from repro.bench.report import (
    check_ladder_ordering,
    check_monotone_series,
    format_table,
    render_checks,
    series_table,
)


class TestRunMethod:
    def test_records_costs(self, example3_db, example3_thresholds):
        record = run_method(
            example3_db, example3_thresholds, PruningConfig.full()
        )
        assert record.method == "flipping+tpg+sibp"
        assert record.n_patterns == 1
        assert record.seconds > 0
        assert record.peak_memory_bytes is None

    def test_label_override(self, example3_db, example3_thresholds):
        record = run_method(
            example3_db,
            example3_thresholds,
            PruningConfig.full(),
            label="FULL",
        )
        assert record.method == "FULL"

    def test_memory_tracking(self, example3_db, example3_thresholds):
        record = run_method(
            example3_db,
            example3_thresholds,
            PruningConfig.full(),
            track_memory=True,
        )
        assert record.peak_memory_bytes is not None
        assert record.peak_memory_bytes > 0


class TestRunLadder:
    def test_four_methods(self, example3_db, example3_thresholds):
        records = run_ladder(example3_db, example3_thresholds)
        assert [record.method for record in records] == [
            label for label, _cfg in LADDER
        ]

    def test_all_find_the_pattern(self, example3_db, example3_thresholds):
        records = run_ladder(example3_db, example3_thresholds)
        assert all(record.n_patterns == 1 for record in records)


class TestSweep:
    def test_series_collected(self, example3_db):
        result = sweep(
            "gamma",
            [0.5, 0.6],
            database_for=lambda _v: example3_db,
            thresholds_for=lambda g: Thresholds(
                gamma=g, epsilon=0.35, min_support=1
            ),
        )
        assert result.values == [0.5, 0.6]
        assert set(result.methods) == {label for label, _cfg in LADDER}
        assert len(result.metric("BASIC", "seconds")) == 2


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_series_table(self, example3_db, example3_thresholds):
        result = sweep(
            "x",
            [1],
            database_for=lambda _v: example3_db,
            thresholds_for=lambda _v: example3_thresholds,
        )
        table = series_table(result, "candidates")
        assert "BASIC" in table and "x" in table

    def test_ladder_ordering_check(self):
        def record(method, candidates):
            return RunRecord(
                method=method,
                seconds=0.0,
                candidates=candidates,
                counted=0,
                stored_entries=0,
                max_cell_entries=0,
                n_patterns=0,
                db_scans=0,
                tpg_events=0,
                sibp_bans=0,
            )

        ok = check_ladder_ordering([record("a", 10), record("b", 5)])
        assert ok.passed
        bad = check_ladder_ordering([record("a", 5), record("b", 10)])
        assert not bad.passed

    def test_monotone_check(self, example3_db, example3_thresholds):
        result = sweep(
            "x",
            [1, 2],
            database_for=lambda _v: example3_db,
            thresholds_for=lambda _v: example3_thresholds,
        )
        check = check_monotone_series(
            result, "BASIC", "candidates", "increasing", tolerance=1.0
        )
        assert check.detail.startswith("BASIC candidates")

    def test_render_checks(self):
        from repro.bench.report import ShapeCheck

        text = render_checks(
            [ShapeCheck("x", True, "d1"), ShapeCheck("y", False, "d2")]
        )
        assert "[PASS] x" in text and "[FAIL] y" in text
