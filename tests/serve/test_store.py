"""Unit tests for the indexed pattern store."""

from __future__ import annotations

import json

import pytest

from repro.core.patterns import MiningResult
from repro.core.stats import MiningStats
from repro.errors import ServeError
from repro.serve import (
    PatternStore,
    Query,
    QueryEngine,
    linear_scan,
    pattern_id_of,
)
from repro.serve.store import STORE_FILE_NAME, STORE_FORMAT_VERSION


def _empty_result(config=None):
    return MiningResult(
        patterns=[],
        stats=MiningStats(method="test", measure="kulczynski"),
        config=dict(config or {}),
    )


def _result_with(patterns, config=None):
    return MiningResult(
        patterns=list(patterns),
        stats=MiningStats(method="test", measure="kulczynski"),
        config=dict(config or {}),
    )


class TestBuild:
    def test_indexes_toy_pattern(self, toy_store, toy_result):
        assert len(toy_store) == len(toy_result.patterns) == 1
        pattern = toy_result.patterns[0]
        pid = pattern_id_of(pattern)
        assert pid in toy_store
        assert toy_store.get(pid) == pattern
        # leaf items are indexed...
        for name in pattern.leaf_names:
            assert toy_store.item_postings(name) == {pid}
        # ...and every chain level's nodes are
        for link in pattern.links:
            for name in link.names:
                assert pid in toy_store.node_postings(name)
        assert toy_store.signature_postings(pattern.signature) == {pid}
        assert toy_store.height_postings(None, None) == {pid}

    def test_version_starts_at_one(self, toy_store):
        assert toy_store.version == 1

    def test_empty_store(self):
        store = PatternStore.build(_empty_result())
        assert len(store) == 0
        assert store.version == 1
        assert store.ids() == []
        assert store.item_postings("anything") == set()

    def test_duplicate_leaf_itemset_rejected(self, corpus_result):
        pattern = corpus_result.patterns[0]
        with pytest.raises(ServeError, match="two patterns"):
            PatternStore.build(_result_with([pattern, pattern]))

    def test_stats_shape(self, corpus_store):
        stats = corpus_store.stats()
        assert stats["n_patterns"] == len(corpus_store)
        assert stats["version"] == corpus_store.version
        assert sum(stats["signatures"].values()) == len(corpus_store)
        assert sum(stats["heights"].values()) == len(corpus_store)

    def test_sorted_arrays_cover_all_patterns(self, corpus_store):
        for measure in ("correlation", "support", "min_gap"):
            left, right = corpus_store.range_bounds(measure, None, None)
            assert right - left == len(corpus_store)

    def test_range_bounds_inclusive(self, corpus_store):
        # every pattern's own leaf correlation is inside [v, v]
        for pid, pattern in list(corpus_store.items())[:20]:
            value = pattern.leaf_link.correlation
            assert pid in corpus_store.range_postings(
                "correlation", value, value
            )


class TestApplyResult:
    def test_noop_diff_keeps_version(self, corpus_result):
        store = PatternStore.build(corpus_result)
        before = store.version
        diff = store.apply_result(corpus_result)
        assert diff["added"] == diff["changed"] == diff["removed"] == 0
        assert diff["unchanged"] == len(corpus_result.patterns)
        assert store.version == before

    def test_added_and_removed(self, corpus_result):
        half = _result_with(corpus_result.patterns[:200])
        store = PatternStore.build(half)
        diff = store.apply_result(corpus_result)
        assert diff["added"] == len(corpus_result.patterns) - 200
        assert diff["removed"] == 0
        assert store.version == 2
        diff = store.apply_result(half)
        assert diff["removed"] == len(corpus_result.patterns) - 200
        assert len(store) == 200
        assert store.version == 3

    def test_changed_patterns_reindexed(self, corpus_result):
        store = PatternStore.build(corpus_result)
        mutated = corpus_result.patterns[0]
        import dataclasses

        new_leaf = dataclasses.replace(mutated.links[-1], correlation=0.987654)
        changed = dataclasses.replace(
            mutated, links=mutated.links[:-1] + (new_leaf,)
        )
        result = _result_with([changed] + list(corpus_result.patterns[1:]))
        diff = store.apply_result(result)
        assert diff["changed"] == 1
        assert diff["unchanged"] == len(corpus_result.patterns) - 1
        pid = pattern_id_of(changed)
        assert pid in store.range_postings("correlation", 0.987654, 0.987654)

    def test_removal_cleans_every_index(self, corpus_result):
        store = PatternStore.build(corpus_result)
        store.apply_result(_empty_result())
        assert len(store) == 0
        assert store.height_postings(None, None) == set()
        for measure in ("correlation", "support", "min_gap"):
            left, right = store.range_bounds(measure, None, None)
            assert right == left == 0
        # full query surface agrees
        engine = QueryEngine(store)
        assert engine.execute(Query()).ids == []


class TestVersioning:
    def test_require_version(self, toy_store):
        toy_store.require_version(toy_store.version)
        with pytest.raises(ServeError, match="stale store version"):
            toy_store.require_version(toy_store.version + 1)


class TestPersistence:
    def test_round_trip_directory(self, corpus_store, tmp_path):
        written = corpus_store.save(tmp_path)
        assert written.name == STORE_FILE_NAME
        again = PatternStore.open(tmp_path)
        assert again.version == corpus_store.version
        assert again.ids() == corpus_store.ids()
        query = Query(min_correlation=0.5, sort_by="min_gap", limit=25)
        assert (
            QueryEngine(again).execute(query).ids
            == QueryEngine(corpus_store).execute(query).ids
        )

    def test_round_trip_explicit_file(self, toy_store, tmp_path):
        target = tmp_path / "custom.json"
        assert toy_store.save(target) == target
        assert PatternStore.open(target).ids() == toy_store.ids()

    def test_save_is_atomic(self, toy_store, tmp_path):
        toy_store.save(tmp_path)
        # no temp droppings next to the store file
        assert [p.name for p in tmp_path.iterdir()] == [STORE_FILE_NAME]

    def test_open_missing(self, tmp_path):
        with pytest.raises(ServeError, match="no such pattern store"):
            PatternStore.open(tmp_path / "absent.json")

    def test_open_invalid_json(self, tmp_path):
        path = tmp_path / STORE_FILE_NAME
        path.write_text("{torn")
        with pytest.raises(ServeError, match="not a valid pattern store"):
            PatternStore.open(path)

    def test_open_wrong_format(self, tmp_path):
        path = tmp_path / STORE_FILE_NAME
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ServeError, match="not a repro.pattern-store"):
            PatternStore.open(path)

    def test_open_future_format_version(self, toy_store, tmp_path):
        target = toy_store.save(tmp_path)
        raw = json.loads(target.read_text())
        raw["format_version"] = STORE_FORMAT_VERSION + 1
        target.write_text(json.dumps(raw))
        with pytest.raises(ServeError, match="unsupported"):
            PatternStore.open(target)

    def test_saved_store_version_survives(self, corpus_result, tmp_path):
        store = PatternStore.build(corpus_result)
        store.apply_result(_result_with(corpus_result.patterns[:10]))
        assert store.version == 2
        store.save(tmp_path)
        assert PatternStore.open(tmp_path).version == 2


class TestParityOnMinedData:
    def test_indexed_equals_scan_on_toy(self, toy_store):
        engine = QueryEngine(toy_store)
        for query in (
            Query(),
            Query(contains_items=("a11",)),
            Query(under_node="a1"),
            Query(signature="+-+"),
            Query(min_correlation=0.0, max_correlation=1.0),
        ):
            assert (
                engine.execute(query).ids
                == linear_scan(toy_store, query).ids
            )
