#!/usr/bin/env python3
"""Quickstart: mine flipping correlations from the paper's toy data.

This walks the whole public API on the ten-transaction example of the
paper's Fig. 4: build a taxonomy, bind transactions, mine, and read
the resulting chain.  Expected output: the single flipping pattern
{a11, b11} whose correlation flips positive -> negative -> positive
down the hierarchy (paper Fig. 5).

Run:  python examples/quickstart.py

Hacking on the repo itself?  `flipper-mine analyze` runs the
project's invariant linter (snapshot immutability, atomic writes,
async-blocking, error contracts — see "Enforced invariants" in
ARCHITECTURE.md) over `src` and `scripts`; CI fails on any finding
not in the committed baseline.
"""

from repro import (
    Taxonomy,
    Thresholds,
    TransactionDatabase,
    mine_flipping_patterns,
)


def main() -> None:
    # 1. The taxonomy (is-a hierarchy).  Leaves are the transaction
    #    items; internal nodes are their generalizations.
    taxonomy = Taxonomy.from_dict(
        {
            "a": {"a1": ["a11", "a12"], "a2": ["a21", "a22"]},
            "b": {"b1": ["b11", "b12"], "b2": ["b21", "b22"]},
        }
    )
    print(taxonomy.describe())
    print()

    # 2. The transactions (paper Fig. 4, D1..D10).
    transactions = [
        ["a11", "a22", "b11", "b22"],
        ["a11", "a21", "b11"],
        ["a12", "a21"],
        ["a12", "a22", "b21"],
        ["a12", "a22", "b21"],
        ["a12", "a21", "b22"],
        ["a21", "b12"],
        ["b12", "b21", "b22"],
        ["b12", "b21"],
        ["a22", "b12", "b22"],
    ]
    database = TransactionDatabase(transactions, taxonomy)
    print(database.describe())
    print()

    # 3. Thresholds: positive when Kulc >= 0.6, negative when
    #    Kulc <= 0.35, minimum support 1 transaction at every level
    #    (Example 3).
    thresholds = Thresholds(gamma=0.6, epsilon=0.35, min_support=1)

    # 4. Mine.  The default configuration is the full Flipper algorithm
    #    (flipping + TPG + SIBP pruning) with the Kulczynski measure.
    result = mine_flipping_patterns(database, thresholds)

    print(f"found {len(result.patterns)} flipping pattern(s):")
    for pattern in result.patterns:
        print()
        print(pattern.describe())

    # 5. Instrumentation: how much work did the pruning save?
    print()
    print(result.stats.summary())

    # 6. Scaling out: counting is batched behind a pluggable executor
    #    (see ARCHITECTURE.md).  executor="process" fans support
    #    counting out across worker processes; on a dataset this small
    #    it only demonstrates that the results are identical.
    parallel = mine_flipping_patterns(
        database, thresholds, executor="process", workers=2
    )
    assert [p.to_dict() for p in parallel.patterns] == [
        p.to_dict() for p in result.patterns
    ]
    print()
    print(
        f"process executor ({parallel.config['workers']} workers) found "
        "the same patterns"
    )

    # 7. Scaling past memory: `partitions=N` splits the transactions
    #    into N on-disk shards and mines SON-style — every shard is
    #    counted through its own backend and per-shard counts are
    #    merged into exact global supports, so the patterns are
    #    byte-identical to the in-memory run.  `memory_budget_mb`
    #    bounds how much per-shard counting state stays resident
    #    (evicted shards are re-read from disk).  On the command line
    #    the same knobs are `--partitions` / `--memory-budget-mb`.
    partitioned = mine_flipping_patterns(
        database, thresholds, partitions=3, memory_budget_mb=16
    )
    assert [p.to_dict() for p in partitioned.patterns] == [
        p.to_dict() for p in result.patterns
    ]
    print(
        f"partitioned run ({partitioned.config['partitions']} shards) "
        "found the same patterns"
    )

    # 8. Growing data: a partitioned miner accepts streaming deltas.
    #    `update(batch)` appends the new transactions to the shard
    #    store as a fresh shard, folds their counts into the cached
    #    global supports (delta shards are the only data re-counted)
    #    and returns patterns byte-identical to re-mining everything
    #    from scratch.  On the command line: `flipper-mine mine
    #    --append delta.basket` or the persistent `flipper-mine
    #    update --store DIR --append delta.basket`.
    from repro import FlipperMiner

    streaming = FlipperMiner(database, thresholds, partitions=2)
    streaming.mine()
    updated = streaming.update([["a11", "b11", "a21"], ["a11", "b11"]])
    everything = mine_flipping_patterns(
        TransactionDatabase(
            transactions + [["a11", "b11", "a21"], ["a11", "b11"]],
            taxonomy,
        ),
        thresholds,
    )
    assert [p.to_dict() for p in updated.patterns] == [
        p.to_dict() for p in everything.patterns
    ]
    info = updated.config["incremental"]
    print(
        f"delta update ({info['delta_rows']} rows, {info['mode']} mode, "
        f"{info['cache_hits']} cached supports) matches a full re-mine"
    )

    # 9. Serving: a PatternStore puts the mined patterns behind
    #    inverted indexes (leaf item, taxonomy node at any chain
    #    level, signature, height) plus sorted measure arrays, so
    #    queries resolve in O(log n) instead of scanning.  A Query
    #    composes filters + ordering + pagination; answers are
    #    exactly what a brute-force scan returns.  On the command
    #    line: `flipper-mine query --store DIR --items a11`, or
    #    `flipper-mine serve ... --port 8787` to put the same store
    #    behind a JSON HTTP API (GET /patterns, POST /update).
    from repro.serve import PatternStore, Query, QueryEngine, linear_scan

    store = PatternStore.build(result)
    engine = QueryEngine(store)
    query = Query(contains_items=("a11",), sort_by="min_gap", limit=5)
    answer = engine.execute(query)
    assert answer.ids == linear_scan(store, query).ids
    print()
    print(
        f"pattern store v{store.version} serves {answer.total} "
        f"match(es) for items=a11 via plan: {answer.plan.describe()}"
    )
    # updates re-feed the store; only changed patterns reindex (the
    # next immutable snapshot is built copy-on-write and published
    # by one atomic reference swap), the version bumps, and
    # cached/paginating readers fail loudly instead of seeing a mix
    # of two generations
    diff = store.apply_result(updated)
    print(
        f"after the delta: store v{store.version} "
        f"(+{diff['added']} ~{diff['changed']} -{diff['removed']})"
    )

    # 9b. The HTTP API is versioned under /v1 — served identically by
    #     the threaded server (`flipper-mine serve`) and the asyncio
    #     front end (`flipper-mine serve --async`, which adds a
    #     bounded update queue, a byte-level response cache, and
    #     `--workers N` SO_REUSEPORT replicas).  PatternAPI is the
    #     route layer both share; driving it directly shows the
    #     exact wire contract without a socket:
    #
    #       GET  /v1/patterns        query params: items, under,
    #            signature, min/max_height, min/max_corr(elation),
    #            min/max_support, sort, order, limit, offset —
    #            plus cursor (opaque continuation) and
    #            expect_version (409 if the store moved)
    #       GET  /v1/patterns/{id}   one pattern or a 404 envelope
    #       GET  /v1/stats           store/cache/server counters
    #       GET  /v1/healthz         status, store_version, queue
    #       POST /v1/update          {"transactions": [[item, ...]]}
    #
    #     Every 4xx/5xx is {"error": {"code", "message", "detail"}};
    #     unknown query params and body fields are loud 400s.  The
    #     unprefixed legacy routes still answer, with a
    #     `Deprecation: true` header.  Responses carry an ETag keyed
    #     on the snapshot version (If-None-Match => 304), and page
    #     cursors pin the version: a mid-walk update answers 409
    #     stale_cursor rather than silently skipping patterns.
    import json

    from repro.serve import PatternAPI

    api = PatternAPI(QueryEngine(store))
    page = json.loads(
        api.dispatch("GET", "/v1/patterns?sort=support&limit=1").encode()
    )
    assert page["store_version"] == store.version
    error = json.loads(
        api.dispatch("GET", "/v1/patterns/no-such-id").encode()
    )["error"]
    assert error["code"] == "not_found"
    print(
        f"/v1/patterns answers {page['count']}/{page['total']} "
        f"pattern(s); next_cursor={page.get('next_cursor', '-')!s}"
    )

    # 10. Approximate mining: `sample_rate=` screens a sample of the
    #     data under thresholds relaxed by Hoeffding/Chernoff bounds
    #     at the chosen confidence, then exactly re-counts the
    #     surviving candidate chains — so reported patterns always
    #     carry exact supports and correlations, and the only
    #     residual risk (probability <= 1 - confidence) is a *miss*,
    #     never a fabrication.  On ten transactions the sample is
    #     most of the data and the bounds are wide; at production
    #     sizes the same call mines a fraction of the store (see
    #     `python -m repro bench approx` and `flipper-mine explain
    #     --approx` for the bound math).
    approximate = mine_flipping_patterns(
        database,
        thresholds,
        sample_rate=0.8,
        confidence=0.9,
        sample_seed=1,
    )
    exact_set = {tuple(p.leaf_names) for p in result.patterns}
    approx_set = {tuple(p.leaf_names) for p in approximate.patterns}
    assert approx_set <= exact_set  # verified ⇒ never a false pattern
    info = approximate.config["approx"]
    print()
    print(
        f"approximate mine: {info['n_sample']}/{info['n_total']} rows "
        f"screened, {info['n_candidates']} candidate(s) -> "
        f"{info['n_verified']} exact-verified "
        f"(support margin ±{info['epsilon_support']:.3f})"
    )

    # 11. Sliding windows + flip lifecycle events: `window_shards=W`
    #     keeps only the newest W shards alive.  Each update appends
    #     the delta as a fresh shard, retires whatever fell out of
    #     the window — the survivor manifest commits atomically and
    #     the retired shards' cached counts are *subtracted exactly*,
    #     so the result is byte-identical to a cold mine of only the
    #     in-window rows (crash leftovers are swept by `flipper-mine
    #     store gc`).  Feeding each result to the PatternStore diffs
    #     the generations into flip_started / flip_stopped /
    #     flip_level_changed events, which `GET /v1/events?
    #     since_version=N&timeout=S` long-polls on both servers —
    #     versions in the payload are real store generations, so
    #     resuming from `next_since` never misses a transition.
    from repro.engine.incremental import IncrementalMiner

    windowed = IncrementalMiner(
        TransactionDatabase(transactions, taxonomy),
        thresholds,
        partitions=2,
        window_shards=2,
    )
    live = PatternStore.build(windowed.mine())
    since = live.version
    # a delta with no a11/b11 co-occurrence slides the window off
    # the flipping pattern's supporting rows
    slid = windowed.update([["a12", "b21"], ["a22", "b12"]] * 5)
    live.apply_result(slid)
    events, truncated = live.events_since(since)
    info = slid.config["incremental"]
    assert info["mode"] == "windowed"
    assert windowed.store.n_shards == 2  # the window bound held
    assert not truncated
    print()
    print(
        f"windowed slide: retired {info['retired_shards']} shard(s) "
        f"({info['retired_rows']} rows), "
        f"{len(events)} flip event(s): "
        f"{[event.type for event in events]}"
    )


# The __main__ guard is the standard multiprocessing requirement: under
# the spawn start method the process executor's workers re-import this
# script, and nothing here may run again when they do.
if __name__ == "__main__":
    main()
