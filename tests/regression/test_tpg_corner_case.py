"""The documented TPG over-pruning corner case (DESIGN.md §4).

Theorem 3's premise — "all itemsets in Q(h,k) and Q(h+1,k) are
non-positive" — is verified by the algorithm over *counted* itemsets.
After flipping-based pruning, a cell need not contain every frequent
itemset of its (h,k): a positive frequent itemset whose own chain is
broken is invisible to the check, and the Theorem-1 induction that
justifies the cut no longer strictly applies.

This module constructs the minimal instance where that matters:

* every level-1 *pair* sits in the dead zone between epsilon and
  gamma (unlabeled), so no level-2 pair is ever counted and TPG fires
  at k = 2;
* yet the level-1 *triple* {A,B,C} is negative and its level-2
  refinement {a,b,c} is positive — a genuine flipping pattern at
  k = 3 that TPG's column cap prunes away.

The test pins the exact behaviour: the oracle, BASIC and
flipping-only all find the pattern; configurations with TPG miss it.
This is a faithful reproduction of Algorithm 1 as published, recorded
as a finding, not fixed silently.
"""

from __future__ import annotations

import pytest

from repro import (
    PruningConfig,
    Taxonomy,
    Thresholds,
    TransactionDatabase,
    mine_flipping_bruteforce,
    mine_flipping_patterns,
)

GAMMA = 0.6
# 0.25 leaves float headroom: the level-1 triple's Kulc is exactly
# 0.2 in real arithmetic but 0.2 + 4e-17 in doubles.
EPSILON = 0.25


@pytest.fixture(scope="module")
def corner_db() -> TransactionDatabase:
    taxonomy = Taxonomy.from_dict(
        {
            "A": ["a", "a2"],
            "B": ["b", "b2"],
            "C": ["c", "c2"],
        }
    )
    transactions = (
        [["a", "b", "c"]] * 2
        + [["a2", "b2"], ["a2", "c2"], ["b2", "c2"]]
        + [["a2"]] * 6
        + [["b2"]] * 6
        + [["c2"]] * 6
    )
    return TransactionDatabase(transactions, taxonomy)


@pytest.fixture(scope="module")
def thresholds() -> Thresholds:
    return Thresholds(gamma=GAMMA, epsilon=EPSILON, min_support=1)


class TestInstanceArithmetic:
    """Pin the counts the construction relies on."""

    def test_level1_pairs_in_dead_zone(self, corner_db):
        from repro.data import VerticalIndex

        index = VerticalIndex(corner_db)
        tax = corner_db.taxonomy
        ids = {name: tax.node_by_name(name).node_id for name in "ABC"}
        for pair in (("A", "B"), ("A", "C"), ("B", "C")):
            support = index.support(1, tuple(sorted(ids[p] for p in pair)))
            singles = [index.support_of_node(1, ids[p]) for p in pair]
            kulc = support * (1 / singles[0] + 1 / singles[1]) / 2
            assert EPSILON < kulc < GAMMA, (pair, kulc)

    def test_level1_triple_negative(self, corner_db):
        from repro.data import VerticalIndex

        index = VerticalIndex(corner_db)
        tax = corner_db.taxonomy
        triple = tuple(
            sorted(tax.node_by_name(name).node_id for name in "ABC")
        )
        support = index.support(1, triple)
        kulc = support * sum(
            1 / index.support_of_node(1, node) for node in triple
        ) / 3
        assert support == 2
        assert kulc <= EPSILON

    def test_level2_triple_positive(self, corner_db):
        from repro.data import VerticalIndex

        index = VerticalIndex(corner_db)
        tax = corner_db.taxonomy
        triple = tuple(
            sorted(tax.node_by_name(name).node_id for name in "abc")
        )
        assert index.support(2, triple) == 2
        # all three items have support 2 -> Kulc = 1.0
        for node in triple:
            assert index.support_of_node(2, node) == 2


class TestDivergence:
    def test_oracle_finds_the_pattern(self, corner_db, thresholds):
        patterns = mine_flipping_bruteforce(corner_db, thresholds)
        assert [p.leaf_names for p in patterns] == [("a", "b", "c")]
        assert patterns[0].signature == "-+"

    def test_basic_finds_the_pattern(self, corner_db, thresholds):
        result = mine_flipping_patterns(
            corner_db, thresholds, pruning=PruningConfig.basic()
        )
        assert [p.leaf_names for p in result.patterns] == [("a", "b", "c")]

    def test_flipping_only_finds_the_pattern(self, corner_db, thresholds):
        result = mine_flipping_patterns(
            corner_db, thresholds, pruning=PruningConfig.flipping_only()
        )
        assert [p.leaf_names for p in result.patterns] == [("a", "b", "c")]

    def test_tpg_misses_the_pattern_as_published(self, corner_db, thresholds):
        """Algorithm 1 as published: TPG fires at k=2 (both top cells
        have no positive) and prunes the k=3 column where the pattern
        lives.  If this test ever starts finding the pattern, the
        implementation has drifted from the paper — update DESIGN.md
        accordingly."""
        result = mine_flipping_patterns(
            corner_db, thresholds, pruning=PruningConfig.flipping_tpg()
        )
        assert result.patterns == []
        assert result.stats.tpg_events == [(1, 2)]

    def test_full_flipper_inherits_the_miss(self, corner_db, thresholds):
        result = mine_flipping_patterns(
            corner_db, thresholds, pruning=PruningConfig.full()
        )
        assert result.patterns == []

    def test_soundness_never_violated(self, corner_db, thresholds):
        """Over-pruning may lose patterns but must never invent them."""
        oracle = {
            p.leaf_names
            for p in mine_flipping_bruteforce(corner_db, thresholds)
        }
        for config in PruningConfig.ladder():
            result = mine_flipping_patterns(
                corner_db, thresholds, pruning=config
            )
            assert {p.leaf_names for p in result.patterns} <= oracle
