"""Round-trip tests for mining-result serialization."""

from __future__ import annotations

import json

import pytest

from repro import mine_flipping_patterns
from repro.core.serialize import (
    FORMAT_NAME,
    FORMAT_VERSION,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.errors import DataError


@pytest.fixture
def toy_result(example3_db, example3_thresholds):
    return mine_flipping_patterns(example3_db, example3_thresholds)


class TestRoundTrip:
    def test_patterns_survive_exactly(self, toy_result, tmp_path):
        path = tmp_path / "run.json"
        save_result(toy_result, path)
        loaded = load_result(path)
        assert loaded.patterns == toy_result.patterns

    def test_stats_survive(self, toy_result, tmp_path):
        path = tmp_path / "run.json"
        save_result(toy_result, path)
        loaded = load_result(path)
        original = toy_result.stats
        assert loaded.stats.method == original.method
        assert loaded.stats.measure == original.measure
        assert loaded.stats.elapsed_seconds == original.elapsed_seconds
        assert loaded.stats.db_scans == original.db_scans
        assert loaded.stats.stored_entries == original.stored_entries
        assert loaded.stats.max_cell_entries == original.max_cell_entries
        assert loaded.stats.cells == original.cells
        assert loaded.stats.tpg_events == original.tpg_events
        assert loaded.stats.sibp_bans == original.sibp_bans

    def test_config_survives(self, toy_result, tmp_path):
        path = tmp_path / "run.json"
        save_result(toy_result, path)
        assert load_result(path).config == toy_result.config

    def test_dict_round_trip_without_files(self, toy_result):
        rebuilt = result_from_dict(result_to_dict(toy_result))
        assert rebuilt.patterns == toy_result.patterns

    def test_double_round_trip_stable(self, toy_result):
        once = result_to_dict(toy_result)
        twice = result_to_dict(result_from_dict(once))
        assert once == twice


class TestEnvelope:
    def test_format_markers_present(self, toy_result):
        raw = result_to_dict(toy_result)
        assert raw["format"] == FORMAT_NAME
        assert raw["version"] == FORMAT_VERSION

    def test_file_is_plain_json(self, toy_result, tmp_path):
        path = tmp_path / "run.json"
        save_result(toy_result, path)
        raw = json.loads(path.read_text())
        assert raw["format"] == FORMAT_NAME


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError, match="no such result"):
            load_result(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(DataError, match="not valid JSON"):
            load_result(path)

    def test_non_object_document(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(DataError, match="result object"):
            load_result(path)

    def test_wrong_format_name(self, toy_result):
        raw = result_to_dict(toy_result)
        raw["format"] = "something-else"
        with pytest.raises(DataError, match="not a"):
            result_from_dict(raw)

    def test_future_version_rejected(self, toy_result):
        raw = result_to_dict(toy_result)
        raw["version"] = FORMAT_VERSION + 1
        with pytest.raises(DataError, match="unsupported format version"):
            result_from_dict(raw)

    def test_unknown_label_rejected(self, toy_result):
        raw = result_to_dict(toy_result)
        raw["patterns"][0][0]["label"] = "sideways"
        with pytest.raises(DataError, match="unknown label"):
            result_from_dict(raw)

    def test_missing_chain_key_reported(self, toy_result):
        raw = result_to_dict(toy_result)
        del raw["patterns"][0][0]["support"]
        with pytest.raises(DataError, match="missing key"):
            result_from_dict(raw)

    def test_corrupt_stats_totals_detected(self, toy_result):
        raw = result_to_dict(toy_result)
        raw["stats"]["stored_entries"] += 7
        with pytest.raises(DataError, match="corrupt stats"):
            result_from_dict(raw)


class TestAtomicSave:
    def test_save_leaves_no_temp_droppings(self, toy_result, tmp_path):
        save_result(toy_result, tmp_path / "run.json")
        assert [p.name for p in tmp_path.iterdir()] == ["run.json"]

    def test_crash_mid_save_preserves_old_archive(
        self, toy_result, tmp_path, monkeypatch
    ):
        """A failure before the final os.replace must leave the
        previous complete archive untouched and clean up its temp."""
        import repro.core.atomicio as atomicio

        path = tmp_path / "run.json"
        save_result(toy_result, path)
        before = path.read_text()

        def crash(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(atomicio.os, "replace", crash)
        with pytest.raises(OSError, match="disk full"):
            save_result(toy_result, path)
        monkeypatch.undo()
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["run.json"]
        # and the preserved archive still loads
        assert len(load_result(path).patterns) == len(toy_result.patterns)

    def test_overwrite_is_all_or_nothing(self, toy_result, tmp_path):
        path = tmp_path / "run.json"
        save_result(toy_result, path)
        save_result(toy_result, path)
        assert len(load_result(path).patterns) == len(toy_result.patterns)


class TestVersionMessages:
    def test_future_version_names_both_versions(self, toy_result):
        raw = result_to_dict(toy_result)
        raw["version"] = FORMAT_VERSION + 1
        with pytest.raises(DataError) as info:
            result_from_dict(raw)
        message = str(info.value)
        assert str(FORMAT_VERSION + 1) in message
        assert str(FORMAT_VERSION) in message
        assert "newer" in message

    def test_older_unknown_version_still_rejected(self, toy_result):
        raw = result_to_dict(toy_result)
        raw["version"] = 0
        with pytest.raises(DataError, match="unsupported format version"):
            result_from_dict(raw)

    def test_load_result_reports_offending_path(self, toy_result, tmp_path):
        path = tmp_path / "future.json"
        raw = result_to_dict(toy_result)
        raw["version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(raw))
        with pytest.raises(DataError) as info:
            load_result(path)
        assert "future.json" in str(info.value)
        assert "unsupported format version" in str(info.value)
