"""MOVIES dataset simulator (the paper's motivating Example 1).

The paper opens with the MovieLens rating corpus: each user is a
transaction holding the movies they ranked 4+, the taxonomy is the
two-level genre hierarchy, and the motivating flip (Figs. 1-2a) is

* *romance* and *western* negatively correlated as genres, while
* *The Big Country (1958)* (romance) and *High Noon (1952)*
  (western) are strongly favored together.

MovieLens is a public download but not redistributable inside this
repository, so this module rebuilds the example's structure: a
two-level taxonomy of 8 genres, the two film titles the paper names
(the remaining catalog is synthetic), the published romance/western
flip planted as a ``-+`` chain, and the prose claim "users who like
action movies also like adventure movies" planted as genre-level
ground truth with a ``+-`` counter-pair on top.

``scale=1.0`` yields roughly the MovieLens-1M user count (~6,000
transactions).
"""

from __future__ import annotations

import random

from repro.core.thresholds import Thresholds
from repro.data.database import TransactionDatabase
from repro.datasets.planted import BlockPlan
from repro.taxonomy.tree import Taxonomy

__all__ = [
    "movies_taxonomy",
    "generate_movies",
    "MOVIES_THRESHOLDS",
    "MOVIES_PLANTED",
]

#: Thresholds used by the example and the dataset tests.
MOVIES_THRESHOLDS = Thresholds(
    gamma=0.30, epsilon=0.15, min_support=[0.002, 0.0005]
)

#: The planted chains: (movie pair) -> signature (level 1, level 2).
MOVIES_PLANTED: list[tuple[tuple[str, str], str]] = [
    # Fig. 2(a): genres negative, the two classics positive
    (("the big country (1958)", "high noon (1952)"), "-+"),
    # Example 1 prose inverted at the leaves: action/adventure genres
    # co-favored, this particular pair almost never both liked
    (("midnight pursuit", "the coral map"), "+-"),
]

_CATALOG: dict[str, list[str]] = {
    "romance": [
        "the big country (1958)",
        "a farewell to arms (1932)",
        "letters at dusk",
        "harbor lights",
    ],
    "western": [
        "high noon (1952)",
        "my darling clementine (1946)",
        "dry river",
        "the long mesa",
    ],
    "action": [
        "midnight pursuit",
        "steel convoy",
        "the seventh round",
        "falling glass",
    ],
    "adventure": [
        "the coral map",
        "expedition north",
        "river of mirrors",
        "the silk road kite",
    ],
    "comedy": [
        "the borrowed tuxedo",
        "two left shoes",
        "a minor inconvenience",
        "the neighbor's parrot",
    ],
    "drama": [
        "the glass orchard",
        "winter ledger",
        "the quiet floor",
        "paper lanterns",
    ],
    "thriller": [
        "the basement window",
        "wrong number",
        "the archivist",
        "nightshift",
    ],
    "documentary": [
        "salt and wind",
        "the last tram",
        "fieldnotes",
        "city of cranes",
    ],
}


def movies_taxonomy() -> Taxonomy:
    """The two-level genre hierarchy (8 genres, 32 films)."""
    return Taxonomy.from_dict(
        {genre: list(films) for genre, films in _CATALOG.items()}
    )


def _plant_negative_genres_positive_movies(
    plan: BlockPlan,
    movie_x: str,
    movie_y: str,
    genre_x: str,
    genre_y: str,
    base: int,
) -> None:
    """The Fig. 2(a) shape: heavy single-genre fanbases keep the two
    genres apart; a devoted joint audience links the two films."""
    fans_x = [f for f in _CATALOG[genre_x] if f != movie_x][:2]
    fans_y = [f for f in _CATALOG[genre_y] if f != movie_y][:2]
    plan.add([movie_x, movie_y], 3 * base)     # the crossover audience
    plan.add([movie_x], base)
    plan.add([movie_y], base)
    plan.add(fans_x, 45 * base)                # romance-only viewers
    plan.add(fans_y, 45 * base)                # western-only viewers


def _plant_positive_genres_negative_movies(
    plan: BlockPlan,
    movie_x: str,
    movie_y: str,
    genre_x: str,
    genre_y: str,
    base: int,
) -> None:
    """Example 1's action/adventure claim with a leaf-level inversion:
    the genres are co-favored through *other* titles, while this
    particular pair shares almost no audience."""
    other_x = next(f for f in _CATALOG[genre_x] if f != movie_x)
    other_y = next(f for f in _CATALOG[genre_y] if f != movie_y)
    # the joint audience must stay above the bottom-level theta
    # (0.0005 * N ~ 0.9 * base) yet far below the solo fanbases
    joint = max(2, round(0.9 * base))
    solo = max(10 * base, 8 * joint)
    # the co-favoring majority must outweigh the genre-only noise
    # viewers (~n_users/8 per genre = ~100*base) to keep the genre
    # pair above gamma
    plan.add([other_x, other_y], 100 * base)
    plan.add([movie_x, movie_y], joint)        # vanishing joint audience
    plan.add([movie_x], solo)
    plan.add([movie_y], solo)


def _noise_users(
    plan: BlockPlan,
    rng: random.Random,
    n_users: int,
    protected: set[str],
) -> None:
    """Background viewers: favorites drawn from one genre, sometimes
    two unrelated ones; the planted titles are excluded so noise
    cannot erode the planted correlations."""
    pools = {
        genre: [film for film in films if film not in protected]
        for genre, films in _CATALOG.items()
    }
    genres = sorted(pools)
    for _ in range(n_users):
        favorites = []
        primary = rng.choice(genres)
        favorites.extend(
            rng.sample(
                pools[primary], rng.randint(1, min(3, len(pools[primary])))
            )
        )
        if rng.random() < 0.25:
            secondary = rng.choice([g for g in genres if g != primary])
            favorites.append(rng.choice(pools[secondary]))
        plan.add(favorites, 1)


def generate_movies(scale: float = 1.0, seed: int = 9) -> TransactionDatabase:
    """Generate the simulated MOVIES database.

    ``scale=1.0`` yields ~6,000 users (MovieLens-1M-like);
    block counts and noise scale together so the planted signatures
    hold at any scale.
    """
    taxonomy = movies_taxonomy()
    rng = random.Random(seed)
    base = max(1, round(6 * scale))
    plan = BlockPlan()

    (pair_a, _sig_a), (pair_b, _sig_b) = MOVIES_PLANTED
    _plant_negative_genres_positive_movies(
        plan, pair_a[0], pair_a[1], "romance", "western", base
    )
    _plant_positive_genres_negative_movies(
        plan, pair_b[0], pair_b[1], "action", "adventure", base
    )
    protected = {name for pair, _sig in MOVIES_PLANTED for name in pair}
    _noise_users(plan, rng, round(5_000 * scale), protected)
    transactions = plan.materialize(rng)
    return TransactionDatabase(transactions, taxonomy)
