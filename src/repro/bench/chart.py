"""ASCII charts for the bench reports.

The paper's Figures 8 and 9 are line/bar charts; the bench harness
reports their data as series tables plus — via this module — a
terminal rendering that preserves the visual claim (who is on top,
where lines cross) without any plotting dependency.

Values spanning orders of magnitude (candidate counts, seconds across
a pruning ladder) render on a log scale by default.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bench.harness import SweepResult

__all__ = ["ascii_chart", "sweep_chart"]

# "*" is reserved for overlapping points
_MARKERS = "ox+#@%&="


def _scale(value: float, lo: float, hi: float, log: bool) -> float:
    """Map a value to [0, 1] over the (possibly log) axis range."""
    if hi <= lo:
        return 0.5
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    return (value - lo) / (hi - lo)


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[object],
    height: int = 12,
    log: bool | None = None,
    title: str = "",
) -> str:
    """Render named series as a character chart.

    Parameters
    ----------
    series:
        name -> values (one per x position; all equal length).
    x_labels:
        Labels of the x positions.
    height:
        Chart rows.
    log:
        Log-scale the y axis; default: automatic (on when the data
        spans more than two decades).
    title:
        Optional heading line.
    """
    if not series:
        raise ConfigError("ascii_chart needs at least one series")
    lengths = {len(values) for values in series.values()}
    if lengths != {len(x_labels)}:
        raise ConfigError(
            f"series lengths {sorted(lengths)} do not match "
            f"{len(x_labels)} x labels"
        )
    if height < 3:
        raise ConfigError(f"height must be >= 3, got {height}")
    everything = [v for values in series.values() for v in values]
    positives = [v for v in everything if v > 0]
    lo = min(positives) if positives else 1.0
    hi = max(everything) if everything else 1.0
    if log is None:
        log = bool(positives) and hi / max(lo, 1e-12) > 100.0
    if log:
        everything = positives  # zeros sit on the floor row

    # grid[row][col]: row 0 is the top
    n_cols = len(x_labels)
    col_width = max(8, max(len(str(label)) for label in x_labels) + 2)
    grid = [[" "] * (n_cols * col_width) for _ in range(height)]
    for index, (name, values) in enumerate(sorted(series.items())):
        marker = _MARKERS[index % len(_MARKERS)]
        for col, value in enumerate(values):
            if log and value <= 0:
                row = height - 1
            else:
                fraction = _scale(value, lo, hi, log)
                row = height - 1 - round(fraction * (height - 1))
            x = col * col_width + col_width // 2
            grid[row][x] = marker if grid[row][x] == " " else "*"

    lines = []
    if title:
        lines.append(title)
    axis = "log" if log else "linear"
    lines.append(f"y: {lo:.3g} .. {hi:.3g} ({axis})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * (n_cols * col_width))
    label_row = "".join(str(label).center(col_width) for label in x_labels)
    lines.append(" " + label_row)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(sorted(series))
    )
    lines.append(" " + legend + "   (*=overlap)")
    return "\n".join(lines)


def sweep_chart(
    result: SweepResult, metric: str = "seconds", **kwargs: object
) -> str:
    """Chart one metric of a :class:`~repro.bench.harness.SweepResult`."""
    series = {
        method: result.metric(method, metric) for method in result.methods
    }
    title = kwargs.pop("title", f"{metric} vs {result.parameter}")
    return ascii_chart(
        series, result.values, title=str(title), **kwargs  # type: ignore[arg-type]
    )
