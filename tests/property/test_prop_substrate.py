"""Property-based tests for the taxonomy/data substrates.

These pin the invariants the miner silently relies on: support
monotonicity under generalization, index/naive agreement, rebalancing
preserving item identity, and IO round-trips.

The taxonomy/transaction strategies live in ``tests/conftest.py``;
every property suite (this one, the cross-subsystem pipeline suite)
draws the same corpus shapes.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.data import VerticalIndex
from repro.taxonomy import Taxonomy, rebalance_with_copies

from tests.conftest import databases, taxonomy_trees


@given(databases())
@settings(max_examples=100, deadline=None)
def test_support_monotone_under_generalization(database):
    """sup(parent node) >= sup(node) at every level: generalizing can
    only gain transactions."""
    taxonomy = database.taxonomy
    index = VerticalIndex(database)
    for level in range(2, taxonomy.height + 1):
        for node_id in taxonomy.nodes_at_level(level):
            parent_id = taxonomy.parent_id(node_id)
            assert parent_id is not None
            assert index.support_of_node(
                level - 1, parent_id
            ) >= index.support_of_node(level, node_id)


@given(databases())
@settings(max_examples=100, deadline=None)
def test_index_agrees_with_definition(database):
    """Bitmap support == direct projection counting, all levels."""
    import itertools

    taxonomy = database.taxonomy
    index = VerticalIndex(database)
    for level in range(1, taxonomy.height + 1):
        projections = database.project_to_level(level)
        nodes = taxonomy.nodes_at_level(level)
        for pair in itertools.combinations(nodes[:6], 2):
            expected = sum(
                1 for projected in projections if set(pair) <= projected
            )
            assert index.support(level, pair) == expected


@given(taxonomy_trees())
@settings(max_examples=100, deadline=None)
def test_rebalancing_preserves_items(tree_and_leaves):
    tree, leaves = tree_and_leaves
    taxonomy = Taxonomy.from_dict(tree)
    balanced = rebalance_with_copies(taxonomy)
    assert balanced.is_balanced
    original_items = sorted(taxonomy.name_of(i) for i in taxonomy.item_ids)
    balanced_items = sorted(balanced.name_of(i) for i in balanced.item_ids)
    assert original_items == balanced_items


@given(taxonomy_trees())
@settings(max_examples=60, deadline=None)
def test_taxonomy_io_roundtrip(tree_and_leaves):
    import tempfile
    from pathlib import Path

    from repro.taxonomy import load_taxonomy, save_taxonomy, taxonomy_to_dict

    tree, _leaves = tree_and_leaves
    taxonomy = Taxonomy.from_dict(tree)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t.json"
        save_taxonomy(taxonomy, path)
        loaded = load_taxonomy(path)
    assert taxonomy_to_dict(loaded) == taxonomy_to_dict(taxonomy)


@given(databases())
@settings(max_examples=60, deadline=None)
def test_every_ancestor_chain_spans_all_levels(database):
    """After auto-rebalancing, every item maps to exactly one node at
    every level, and chains are consistent parent-child paths."""
    taxonomy = database.taxonomy
    maps = {
        level: taxonomy.item_ancestor_map(level)
        for level in range(1, taxonomy.height + 1)
    }
    for item in database.item_ids:
        chain = [maps[level][item] for level in sorted(maps)]
        for upper, lower in zip(chain, chain[1:]):
            assert taxonomy.parent_id(lower) == upper
