"""Benchmark parameter profiles from the paper's evaluation.

* :data:`MINSUP_PROFILES` — Table 3's ten minimum-support profiles
  thr1..thr10 (per-level fractions, level 1 first).
* :data:`CORR_PROFILES` — Figure 8(d)'s seven (gamma, epsilon)
  profiles.
* :func:`bench_config` — the paper's synthetic defaults scaled down
  to a pure-Python-friendly size (the scale is part of every bench
  report; see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
import os

from repro.core.thresholds import Thresholds
from repro.datasets.synthetic import SyntheticConfig

__all__ = [
    "MINSUP_PROFILES",
    "CORR_PROFILES",
    "DEFAULT_GAMMA",
    "DEFAULT_EPSILON",
    "DEFAULT_MINSUP",
    "bench_config",
    "bench_scale",
    "thresholds_for_profile",
    "width_scaled_thresholds",
]

#: Table 3 of the paper, verbatim: (theta1, theta2, theta3, theta4).
MINSUP_PROFILES: dict[str, tuple[float, float, float, float]] = {
    "thr1": (0.05, 0.05, 0.05, 0.05),
    "thr2": (0.05, 0.001, 0.0005, 0.0001),
    "thr3": (0.01, 0.001, 0.0005, 0.0001),
    "thr4": (0.01, 0.0005, 0.0005, 0.0001),
    "thr5": (0.01, 0.0005, 0.0001, 0.0001),
    "thr6": (0.01, 0.0005, 0.0001, 0.00005),
    "thr7": (0.001, 0.0005, 0.0001, 0.00005),
    "thr8": (0.001, 0.0001, 0.0001, 0.00005),
    "thr9": (0.001, 0.0001, 0.00006, 0.00005),
    "thr10": (0.001, 0.0001, 0.00006, 0.00003),
}

#: Figure 8(d): the (gamma, epsilon) sequence swept by the paper.
CORR_PROFILES: list[tuple[float, float]] = [
    (0.2, 0.1),
    (0.3, 0.1),
    (0.4, 0.1),
    (0.5, 0.1),
    (0.6, 0.1),
    (0.6, 0.3),
    (0.6, 0.5),
]

#: Default correlation thresholds of the synthetic experiments.
DEFAULT_GAMMA = 0.3
DEFAULT_EPSILON = 0.1

#: Default minimum-support profile of the synthetic experiments
#: (paper Section 5.1: theta = 1%, 0.1%, 0.05%, 0.01%).
DEFAULT_MINSUP: tuple[float, float, float, float] = (
    0.01,
    0.001,
    0.0005,
    0.0001,
)


def bench_scale() -> float:
    """Global bench scale factor.

    ``REPRO_BENCH_SCALE=1.0`` reproduces the paper's dataset sizes
    (N = 100K synthetic); the default 0.025 (N = 2.5K) keeps the full
    pytest-benchmark run in CI-friendly time.  Relative method
    behaviour — the quantity the reproduction tracks — is stable
    across scales.
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.025"))


def bench_config(**overrides: object) -> SyntheticConfig:
    """The paper's synthetic defaults at the current bench scale."""
    scale = bench_scale()
    config = SyntheticConfig(
        n_transactions=max(200, round(100_000 * scale)),
        avg_width=5.0,
        n_items=1_000,
        height=4,
        n_roots=10,
        fanout=5,
        n_patterns=300,
    )
    return config.scaled(**overrides) if overrides else config


def thresholds_for_profile(
    profile: str | tuple[float, ...],
    gamma: float = DEFAULT_GAMMA,
    epsilon: float = DEFAULT_EPSILON,
    n_transactions: int | None = None,
) -> Thresholds:
    """Thresholds for a named Table-3 profile (or an explicit tuple).

    When ``n_transactions`` is given, fractions are converted to
    absolute counts with a floor of 2 transactions.  At the paper's
    sizes the floor never binds (0.00003 x 100K = 3); at scaled-down
    bench sizes it prevents the degenerate minimum-support-1 regime
    where *every subset of every transaction* is frequent and the
    BASIC baseline enumerates power sets — a pathology of scaling,
    not of the paper's experiment.
    """
    if isinstance(profile, str):
        fractions = MINSUP_PROFILES[profile]
    else:
        fractions = tuple(profile)
    if n_transactions is None:
        return Thresholds(
            gamma=gamma, epsilon=epsilon, min_support=list(fractions)
        )
    counts = [
        max(2, math.ceil(fraction * n_transactions)) for fraction in fractions
    ]
    return Thresholds(gamma=gamma, epsilon=epsilon, min_support=counts)


def width_scaled_thresholds(
    width: float,
    n_transactions: int,
    base_width: float = 5.0,
    profile: tuple[float, ...] = DEFAULT_MINSUP,
    gamma: float = DEFAULT_GAMMA,
    epsilon: float = DEFAULT_EPSILON,
) -> Thresholds:
    """Width-aware thresholds for the Fig. 8(c) density sweep.

    The expected support of a *noise* pair at a level with ``n`` nodes
    is ``N * (w/n)**2`` — quadratic in the transaction width ``w``.
    At the paper's size (N = 100K, theta4 = 10) the default profile
    sits just above that noise level across the sweep; at bench scale
    the same fractions floor at count 2 and dense workloads drown in
    degenerate "frequent" noise.  Scaling the absolute counts by
    ``(w / base_width)**2`` keeps the threshold-to-noise ratio of the
    paper's setup constant across widths — a correction for the
    scaled-down N, not a change to the experiment's design.
    """
    factor = (width / base_width) ** 2
    counts = [
        max(2, math.ceil(fraction * n_transactions * factor))
        for fraction in profile
    ]
    return Thresholds(gamma=gamma, epsilon=epsilon, min_support=counts)
