"""Association rules from frequent itemsets (Agrawal et al. [1]).

The classical two-phase pipeline: frequent itemsets first (any miner
— Apriori, FP-growth, Cumulate), then every split of each itemset
into antecedent → consequent whose confidence clears the threshold.
This is the machinery all of the paper's related work builds on, and
its cost profile (materialize everything, filter later) is exactly
what Flipper's direct mining avoids.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import MiningError
from repro.taxonomy.tree import Taxonomy

__all__ = ["AssociationRule", "generate_rules"]


@dataclass(frozen=True)
class AssociationRule:
    """One rule ``antecedent -> consequent`` with its statistics.

    ``support`` is the absolute transaction count of the union;
    ``confidence`` is ``sup(union) / sup(antecedent)``.
    """

    antecedent: tuple[int, ...]
    consequent: tuple[int, ...]
    support: int
    confidence: float

    @property
    def items(self) -> tuple[int, ...]:
        """The underlying itemset (antecedent ∪ consequent), sorted."""
        return tuple(sorted(self.antecedent + self.consequent))

    def render(self, taxonomy: Taxonomy) -> str:
        left = ", ".join(taxonomy.name_of(i) for i in self.antecedent)
        right = ", ".join(taxonomy.name_of(i) for i in self.consequent)
        return (
            f"{{{left}}} -> {{{right}}} "
            f"(sup={self.support}, conf={self.confidence:.3f})"
        )

    def __str__(self) -> str:
        return (
            f"{self.antecedent} -> {self.consequent} "
            f"(sup={self.support}, conf={self.confidence:.3f})"
        )


def generate_rules(
    frequent: Mapping[tuple[int, ...], int],
    min_confidence: float,
) -> list[AssociationRule]:
    """All rules above ``min_confidence`` from a frequent-itemset map.

    Parameters
    ----------
    frequent:
        Canonical itemset -> support.  Must be *downward closed*
        (every subset of a frequent itemset present) — which any
        complete miner's output is; a missing subset raises
        :class:`MiningError` since confidences would be undefined.
    min_confidence:
        In [0, 1].

    Notes
    -----
    Confidence is anti-monotone in the *consequent*: moving an item
    from antecedent to consequent can only lower it.  The classical
    optimization therefore grows consequents level-wise and stops
    expanding a consequent whose rule already failed; itemsets here
    are small (k rarely exceeds 5-6), so the straightforward
    enumeration over antecedent subsets stays cheap and obviously
    correct.
    """
    if not 0.0 <= min_confidence <= 1.0:
        raise MiningError(
            f"min_confidence must be in [0, 1], got {min_confidence}"
        )
    rules: list[AssociationRule] = []
    for itemset, support in frequent.items():
        if len(itemset) < 2:
            continue
        for split_size in range(1, len(itemset)):
            for antecedent in itertools.combinations(itemset, split_size):
                base = frequent.get(antecedent)
                if base is None:
                    raise MiningError(
                        f"frequent map is not downward closed: missing "
                        f"{antecedent} (subset of {itemset})"
                    )
                confidence = support / base
                if confidence >= min_confidence:
                    consequent = tuple(
                        item for item in itemset if item not in antecedent
                    )
                    rules.append(
                        AssociationRule(
                            antecedent=antecedent,
                            consequent=consequent,
                            support=support,
                            confidence=confidence,
                        )
                    )
    rules.sort(
        key=lambda r: (-r.confidence, -r.support, r.antecedent, r.consequent)
    )
    return rules
