"""The versioned HTTP route/wire layer shared by both servers.

:class:`PatternAPI` is the transport-agnostic core of the serving
tier: it turns a parsed HTTP request (method, target, body, a few
headers) into an :class:`ApiResponse` — status, JSON payload, extra
headers — or an :class:`UpdateIntent` for writes, without touching a
socket.  The threaded :class:`~repro.serve.server.PatternServer` and
the asyncio :class:`~repro.serve.aserver.AsyncPatternServer` both
dispatch through one shared instance, so the two surfaces cannot
drift.

**Routes.**  The current surface lives under ``/v1``:

* ``GET /v1/healthz`` — liveness, snapshot version, uptime, update
  queue depth, drain state;
* ``GET /v1/stats`` — store/index shape, cache counters, request
  counts;
* ``GET /v1/patterns`` — the query endpoint, with stable cursor
  pagination (``limit``/``cursor``) and conditional requests
  (``ETag`` / ``If-None-Match`` keyed on the snapshot version);
* ``GET /v1/patterns/{id}`` — one pattern by id;
* ``GET /v1/metrics`` — the metrics registry, in Prometheus text
  exposition format (``?format=json`` for the JSON rendering);
* ``GET /v1/events`` — flip lifecycle events
  (``flip_started``/``flip_stopped``/``flip_level_changed``) of
  generations newer than ``since_version``, long-polling up to
  ``timeout`` seconds for something to happen;
* ``POST /v1/update`` — feed a delta batch to the attached miner.

The legacy unprefixed routes (``/healthz``, ``/patterns``, …) remain
as deprecated aliases: same answers, plus a ``Deprecation: true``
response header.  Legacy ``/patterns`` keeps its volatile ``cached``
flag; ``/v1/patterns`` drops it so every ``/v1`` response body is a
pure function of ``(snapshot version, request target)`` — which is
what makes whole-response byte caching sound.

**Errors.**  Every 4xx/5xx, on both surfaces, is one uniform envelope::

    {"error": {"code": "...", "message": "...", "detail": {...}}}

Unknown query parameters, duplicated parameters and unknown body
fields are a loud 400 — a typoed filter silently matching everything
is the worst failure mode a serving API can have.

**Consistency.**  Each request pins one immutable
:class:`~repro.serve.store.StoreSnapshot` up front and is answered
entirely from it.  Pagination cursors encode the snapshot version
they started from and fail with 409 ``stale_cursor`` once a newer
generation is published — clients restart from page one rather than
silently straddling two generations.
"""

from __future__ import annotations

import base64
import binascii
import json
import logging
import threading
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigError, ReproError, ServeError
from repro.obs import catalog
from repro.obs.exposition import (
    CONTENT_TYPE_TEXT,
    render_json,
    render_text,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.query import Query, QueryEngine
from repro.serve.store import PatternStore, StoreSnapshot

__all__ = [
    "API_VERSION_PREFIX",
    "ApiError",
    "ApiResponse",
    "EventsIntent",
    "PatternAPI",
    "UpdateIntent",
    "decode_cursor",
    "encode_cursor",
    "error_payload",
    "query_from_params",
]

logger = logging.getLogger("repro.serve")

#: the current (only) API version prefix
API_VERSION_PREFIX = "/v1"

#: query-string parameter -> Query field (+ value parser)
_QUERY_PARAMS: dict[str, tuple[str, Any]] = {
    "items": ("contains_items", lambda v: tuple(
        part.strip() for part in v.split(",") if part.strip()
    )),
    "under": ("under_node", str),
    "signature": ("signature", str),
    "min_height": ("min_height", int),
    "max_height": ("max_height", int),
    "min_corr": ("min_correlation", float),
    "max_corr": ("max_correlation", float),
    "min_correlation": ("min_correlation", float),
    "max_correlation": ("max_correlation", float),
    "min_support": ("min_support", int),
    "max_support": ("max_support", int),
    "sort": ("sort_by", str),
    "order": ("descending", lambda v: _parse_order(v)),
    "limit": ("limit", int),
    "offset": ("offset", int),
}

#: parameters handled by the route layer before Query construction
_ROUTE_PARAMS = ("cursor", "expect_version")


def _parse_order(value: str) -> bool:
    if value not in ("asc", "desc"):
        raise ConfigError(f"order must be 'asc' or 'desc', got {value!r}")
    return value == "desc"


def query_from_params(params: dict[str, str]) -> Query:
    """Build a :class:`Query` from HTTP query-string parameters.

    Unknown parameters are rejected (a typoed filter silently
    matching everything is the worst failure mode a serving API can
    have).
    """
    kwargs: dict[str, Any] = {}
    for key, raw in params.items():
        spec = _QUERY_PARAMS.get(key)
        if spec is None:
            known = ", ".join(sorted(_QUERY_PARAMS) + list(_ROUTE_PARAMS))
            raise ConfigError(
                f"unknown query parameter {key!r} (known: {known})"
            )
        name, parse = spec
        try:
            kwargs[name] = parse(raw)
        except (TypeError, ValueError):
            raise ConfigError(
                f"bad value {raw!r} for query parameter {key!r}"
            ) from None
    return Query(**kwargs)


class ApiError(ReproError):
    """An HTTP-mapped failure with a machine-readable error code."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        detail: dict[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.detail = detail or {}


def error_payload(
    code: str, message: str, detail: dict[str, Any] | None = None
) -> dict[str, Any]:
    """The uniform error envelope used for every 4xx/5xx response."""
    return {
        "error": {
            "code": code,
            "message": message,
            "detail": detail or {},
        }
    }


@dataclass
class ApiResponse:
    """One fully-decided HTTP response, transport not included.

    ``payload is None`` means an empty body (the 304 case); otherwise
    the payload is JSON-encoded by :meth:`encode`.  Non-JSON routes
    (the Prometheus exposition) set ``body`` directly along with
    their ``content_type``; ``body`` wins over ``payload``.
    """

    status: int
    payload: Any | None
    headers: dict[str, str] = field(default_factory=dict)
    content_type: str = "application/json"
    body: bytes | None = None

    def encode(self) -> bytes:
        if self.body is not None:
            return self.body
        if self.payload is None:
            return b""
        return json.dumps(self.payload).encode("utf-8")


@dataclass
class UpdateIntent:
    """A validated ``POST .../update`` waiting for the writer path.

    Dispatch validates the request (routes, body shape, read-only
    state) but does **not** run the update — each server decides how
    writes are serialized (a plain lock for the threaded server, a
    bounded queue for the asyncio one) and then calls
    :meth:`PatternAPI.run_update`.
    """

    transactions: list[Any]
    versioned: bool  #: arrived via /v1 (vs. a legacy alias)


#: hard ceiling on one events long-poll (seconds)
MAX_EVENTS_TIMEOUT = 60.0


@dataclass
class EventsIntent:
    """A validated ``GET .../events`` waiting for the (possibly
    blocking) long-poll.

    Dispatch validates parameters but does **not** wait — each server
    decides where the blocking wait may run (inline in a handler
    thread for the threaded server, ``run_in_executor`` for the
    asyncio one, which must never block its event loop) and then
    calls :meth:`PatternAPI.run_events`.
    """

    since_version: int
    timeout: float
    limit: int | None
    versioned: bool


def encode_cursor(version: int, offset: int) -> str:
    """A stable, opaque pagination cursor: snapshot version + offset."""
    raw = json.dumps({"v": version, "o": offset}).encode("ascii")
    return base64.urlsafe_b64encode(raw).rstrip(b"=").decode("ascii")


def decode_cursor(cursor: str) -> tuple[int, int]:
    """Invert :func:`encode_cursor`; raises :class:`ApiError` (400)."""
    padded = cursor + "=" * (-len(cursor) % 4)
    try:
        raw = base64.urlsafe_b64decode(padded.encode("ascii"))
        doc = json.loads(raw.decode("ascii"))
        version, offset = doc["v"], doc["o"]
        if not isinstance(version, int) or not isinstance(offset, int):
            raise ValueError("cursor fields must be integers")
        if offset < 0:
            raise ValueError("cursor offset must be >= 0")
    except (
        ValueError,
        KeyError,
        TypeError,
        binascii.Error,
        UnicodeError,
    ) as exc:
        raise ApiError(
            400,
            "bad_cursor",
            f"malformed pagination cursor {cursor!r}",
            {"reason": str(exc)},
        ) from None
    return version, offset


#: body fields POST .../update accepts; anything else is a loud 400
_UPDATE_FIELDS = {"transactions"}


class PatternAPI:
    """Routes + wire formats over one engine; shared by both servers.

    Parameters
    ----------
    engine:
        The query engine (over a live :class:`PatternStore`).
    miner:
        Anything with ``update(transactions) -> MiningResult``;
        ``None`` makes the API read-only (updates answer 409).
    store_path:
        When set, the store is re-saved here after every successful
        update.
    queue_depth:
        Callable reporting the server's pending-update queue depth
        (the asyncio server's bounded queue; 0 for the threaded one).
    """

    def __init__(
        self,
        engine: QueryEngine,
        *,
        miner: Any | None = None,
        store_path: str | Path | None = None,
        queue_depth: Callable[[], int] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._engine = engine
        self._miner = miner
        self._store_path = Path(store_path) if store_path else None
        self._queue_depth = queue_depth or (lambda: 0)
        self._counter_lock = threading.Lock()
        self._started = time.monotonic()
        self._requests = 0
        self._updates = 0
        self._draining = False
        self._request_seq = 0
        #: default to the engine's registry, so one injection point
        #: (QueryEngine(..., registry=...)) isolates a whole server
        self.registry = (
            registry if registry is not None else engine.registry
        )
        self._m_requests = self.registry.counter(catalog.HTTP_REQUESTS)
        self._m_latency = self.registry.histogram(
            catalog.HTTP_REQUEST_SECONDS
        )
        self._m_sheds = self.registry.counter(catalog.HTTP_SHEDS)
        self._m_updates = self.registry.counter(catalog.UPDATES)
        self._m_uptime = self.registry.gauge(catalog.UPTIME_SECONDS)
        self._m_snap_version = self.registry.gauge(
            catalog.SNAPSHOT_VERSION
        )
        self._m_snap_age = self.registry.gauge(
            catalog.SNAPSHOT_AGE_SECONDS
        )
        self._m_snap_patterns = self.registry.gauge(
            catalog.SNAPSHOT_PATTERNS
        )
        self._m_queue_depth = self.registry.gauge(
            catalog.UPDATE_QUEUE_DEPTH
        )

    # ------------------------------------------------------------------
    # shared state the servers read
    # ------------------------------------------------------------------

    @property
    def engine(self) -> QueryEngine:
        return self._engine

    @property
    def store(self) -> PatternStore:
        store = self._engine.store
        assert isinstance(store, PatternStore)
        return store

    @property
    def read_only(self) -> bool:
        return self._miner is None

    def begin_drain(self) -> None:
        """Flip health to draining; requests are still answered."""
        self._draining = True

    # ------------------------------------------------------------------
    # request accounting (shared by both transports)
    # ------------------------------------------------------------------

    def now(self) -> float:
        """Request-timing clock; servers stamp request starts here so
        tests can freeze one clock for both transports."""
        return time.perf_counter()

    def route_template(self, target: str) -> str:
        """The bounded route label of one request target.

        Concrete pattern ids are folded into ``/patterns/{id}`` and
        unroutable paths into ``other`` — every label value is one of
        a small closed set, never a client-controlled string.
        """
        path = urlsplit(target).path.rstrip("/") or "/"
        if path == API_VERSION_PREFIX or path.startswith(
            API_VERSION_PREFIX + "/"
        ):
            path = path[len(API_VERSION_PREFIX) :] or "/"
        if path.startswith("/patterns/"):
            return "/patterns/{id}"
        if path in ("/healthz", "/stats", "/patterns", "/update",
                    "/metrics", "/events"):
            return path
        return "other"

    def log_request(
        self,
        method: str,
        target: str,
        status: int,
        started: float,
    ) -> None:
        """Meter and log one finished request (any transport).

        Feeds the per-route request counter and latency histogram,
        and emits exactly one structured JSON log line: route, status,
        latency, snapshot version and a per-API request id.
        """
        elapsed = max(0.0, self.now() - started)
        route = self.route_template(target)
        self._m_requests.inc(route=route, status=str(status))
        self._m_latency.observe(elapsed, route=route)
        with self._counter_lock:
            self._request_seq += 1
            request_id = self._request_seq
        logger.info(
            json.dumps(
                {
                    "event": "request",
                    "method": method,
                    "route": route,
                    "target": target,
                    "status": status,
                    "latency_ms": round(elapsed * 1000.0, 3),
                    "store_version": self.store.version,
                    "request_id": request_id,
                },
                sort_keys=True,
            )
        )

    def record_shed(self) -> None:
        """Count one load-shedding 503 (update queue full)."""
        self._m_sheds.inc()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def dispatch(
        self,
        method: str,
        target: str,
        body: bytes = b"",
        headers: Mapping[str, str] | None = None,
    ) -> ApiResponse | UpdateIntent | EventsIntent:
        """Answer one request (or hand back a validated intent the
        server runs where blocking is allowed).

        ``target`` is the raw request target (path plus query
        string); ``headers`` only needs the entries the API reads
        (``if-none-match``), lower-cased.  Never raises: every
        failure becomes an enveloped 4xx/5xx :class:`ApiResponse`.
        """
        with self._counter_lock:
            self._requests += 1
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        versioned = path == API_VERSION_PREFIX or path.startswith(
            API_VERSION_PREFIX + "/"
        )
        if versioned:
            path = path[len(API_VERSION_PREFIX) :] or "/"
        try:
            params = _single_valued(split.query)
            answer = self._route(
                method, path, params, body, headers or {}, versioned
            )
        except ApiError as exc:
            answer = ApiResponse(
                exc.status,
                error_payload(exc.code, str(exc), exc.detail),
            )
        except ServeError as exc:
            answer = ApiResponse(409, error_payload("conflict", str(exc)))
        except ReproError as exc:
            answer = ApiResponse(400, error_payload("bad_request", str(exc)))
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("unhandled error on %s %s", method, target)
            answer = ApiResponse(
                500,
                error_payload("internal", f"internal error: {exc}"),
            )
        if isinstance(answer, ApiResponse) and not versioned:
            answer.headers.setdefault("Deprecation", "true")
        return answer

    def _route(
        self,
        method: str,
        path: str,
        params: dict[str, str],
        body: bytes,
        headers: Mapping[str, str],
        versioned: bool,
    ) -> ApiResponse | UpdateIntent | EventsIntent:
        snap = self.store.snapshot()
        if method == "GET" and path == "/healthz":
            _forbid_params(params)
            return ApiResponse(200, self._healthz(snap))
        if method == "GET" and path == "/stats":
            _forbid_params(params)
            return ApiResponse(200, self._stats(snap))
        if method == "GET" and path == "/metrics":
            return self._metrics(snap, params)
        if method == "GET" and path == "/patterns":
            return self._patterns(snap, params, headers, versioned)
        if method == "GET" and path.startswith("/patterns/"):
            _forbid_params(params)
            return self._one(snap, path[len("/patterns/") :])
        if method == "GET" and path == "/events":
            return self._events_intent(params, versioned)
        if method == "POST" and path == "/update":
            _forbid_params(params)
            return self._update_intent(body, versioned)
        raise ApiError(
            404,
            "not_found",
            f"no route {method} {path}",
            {"method": method, "path": path},
        )

    # ------------------------------------------------------------------
    # read endpoints
    # ------------------------------------------------------------------

    def _refresh_gauges(self, snap: StoreSnapshot) -> None:
        """Bring the live gauges up to date (scrape/health time).

        Gauges are refreshed on read rather than continuously pushed:
        there is no background thread to leak, and a scrape always
        reports the instant it happened.
        """
        self._m_uptime.set(time.monotonic() - self._started)
        self._m_snap_version.set(snap.version)
        self._m_snap_patterns.set(len(snap))
        self._m_snap_age.set(self.store.snapshot_age_seconds)
        self._m_queue_depth.set(self._queue_depth())

    def _metrics(
        self, snap: StoreSnapshot, params: dict[str, str]
    ) -> ApiResponse:
        fmt = params.pop("format", "prometheus")
        _forbid_params(params)
        if fmt not in ("prometheus", "json"):
            raise ApiError(
                400,
                "bad_request",
                f"unknown metrics format {fmt!r} "
                "(known: prometheus, json)",
                {"format": fmt},
            )
        self._refresh_gauges(snap)
        if fmt == "json":
            return ApiResponse(200, render_json(self.registry))
        return ApiResponse(
            200,
            None,
            content_type=CONTENT_TYPE_TEXT,
            body=render_text(self.registry).encode("utf-8"),
        )

    def _healthz(self, snap: StoreSnapshot) -> dict[str, Any]:
        # Health reads the same registry series /v1/metrics exposes,
        # so the two surfaces cannot disagree about depth/age/uptime.
        self._refresh_gauges(snap)
        registry = self.registry
        return {
            "status": "draining" if self._draining else "ok",
            "store_version": snap.version,
            "n_patterns": len(snap),
            "uptime_seconds": registry.value(catalog.UPTIME_SECONDS),
            "snapshot_age_seconds": registry.value(
                catalog.SNAPSHOT_AGE_SECONDS
            ),
            "queue_depth": int(
                registry.value(catalog.UPDATE_QUEUE_DEPTH)
            ),
            "draining": self._draining,
        }

    def _stats(self, snap: StoreSnapshot) -> dict[str, Any]:
        with self._counter_lock:
            requests, updates = self._requests, self._updates
        return {
            "store": snap.stats(),
            "cache": self._engine.cache_info(),
            "server": {
                "uptime_seconds": time.monotonic() - self._started,
                "requests": requests,
                "updates": updates,
                "read_only": self.read_only,
            },
        }

    def _patterns(
        self,
        snap: StoreSnapshot,
        params: dict[str, str],
        headers: Mapping[str, str],
        versioned: bool,
    ) -> ApiResponse:
        expect_version = _pop_expect_version(params)
        cursor = params.pop("cursor", None) if versioned else None
        if cursor is not None:
            if "offset" in params:
                raise ApiError(
                    400,
                    "bad_request",
                    "cursor and offset are mutually exclusive",
                )
            cursor_version, offset = decode_cursor(cursor)
            if cursor_version != snap.version:
                raise ApiError(
                    409,
                    "stale_cursor",
                    f"cursor pinned store version {cursor_version}, "
                    f"store is at {snap.version}",
                    {
                        "cursor_version": cursor_version,
                        "store_version": snap.version,
                    },
                )
            params["offset"] = str(offset)
        query = query_from_params(params)
        etag = f'"patterns-v{snap.version}"'
        response_headers = {"ETag": etag} if versioned else {}
        if versioned and headers.get("if-none-match") == etag:
            return ApiResponse(304, None, response_headers)
        result = self._engine.execute(
            query, expect_version=expect_version, snapshot=snap
        )
        payload = result.to_dict()
        if versioned:
            if (
                query.limit is not None
                and query.offset + len(result.ids) < result.total
            ):
                payload["next_cursor"] = encode_cursor(
                    snap.version, query.offset + len(result.ids)
                )
        else:
            # the legacy surface predates byte caching and exposes
            # whether the query cache answered
            payload["cached"] = result.cached
        return ApiResponse(200, payload, response_headers)

    def _one(self, snap: StoreSnapshot, pid: str) -> ApiResponse:
        pattern = snap.get(pid)
        if pattern is None:
            raise ApiError(
                404,
                "not_found",
                f"no pattern with id {pid!r}",
                {"id": pid},
            )
        return ApiResponse(
            200,
            {
                "store_version": snap.version,
                "pattern": dict(pattern.to_dict(), id=pid),
            },
        )

    # ------------------------------------------------------------------
    # lifecycle events (the long-poll path)
    # ------------------------------------------------------------------

    def _events_intent(
        self, params: dict[str, str], versioned: bool
    ) -> EventsIntent:
        since_version = 0
        raw = params.pop("since_version", None)
        if raw is not None:
            try:
                since_version = int(raw)
            except ValueError:
                raise ApiError(
                    400,
                    "bad_request",
                    f"bad value {raw!r} for since_version",
                ) from None
            if since_version < 0:
                raise ApiError(
                    400,
                    "bad_request",
                    f"since_version must be >= 0, got {since_version}",
                )
        timeout = 0.0
        raw = params.pop("timeout", None)
        if raw is not None:
            try:
                timeout = float(raw)
            except ValueError:
                raise ApiError(
                    400,
                    "bad_request",
                    f"bad value {raw!r} for timeout",
                ) from None
            if not 0.0 <= timeout <= MAX_EVENTS_TIMEOUT:
                raise ApiError(
                    400,
                    "bad_request",
                    f"timeout must be in [0, {MAX_EVENTS_TIMEOUT:g}] "
                    f"seconds, got {timeout:g}",
                )
        limit: int | None = None
        raw = params.pop("limit", None)
        if raw is not None:
            try:
                limit = int(raw)
            except ValueError:
                raise ApiError(
                    400,
                    "bad_request",
                    f"bad value {raw!r} for limit",
                ) from None
            if limit < 1:
                raise ApiError(
                    400,
                    "bad_request",
                    f"limit must be >= 1, got {limit}",
                )
        _forbid_params(params)
        return EventsIntent(since_version, timeout, limit, versioned)

    def run_events(self, intent: EventsIntent) -> ApiResponse:
        """Serve one events long-poll (may block up to the intent's
        timeout — run it where blocking is allowed).  Never raises.
        """
        try:
            store = self.store
            if intent.timeout > 0:
                events, truncated = store.wait_for_events(
                    intent.since_version, intent.timeout, intent.limit
                )
            else:
                events, truncated = store.events_since(
                    intent.since_version, intent.limit
                )
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("events poll failed")
            return ApiResponse(
                500,
                error_payload("internal", f"internal error: {exc}"),
            )
        next_since = (
            events[-1].version if events else intent.since_version
        )
        response = ApiResponse(
            200,
            {
                "store_version": store.version,
                "since_version": intent.since_version,
                "next_since": next_since,
                "truncated": truncated,
                "events": [event.to_dict() for event in events],
            },
        )
        if not intent.versioned:
            response.headers.setdefault("Deprecation", "true")
        return response

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------

    def _update_intent(self, raw: bytes, versioned: bool) -> UpdateIntent:
        if self._miner is None:
            raise ApiError(
                409,
                "read_only",
                "server is read-only (started from a result archive; "
                "no incremental miner attached)",
            )
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ApiError(
                400,
                "bad_request",
                f"update body is not valid JSON: {exc}",
            ) from None
        if not isinstance(body, dict):
            raise ApiError(
                400,
                "bad_request",
                'update body must be {"transactions": [[item, ...], ...]}',
            )
        unknown = sorted(set(body) - _UPDATE_FIELDS)
        if unknown:
            raise ApiError(
                400,
                "bad_request",
                "unknown update body field(s): " + ", ".join(unknown),
                {"unknown": unknown, "known": sorted(_UPDATE_FIELDS)},
            )
        transactions = body.get("transactions")
        if not isinstance(transactions, list):
            raise ApiError(
                400,
                "bad_request",
                'update body must be {"transactions": [[item, ...], ...]}',
            )
        return UpdateIntent(transactions, versioned)

    def run_update(self, intent: UpdateIntent) -> ApiResponse:
        """Mine the delta, publish the next snapshot, persist it.

        The caller is responsible for serializing calls (the snapshot
        swap itself is atomic, but two concurrent miner updates would
        race on the miner's internal state).  Never raises.
        """
        try:
            result = self._miner.update(intent.transactions)
            diff = self.store.apply_result(result)
            if self._store_path is not None:
                self.store.save(self._store_path)
            with self._counter_lock:
                self._updates += 1
            self._m_updates.inc()
        except ApiError as exc:
            return ApiResponse(
                exc.status, error_payload(exc.code, str(exc), exc.detail)
            )
        except ServeError as exc:
            return ApiResponse(409, error_payload("conflict", str(exc)))
        except ReproError as exc:
            return ApiResponse(400, error_payload("bad_request", str(exc)))
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("update failed")
            return ApiResponse(
                500,
                error_payload("internal", f"internal error: {exc}"),
            )
        info = result.config.get("incremental", {})
        response = ApiResponse(
            200,
            {
                "store_version": diff["version"],
                "n_patterns": len(self.store),
                "mode": info.get("mode"),
                "delta_rows": info.get(
                    "delta_rows", len(intent.transactions)
                ),
                "reindexed": {
                    key: diff[key]
                    for key in ("added", "changed", "removed", "unchanged")
                },
            },
        )
        if not intent.versioned:
            response.headers.setdefault("Deprecation", "true")
        return response


def _single_valued(query_string: str) -> dict[str, str]:
    raw_params = parse_qs(query_string, keep_blank_values=True)
    repeated = sorted(
        key for key, values in raw_params.items() if len(values) > 1
    )
    if repeated:
        raise ConfigError(
            "duplicate query parameter(s): " + ", ".join(repeated)
        )
    return {key: values[0] for key, values in raw_params.items()}


def _forbid_params(params: dict[str, str]) -> None:
    if params:
        unknown = ", ".join(sorted(params))
        raise ApiError(
            400,
            "bad_request",
            f"unknown query parameter(s): {unknown}",
            {"unknown": sorted(params)},
        )


def _pop_expect_version(params: dict[str, str]) -> int | None:
    raw = params.pop("expect_version", None)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ApiError(
            400,
            "bad_request",
            f"bad value {raw!r} for expect_version",
        ) from None
