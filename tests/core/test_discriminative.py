"""Unit tests for repro.core.discriminative (future-work extension)."""

from __future__ import annotations

import pytest

from repro import Taxonomy, TransactionDatabase
from repro.core.discriminative import mine_discriminative
from repro.errors import ConfigError


@pytest.fixture
def split_db(grocery_taxonomy) -> TransactionDatabase:
    """A database where (cola, chips-like pair) correlates positively
    inside the sub-group (first 40 transactions) and negatively in the
    rest."""
    transactions = (
        [["cola", "soap"]] * 30          # subgroup: together
        + [["cola"], ["soap"]] * 5       # subgroup: a little alone
        + [["cola", "milk"]] * 30        # rest: cola without soap
        + [["soap", "apples"]] * 30      # rest: soap without cola
    )
    return TransactionDatabase(transactions, grocery_taxonomy)


SUBGROUP = list(range(40))


class TestMineDiscriminative:
    def test_finds_population_flip(self, split_db):
        patterns = mine_discriminative(
            split_db, SUBGROUP, gamma=0.5, epsilon=0.2
        )
        leaf_hits = [p for p in patterns if set(p.names) == {"cola", "soap"}]
        assert leaf_hits
        hit = leaf_hits[0]
        assert hit.subgroup.label.is_positive
        assert not hit.rest.label.is_positive

    def test_selector_predicate_equivalent(self, split_db):
        by_index = mine_discriminative(
            split_db, SUBGROUP, gamma=0.5, epsilon=0.2
        )
        # reconstruct the same split via a predicate on contents
        chosen = {split_db.transaction_names(i) for i in SUBGROUP}

        def predicate(names: tuple[str, ...]) -> bool:
            return names in chosen

        by_predicate = mine_discriminative(
            split_db, predicate, gamma=0.5, epsilon=0.2
        )
        assert [p.names for p in by_index] == [p.names for p in by_predicate]

    def test_sorted_by_gap(self, split_db):
        patterns = mine_discriminative(
            split_db, SUBGROUP, gamma=0.5, epsilon=0.2
        )
        gaps = [p.gap for p in patterns]
        assert gaps == sorted(gaps, reverse=True)

    def test_levels_filter(self, split_db):
        patterns = mine_discriminative(
            split_db, SUBGROUP, gamma=0.5, epsilon=0.2, levels=[1]
        )
        assert all(p.level == 1 for p in patterns)

    def test_describe_and_to_dict(self, split_db):
        patterns = mine_discriminative(
            split_db, SUBGROUP, gamma=0.5, epsilon=0.2
        )
        assert patterns
        text = patterns[0].describe()
        assert "subgroup" in text and "rest" in text
        data = patterns[0].to_dict()
        assert set(data) == {"level", "names", "gap", "subgroup", "rest"}


class TestValidation:
    def test_empty_side_rejected(self, split_db):
        with pytest.raises(ConfigError, match="non-empty"):
            mine_discriminative(split_db, [], gamma=0.5, epsilon=0.2)
        with pytest.raises(ConfigError, match="non-empty"):
            mine_discriminative(
                split_db, list(range(len(split_db))), gamma=0.5, epsilon=0.2
            )

    def test_bad_thresholds(self, split_db):
        with pytest.raises(ConfigError):
            mine_discriminative(split_db, SUBGROUP, gamma=0.2, epsilon=0.5)

    def test_bad_indices(self, split_db):
        with pytest.raises(ConfigError, match="out of range"):
            mine_discriminative(split_db, [10_000], gamma=0.5, epsilon=0.2)

    def test_bad_level(self, split_db):
        with pytest.raises(ConfigError, match="out of range"):
            mine_discriminative(
                split_db, SUBGROUP, gamma=0.5, epsilon=0.2, levels=[9]
            )

    def test_bad_max_k(self, split_db):
        with pytest.raises(ConfigError, match="max_k"):
            mine_discriminative(
                split_db, SUBGROUP, gamma=0.5, epsilon=0.2, max_k=1
            )

    def test_bad_min_support(self, split_db):
        with pytest.raises(ConfigError, match="min_support"):
            mine_discriminative(
                split_db, SUBGROUP, gamma=0.5, epsilon=0.2, min_support=0
            )
