"""Unit tests for the FP-tree structure."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fpm.fptree import FPNode, FPTree

# The classic running example of Han, Pei & Yin (SIGMOD 2000), with
# items renamed to integers: f=1, c=2, a=3, b=4, m=5, p=6, and the
# infrequent extras d=7, g=8, h=9, i=10, j=11, k=12, l=13, n=14, o=15.
HAN_TRANSACTIONS = [
    [1, 3, 2, 7, 8, 10, 5, 6],
    [3, 4, 2, 1, 13, 5, 15],
    [4, 1, 9, 11, 15],
    [4, 2, 12, 6, 6],
    [3, 1, 2, 14, 13, 6, 5, 14],
]


def han_tree(min_count: int = 3) -> FPTree:
    return FPTree.from_transactions(HAN_TRANSACTIONS, min_count)


class TestConstruction:
    def test_min_count_validation(self):
        with pytest.raises(ConfigError):
            FPTree(min_count=0)

    def test_item_counts_drop_infrequent(self):
        tree = han_tree()
        assert tree.item_counts == {1: 4, 2: 4, 3: 3, 4: 3, 5: 3, 6: 3}

    def test_f_list_descending_support_ties_by_id(self):
        tree = han_tree()
        # 1 and 2 both have support 4 (tie broken by id); the rest
        # have support 3.
        assert tree.f_list == [1, 2, 3, 4, 5, 6]

    def test_duplicates_within_transaction_collapse(self):
        # item 6 appears twice in transaction 4 and item 14 twice in
        # transaction 5; each counts once per transaction
        tree = han_tree()
        assert tree.item_counts[6] == 3

    def test_prefix_sharing_compresses_paths(self):
        tree = han_tree()
        # Han's example compresses 5 transactions into few nodes; the
        # worst case (no sharing) would be sum of filtered lengths
        # 5+5+2+3+5 = 20
        assert tree.n_nodes < 15
        # root's children: transactions split between the 1-prefix
        # (four paths) and the standalone 2-prefix (transaction 4)
        assert set(tree.root.children) == {1, 2}
        assert tree.root.children[1].count == 4
        assert tree.root.children[2].count == 1

    def test_header_chain_counts_match_item_counts(self):
        tree = han_tree()
        for item, count in tree.item_counts.items():
            assert sum(n.count for n in tree.nodes_of(item)) == count

    def test_empty_input(self):
        tree = FPTree.from_transactions([], min_count=1)
        assert tree.is_empty
        assert tree.f_list == []

    def test_all_items_infrequent(self):
        tree = FPTree.from_transactions([[1], [2], [3]], min_count=2)
        assert tree.is_empty


class TestNode:
    def test_prefix_path_walks_to_root(self):
        tree = han_tree()
        # the deepest 6-node under the 1,2,3,5 path
        for node in tree.nodes_of(6):
            path = node.prefix_path()
            assert 6 not in path
            # paths only contain more-frequent (earlier f-list) items
            ranks = [tree.f_list.index(i) for i in path]
            assert ranks == sorted(ranks, reverse=True)

    def test_root_prefix_path_empty(self):
        node = FPNode(item=None, parent=None)
        assert node.prefix_path() == []


class TestConditional:
    def test_conditional_pattern_base_of_p(self):
        """Han's worked example: p=6 has prefix paths
        {f,c,a,m}:2 and {c,b}:1."""
        tree = han_tree()
        base = {
            tuple(sorted(path)): count
            for path, count in tree.conditional_pattern_base(6)
        }
        assert base == {(1, 2, 3, 5): 2, (2, 4): 1}

    def test_conditional_tree_of_p_keeps_only_c(self):
        """In p's conditional base only c=2 reaches min_count 3."""
        tree = han_tree()
        conditional = tree.conditional_tree(6)
        assert conditional.item_counts == {2: 3}

    def test_conditional_tree_of_m_is_single_path(self):
        """m=5's conditional tree is the single path f,c,a (3 each)."""
        tree = han_tree()
        conditional = tree.conditional_tree(5)
        assert conditional.item_counts == {1: 3, 2: 3, 3: 3}
        path = conditional.single_path()
        assert path is not None
        assert [node.item for node in path] == [1, 2, 3]
        assert [node.count for node in path] == [3, 3, 3]

    def test_conditional_base_weights_sum_to_support(self):
        tree = han_tree()
        for item in tree.f_list:
            base = tree.conditional_pattern_base(item)
            top_level = sum(
                node.count
                for node in tree.nodes_of(item)
                if node.parent is tree.root
            )
            assert sum(c for _p, c in base) + top_level == (
                tree.item_counts[item]
            )


class TestSinglePath:
    def test_branching_tree_has_no_single_path(self):
        assert han_tree().single_path() is None

    def test_single_path_detected(self):
        tree = FPTree.from_transactions([[1, 2, 3], [1, 2], [1]], min_count=1)
        path = tree.single_path()
        assert path is not None
        assert [node.item for node in path] == [1, 2, 3]
        assert [node.count for node in path] == [3, 2, 1]

    def test_empty_tree_single_path_is_empty_list(self):
        tree = FPTree.from_transactions([], min_count=1)
        assert tree.single_path() == []
