"""End-to-end smoke of the incremental bench (tiny scale).

The speedup and pattern-count checks are scale-dependent (the delta
counting trade only shows at real sizes, which CI's perf-gate job
runs at the default scale), so this smoke asserts the *exactness*
properties — update/full pattern parity, incremental mode — and the
baseline file shape, not ``checks_pass``.
"""

from __future__ import annotations

import json

import pytest


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.001")


def test_incremental_bench_writes_baseline(tmp_path):
    from repro.bench import run_incremental_bench

    out = tmp_path / "BENCH_incremental.json"
    report, data = run_incremental_bench(out_path=out)
    assert "Incremental bench" in report
    assert data["bench"] == "incremental"
    on_disk = json.loads(out.read_text())
    assert set(on_disk["runs"]) == {"delta=1%", "delta=10%"}
    assert on_disk["speedup_10pct"] > 0
    for run in on_disk["runs"].values():
        # exactness holds at every scale
        assert run["patterns_identical"] is True
        assert run["mode"] == "incremental"
        assert run["update_seconds"] > 0
        assert run["full_seconds"] > 0
        assert run["cache_hits"] > 0


def test_committed_baseline_passes_its_own_checks():
    """The committed BENCH_incremental.json (produced at the default
    scale) must satisfy its internal checks, including the 3x
    speedup floor the CI gate enforces."""
    from pathlib import Path

    committed = json.loads(
        (
            Path(__file__).resolve().parents[2] / "BENCH_incremental.json"
        ).read_text()
    )
    assert committed["checks_pass"] is True
    assert committed["speedup_10pct"] >= committed["min_speedup_10pct"]
