"""Serialization of taxonomies.

Two interchange formats are supported:

* **Edge text** — one ``parent<TAB>child`` pair per line, ``#``
  comments allowed.  This matches the flat files shipped with public
  taxonomy datasets.
* **JSON** — the nested-mapping form accepted by
  :meth:`Taxonomy.from_dict`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.atomicio import atomic_write_text
from repro.errors import TaxonomyError
from repro.taxonomy.tree import Taxonomy

__all__ = [
    "load_taxonomy",
    "save_taxonomy",
    "taxonomy_to_dict",
    "parse_edge_text",
    "format_edge_text",
]


def parse_edge_text(text: str) -> Taxonomy:
    """Parse the ``parent<TAB>child`` edge format."""
    edges: list[tuple[str, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t") if "\t" in line else line.split(None, 1)
        if len(parts) != 2:
            raise TaxonomyError(
                f"line {lineno}: expected 'parent<TAB>child', got {raw!r}"
            )
        edges.append((parts[0].strip(), parts[1].strip()))
    if not edges:
        raise TaxonomyError("no edges found in taxonomy text")
    return Taxonomy.from_edges(edges)


def format_edge_text(taxonomy: Taxonomy) -> str:
    """Render a taxonomy as edge text (copies are skipped: they are an
    internal balancing artifact, not part of the user's hierarchy).

    Level-1 nodes have no line of their own; they are recovered on
    load as the parentless endpoints of deeper edges, or — for a
    degenerate one-level taxonomy — as edges from the root name.
    """
    lines = ["# taxonomy edges: parent<TAB>child"]
    for node in taxonomy.iter_nodes():
        if node.is_copy or node.level < 2:
            continue
        parent = (
            taxonomy.node(node.parent_id)
            if node.parent_id is not None
            else None
        )
        if parent is None:  # pragma: no cover - level >= 2 implies a parent
            continue
        lines.append(f"{parent.name}\t{node.name}")
    if len(lines) == 1:
        # One-level taxonomy: keep it loadable by emitting root edges.
        for node in taxonomy.iter_nodes():
            if node.level == 1:
                lines.append(f"{taxonomy.root.name}\t{node.name}")
    return "\n".join(lines) + "\n"


def taxonomy_to_dict(taxonomy: Taxonomy) -> dict[str, Any]:
    """Nested-mapping form of the (original, non-copy) tree."""

    def walk(node_id: int) -> Any:
        node = taxonomy.node(node_id)
        real_children = [
            cid for cid in node.children_ids if not taxonomy.node(cid).is_copy
        ]
        if not real_children:
            return None
        return {taxonomy.name_of(cid): walk(cid) for cid in real_children}

    return {
        taxonomy.name_of(cid): walk(cid)
        for cid in taxonomy.root.children_ids
        if not taxonomy.node(cid).is_copy
    }


def load_taxonomy(path: str | Path) -> Taxonomy:
    """Load a taxonomy from ``.json`` (nested mapping) or edge text.

    Raises :class:`TaxonomyError` for a missing/unreadable file or
    malformed JSON — builtin exceptions never escape (error
    contract).
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise TaxonomyError(f"cannot read taxonomy: {exc}") from None
    if path.suffix.lower() == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TaxonomyError(f"{path} is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise TaxonomyError(f"{path}: JSON taxonomy must be an object")
        return Taxonomy.from_dict(data)
    return parse_edge_text(text)


def save_taxonomy(taxonomy: Taxonomy, path: str | Path) -> None:
    """Write a taxonomy in the format implied by the file suffix.

    Writes are atomic (temp + ``os.replace``): an interrupted save
    leaves the previous file intact, never a truncated one.
    """
    path = Path(path)
    if path.suffix.lower() == ".json":
        atomic_write_text(
            path,
            json.dumps(taxonomy_to_dict(taxonomy), indent=2, sort_keys=True),
        )
    else:
        atomic_write_text(path, format_edge_text(taxonomy))
