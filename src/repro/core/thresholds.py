"""Mining thresholds (paper Definition 1 and Section 2.2).

A mining run is parameterized by

* ``gamma``   — positive-correlation threshold (``Corr >= gamma``),
* ``epsilon`` — negative-correlation threshold (``Corr <= epsilon``),
* ``min_support`` — one minimum support per taxonomy level
  ``theta_1 .. theta_H``, non-increasing from the top level down
  (coarse nodes are frequent, specific ones rare).

Supports may be given as fractions of the database size (floats in
``(0, 1)``) or as absolute transaction counts (ints ``>= 1``);
:meth:`Thresholds.resolve` converts them to absolute counts for a
concrete database.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["Thresholds", "ResolvedThresholds"]


@dataclass(frozen=True)
class ResolvedThresholds:
    """Thresholds bound to a concrete database: absolute counts per level.

    ``min_counts[h-1]`` is the minimum support (in transactions) at
    taxonomy level ``h``.
    """

    gamma: float
    epsilon: float
    min_counts: tuple[int, ...]

    @property
    def height(self) -> int:
        return len(self.min_counts)

    def min_count(self, level: int) -> int:
        """Absolute minimum support at taxonomy level ``level`` (1-based)."""
        if not 1 <= level <= self.height:
            raise ConfigError(f"level {level} out of range [1, {self.height}]")
        return self.min_counts[level - 1]


@dataclass(frozen=True)
class Thresholds:
    """User-facing threshold bundle.

    Parameters
    ----------
    gamma:
        Positive threshold in ``(0, 1]``; must exceed ``epsilon``.
    epsilon:
        Negative threshold in ``[0, 1)``.
    min_support:
        Scalar applied to every level, or a sequence with one entry
        per taxonomy level (level 1 first).  Fractions and absolute
        counts both work but cannot be mixed.
    """

    gamma: float
    epsilon: float
    min_support: float | int | Sequence[float | int] = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma <= 1.0:
            raise ConfigError(f"gamma must be in (0, 1], got {self.gamma}")
        if not 0.0 <= self.epsilon < 1.0:
            raise ConfigError(f"epsilon must be in [0, 1), got {self.epsilon}")
        if self.epsilon >= self.gamma:
            raise ConfigError(
                f"epsilon ({self.epsilon}) must be below gamma ({self.gamma}); "
                "otherwise every labeled itemset would be both positive and negative"
            )
        values = self._support_values()
        kinds = {self._kind(v) for v in values}
        if len(kinds) > 1:
            raise ConfigError(
                "min_support mixes fractions and absolute counts; use one kind"
            )
        for value in values:
            self._validate_support(value)
        for higher, lower in zip(values, values[1:]):
            if lower > higher:
                raise ConfigError(
                    "min_support must be non-increasing from level 1 down "
                    f"(paper Section 2.2); got {list(values)}"
                )

    # ------------------------------------------------------------------

    def _support_values(self) -> tuple[float | int, ...]:
        if isinstance(self.min_support, (int, float)):
            return (self.min_support,)
        values = tuple(self.min_support)
        if not values:
            raise ConfigError("min_support sequence is empty")
        return values

    @staticmethod
    def _kind(value: float | int) -> str:
        if isinstance(value, bool):
            raise ConfigError("min_support cannot be a bool")
        if isinstance(value, int):
            return "absolute"
        return "fraction"

    @staticmethod
    def _validate_support(value: float | int) -> None:
        if isinstance(value, int):
            if value < 1:
                raise ConfigError(
                    f"absolute min_support must be >= 1, got {value}"
                )
        else:
            if not 0.0 < value < 1.0:
                raise ConfigError(
                    f"fractional min_support must be in (0, 1), got {value}"
                )

    # ------------------------------------------------------------------

    def resolve(self, height: int, n_transactions: int) -> ResolvedThresholds:
        """Bind to a database: absolute per-level counts for ``height`` levels.

        A scalar support is replicated across levels.  A sequence must
        have exactly ``height`` entries.
        """
        if height < 1:
            raise ConfigError(f"taxonomy height must be >= 1, got {height}")
        if n_transactions < 1:
            raise ConfigError(
                "cannot resolve thresholds for an empty database"
            )
        values = self._support_values()
        if len(values) == 1:
            values = values * height
        if len(values) != height:
            raise ConfigError(
                f"min_support has {len(values)} entries but the taxonomy "
                f"has {height} levels"
            )
        counts = []
        for value in values:
            if isinstance(value, int):
                counts.append(value)
            else:
                counts.append(max(1, math.ceil(value * n_transactions)))
        # Rounding can break monotonicity only in pathological cases;
        # re-assert to keep the miner's assumptions airtight.
        for higher, lower in zip(counts, counts[1:]):
            if lower > higher:  # pragma: no cover - prevented by __post_init__
                raise ConfigError(
                    f"resolved min_support not non-increasing: {counts}"
                )
        return ResolvedThresholds(
            gamma=self.gamma,
            epsilon=self.epsilon,
            min_counts=tuple(counts),
        )

    def describe(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"gamma={self.gamma}, epsilon={self.epsilon}, "
            f"min_support={self.min_support}"
        )
