"""Candidate generation for the search-space cells (paper Section 4.1).

Two generation regimes exist, matching the paper's framework:

* **Row join** — the classical Apriori join *within* a taxonomy row.
  Used for the top row (level 1) of Flipper and for every row of the
  BASIC baseline.  Complete for the frequent itemsets of the row.
* **Child expansion** — for level ``h >= 2`` under flipping-based
  pruning: each *chain-alive* (h-1,k)-itemset is expanded into the
  Cartesian product of its items' children.  Complete for every
  itemset whose vertical chain can still flip (each chain itemset has
  a chain-alive parent by Definition 2).

Both regimes then pass through the same filters: SIBP bans and the
known-infrequent-subset test.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable, Mapping, Sequence

from repro.core.cells import Cell
from repro.core.itemsets import apriori_join, k_minus_one_subsets

__all__ = [
    "pair_candidates",
    "row_join_candidates",
    "child_expansion_candidates",
    "filter_banned",
    "filter_known_infrequent_subsets",
]


def pair_candidates(frequent_items: Sequence[int]) -> list[tuple[int, ...]]:
    """All 2-itemsets over the frequent single items of a level."""
    items = sorted(frequent_items)
    return [
        (items[i], items[j])
        for i in range(len(items))
        for j in range(i + 1, len(items))
    ]


def row_join_candidates(cell_left: Cell) -> list[tuple[int, ...]]:
    """Apriori-join the frequent (k-1)-itemsets of the cell to the left."""
    return apriori_join(cell_left.frequent_itemsets)


def child_expansion_candidates(
    alive_parents: Iterable[tuple[int, ...]],
    children_of: Mapping[int, Sequence[int]],
    frequent_items: set[int],
    pair_ok: Callable[[int, int], bool] | None = None,
) -> list[tuple[int, ...]]:
    """Expand chain-alive (h-1,k)-itemsets into level-h candidates.

    Every item of the parent is replaced by each of its children that
    is individually frequent at level h.  Parents descend from
    distinct level-1 categories, so the children of different parents
    never collide and each candidate arises from exactly one parent.

    ``pair_ok(a, b)`` — when given — must return False only for item
    pairs that are provably infrequent at this level.  The expansion
    then prunes prefixes as soon as they contain a dead pair, which
    keeps the Cartesian product from materializing combinations that
    support counting would immediately discard (a pure
    anti-monotonicity argument, so no flipping pattern can be lost).
    """
    candidates: list[tuple[int, ...]] = []
    for parent in alive_parents:
        child_lists = []
        viable = True
        for node in parent:
            children = [
                child
                for child in children_of.get(node, ())
                if child in frequent_items
            ]
            if not children:
                viable = False
                break
            child_lists.append(children)
        if not viable:
            continue
        if pair_ok is None or len(child_lists) < 3:
            for combo in itertools.product(*child_lists):
                candidates.append(tuple(sorted(combo)))
            continue
        # DFS with prefix pair-pruning.
        chosen: list[int] = []

        def expand(position: int) -> None:
            if position == len(child_lists):
                candidates.append(tuple(sorted(chosen)))
                return
            for child in child_lists[position]:
                if all(pair_ok(child, other) for other in chosen):
                    chosen.append(child)
                    expand(position + 1)
                    chosen.pop()

        expand(0)
    return candidates


def filter_banned(
    candidates: Iterable[tuple[int, ...]],
    banned: Mapping[int, int],
) -> tuple[list[tuple[int, ...]], int]:
    """Drop candidates containing an SIBP-banned item.

    ``banned[item] = k`` means Corollary 2 proved every itemset of
    size ``> k`` containing ``item`` non-positive (jointly with its
    generalization), so such supersets cannot flip.
    """
    kept: list[tuple[int, ...]] = []
    dropped = 0
    for itemset in candidates:
        size = len(itemset)
        if any(size > banned.get(item, size) for item in itemset):
            dropped += 1
        else:
            kept.append(itemset)
    return kept, dropped


def filter_known_infrequent_subsets(
    candidates: Iterable[tuple[int, ...]],
    cell_left: Cell | None,
    *,
    strict: bool,
) -> tuple[list[tuple[int, ...]], int]:
    """Apriori subset pruning against the cell to the left.

    ``strict=True`` (BASIC: the left cell holds *every* counted
    candidate of the row) prunes when a subset is missing or
    infrequent.  ``strict=False`` (flipping modes: the left cell may
    legitimately lack itemsets whose chains broke) prunes only when a
    subset was counted *and* found infrequent — absence proves
    nothing.
    """
    if cell_left is None:
        return list(candidates), 0
    entries = cell_left.entries
    kept: list[tuple[int, ...]] = []
    dropped = 0
    for itemset in candidates:
        prune = False
        for subset in k_minus_one_subsets(itemset):
            entry = entries.get(subset)
            if entry is None:
                if strict:
                    prune = True
                    break
            elif not entry.is_frequent:
                prune = True
                break
        if prune:
            dropped += 1
        else:
            kept.append(itemset)
    return kept, dropped
