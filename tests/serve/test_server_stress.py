"""Concurrency stress test: readers racing a stream of updates.

Threaded clients hammer ``GET /patterns`` while ``POST /update``
re-points the store at a sequence of known mining results.  The
contract under test is the server's read/write isolation:

* **no torn reads** — every answer's id set is exactly the pattern
  set of *one* store generation, never a mix of two;
* **truthful versions** — the ``store_version`` stamped into an
  answer identifies a generation that actually existed, and the ids
  are precisely that generation's ids;
* ``expect_version`` pins fail loudly (409) once the store has moved
  on, instead of quietly serving mixed generations;
* no request ever surfaces a 5xx.

The miner is a stub cycling through precomputed results, so the store
generations (and their exact id sets, version by version) are known
before the race starts.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.bench.serve import synthetic_serve_result
from repro.serve import PatternServer, PatternStore

#: store generations the writer pushes (beyond the initial build)
_N_UPDATES = 6
#: concurrent reader threads x requests each
_N_READERS = 4
_READS_EACH = 30


def _get(url: str):
    with urllib.request.urlopen(url) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


class _ScriptedMiner:
    """Stands in for an incremental miner: update() walks a script of
    precomputed results (the transactions payload is ignored)."""

    def __init__(self, results):
        self._results = list(results)
        self._cursor = 0

    def update(self, transactions):
        result = self._results[self._cursor]
        self._cursor = min(self._cursor + 1, len(self._results) - 1)
        return result


@pytest.fixture
def generations():
    """Distinct mining results; sizes differ so every generation has
    a different pattern-id set and every update bumps the version."""
    return [
        synthetic_serve_result(20 + 7 * index, seed=300 + index)
        for index in range(_N_UPDATES + 1)
    ]


def test_readers_never_observe_torn_state(generations):
    initial, *updates = generations
    store = PatternStore.build(initial)
    # version -> exact id set of that generation, known up front
    expected: dict[int, set[str]] = {store.version: set(store.ids())}
    version = store.version
    for result in updates:
        version += 1  # every generation differs, so each applies +1
        expected[version] = set(PatternStore.build(result).ids())

    failures: list[str] = []
    stop = threading.Event()

    with PatternServer(
        store, miner=_ScriptedMiner(updates), cache_size=32
    ) as server:

        def read_loop() -> None:
            for _ in range(_READS_EACH):
                if stop.is_set():
                    return
                try:
                    status, page = _get(server.url + "/patterns")
                except urllib.error.HTTPError as error:  # pragma: no cover
                    failures.append(f"GET /patterns -> {error.code}")
                    stop.set()
                    return
                observed = page["store_version"]
                ids = set(p["id"] for p in page["patterns"])
                if observed not in expected:
                    failures.append(
                        f"answer stamped with version {observed}, "
                        "which never existed"
                    )
                    stop.set()
                    return
                if ids != expected[observed]:
                    torn = sorted(ids ^ expected[observed])[:5]
                    failures.append(
                        f"torn read at version {observed}: id set "
                        f"differs by {torn}"
                    )
                    stop.set()
                    return
                if page["total"] != len(expected[observed]):
                    failures.append(
                        f"total {page['total']} != "
                        f"{len(expected[observed])} at v{observed}"
                    )
                    stop.set()
                    return

        readers = [
            threading.Thread(target=read_loop, name=f"reader-{i}")
            for i in range(_N_READERS)
        ]
        for thread in readers:
            thread.start()
        # the writer races the readers from the main thread
        last_version = store.version
        for _ in updates:
            request = urllib.request.Request(
                server.url + "/update",
                data=json.dumps({"transactions": []}).encode(),
                method="POST",
            )
            with urllib.request.urlopen(request) as resp:
                body = json.loads(resp.read().decode("utf-8"))
            assert body["store_version"] == last_version + 1
            last_version = body["store_version"]
        for thread in readers:
            thread.join(timeout=30)
            assert not thread.is_alive(), "reader thread hung"

        assert not failures, failures
        # after the dust settles the store serves the final generation
        _status, page = _get(server.url + "/patterns")
        assert page["store_version"] == last_version
        assert set(p["id"] for p in page["patterns"]) == expected[last_version]


def test_stale_version_pins_conflict_cleanly(generations):
    initial, *updates = generations
    store = PatternStore.build(initial)
    pinned = store.version
    with PatternServer(store, miner=_ScriptedMiner(updates)) as server:
        # a pin on the current generation succeeds
        status, _page = _get(server.url + f"/patterns?expect_version={pinned}")
        assert status == 200
        request = urllib.request.Request(
            server.url + "/update",
            data=json.dumps({"transactions": []}).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request):
            pass
        # ...and fails loudly (409, not mixed results) once it moved
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(server.url + f"/patterns?expect_version={pinned}")
        assert info.value.code == 409
        payload = json.loads(info.value.read().decode("utf-8"))
        assert "version" in payload["error"]["message"]
