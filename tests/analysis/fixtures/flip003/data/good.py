"""Known-good: persistence writes flow through the atomic idiom."""

import json
import os
import tempfile


def atomic_write_text(path, text):
    handle = tempfile.NamedTemporaryFile(
        mode="w", dir=path.parent, delete=False
    )
    with handle:
        handle.write(text)
    os.replace(handle.name, path)


def save_manifest(path, manifest):
    atomic_write_text(path, json.dumps(manifest))


def write_with_own_rename(path, rows):
    # a function that performs os.replace itself owns the idiom
    temp = path.with_suffix(".tmp")
    with temp.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row) + "\n")
    os.replace(temp, path)


def read_only(path):
    # read-mode opens are not writes
    with path.open("r", encoding="utf-8") as handle:
        return handle.read()
