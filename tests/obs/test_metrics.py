"""Unit tests for the zero-dependency metrics registry."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigError
from repro.obs import catalog
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    default_registry,
    quantile_from_buckets,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestRegistry:
    def test_get_or_create_is_idempotent(self, registry):
        assert registry.counter(catalog.UPDATES) is registry.counter(
            catalog.UPDATES
        )

    def test_kind_conflict_is_loud(self, registry):
        registry.counter(catalog.UPDATES)
        with pytest.raises(ConfigError, match="already registered"):
            registry.gauge(catalog.UPDATES)

    def test_label_conflict_is_loud(self, registry):
        registry.counter("x_total", help="", labels=("a",))
        with pytest.raises(ConfigError, match="already registered"):
            registry.counter("x_total", help="", labels=("b",))

    def test_catalog_backfills_help_labels_and_kind(self, registry):
        metric = registry.counter(catalog.HTTP_REQUESTS)
        spec = catalog.METRICS[catalog.HTTP_REQUESTS]
        assert metric.help == spec.help
        assert metric.label_names == spec.labels

    def test_catalog_backfills_histogram_buckets(self, registry):
        histogram = registry.histogram(catalog.HTTP_REQUEST_SECONDS)
        spec = catalog.METRICS[catalog.HTTP_REQUEST_SECONDS]
        expected = spec.buckets or DEFAULT_BUCKETS
        assert histogram.buckets == expected

    def test_invalid_metric_name_rejected(self, registry):
        with pytest.raises(ConfigError, match="invalid metric name"):
            registry.counter("bad name")

    def test_invalid_label_name_rejected(self, registry):
        with pytest.raises(ConfigError, match="invalid label name"):
            registry.counter("ok_total", help="", labels=("bad-label",))

    def test_dunder_label_rejected(self, registry):
        with pytest.raises(ConfigError, match="invalid label name"):
            registry.counter("ok_total", help="", labels=("__name__",))

    def test_iteration_sorted_by_name(self, registry):
        registry.counter("z_total", help="")
        registry.counter("a_total", help="")
        assert [metric.name for metric in registry] == [
            "a_total",
            "z_total",
        ]

    def test_contains_and_get(self, registry):
        registry.counter("present_total", help="")
        assert "present_total" in registry
        assert "absent_total" not in registry
        assert registry.get("absent_total") is None

    def test_value_of_histogram_is_config_error(self, registry):
        registry.histogram(catalog.HTTP_REQUEST_SECONDS)
        with pytest.raises(ConfigError, match="histogram"):
            registry.value(catalog.HTTP_REQUEST_SECONDS, route="/stats")

    def test_value_of_absent_metric_is_zero(self, registry):
        assert registry.value("never_registered_total") == 0.0

    def test_default_registry_is_process_global(self):
        assert default_registry() is default_registry()


class TestCounter:
    def test_inc_and_value_per_label_set(self, registry):
        counter = registry.counter(catalog.CACHE_HITS)
        counter.inc(cache="query")
        counter.inc(2, cache="query")
        counter.inc(5, cache="response")
        assert counter.value(cache="query") == 3
        assert counter.value(cache="response") == 5

    def test_unobserved_series_reads_zero(self, registry):
        counter = registry.counter(catalog.CACHE_HITS)
        assert counter.value(cache="never") == 0.0

    def test_negative_inc_rejected(self, registry):
        counter = registry.counter(catalog.UPDATES)
        with pytest.raises(ConfigError, match="cannot decrease"):
            counter.inc(-1)

    def test_label_set_mismatch_rejected(self, registry):
        counter = registry.counter(catalog.CACHE_HITS)
        with pytest.raises(ConfigError, match="label set mismatch"):
            counter.inc()
        with pytest.raises(ConfigError, match="label set mismatch"):
            counter.inc(cache="query", extra="x")

    def test_threaded_increments_do_not_lose_counts(self, registry):
        counter = registry.counter("race_total", help="")
        histogram = registry.histogram("race_seconds", help="")

        def worker() -> None:
            for _ in range(1000):
                counter.inc()
                histogram.observe(0.002)

        threads = [
            threading.Thread(target=worker) for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000
        assert histogram.data().total == 8000


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge(catalog.SNAPSHOT_VERSION)
        gauge.set(3)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 4

    def test_callback_evaluated_at_read(self, registry):
        gauge = registry.gauge(catalog.UPDATE_QUEUE_DEPTH)
        depth = [7]
        gauge.set_function(lambda: float(depth[0]))
        assert gauge.value() == 7
        depth[0] = 2
        assert gauge.value() == 2
        assert gauge.samples() == [((), 2.0)]

    def test_set_overrides_callback(self, registry):
        gauge = registry.gauge(catalog.UPDATE_QUEUE_DEPTH)
        gauge.set_function(lambda: 99.0)
        gauge.set(1)
        assert gauge.value() == 1


class TestHistogram:
    def test_bucket_bounds_are_inclusive(self, registry):
        histogram = registry.histogram(
            "b_seconds", help="", buckets=(0.1, 1.0)
        )
        histogram.observe(0.1)
        assert histogram.data().bucket_counts == [1, 0, 0]

    def test_overflow_goes_to_last_bucket(self, registry):
        histogram = registry.histogram(
            "b_seconds", help="", buckets=(0.1, 1.0)
        )
        histogram.observe(50.0)
        assert histogram.data().bucket_counts == [0, 0, 1]

    def test_sum_and_total(self, registry):
        histogram = registry.histogram(
            "b_seconds", help="", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        data = histogram.data()
        assert data.total == 3
        assert data.sum == pytest.approx(5.55)

    def test_non_increasing_buckets_rejected(self, registry):
        with pytest.raises(ConfigError, match="strictly"):
            registry.histogram("b_seconds", help="", buckets=(1.0, 1.0))
        with pytest.raises(ConfigError, match="strictly"):
            registry.histogram("c_seconds", help="", buckets=())

    def test_quantile_interpolates(self, registry):
        histogram = registry.histogram(
            "q_seconds", help="", buckets=(1.0, 2.0, 4.0)
        )
        for _ in range(4):
            histogram.observe(1.5)
        assert histogram.quantile(0.5) == pytest.approx(1.5)

    def test_quantile_of_empty_is_zero(self, registry):
        histogram = registry.histogram("q_seconds", help="")
        assert histogram.quantile(0.99) == 0.0


class TestQuantileFromBuckets:
    def test_midpoint_interpolation(self):
        assert quantile_from_buckets(
            (1.0, 2.0, 4.0), [0, 4, 0, 0], 0.5
        ) == pytest.approx(1.5)

    def test_overflow_reports_largest_finite_bound(self):
        assert quantile_from_buckets((1.0, 2.0), [0, 0, 10], 0.99) == 2.0

    def test_empty_is_zero(self):
        assert quantile_from_buckets((1.0,), [0, 0], 0.5) == 0.0

    def test_fraction_out_of_range_is_loud(self):
        with pytest.raises(ConfigError, match="fraction"):
            quantile_from_buckets((1.0,), [1, 0], 1.5)

    def test_empty_bounds_is_zero_not_indexerror(self):
        # regression: an overflow-only histogram (no finite bound)
        # used to crash on bounds[-1] instead of reporting 0.0
        assert quantile_from_buckets((), [7], 0.5) == 0.0
        assert quantile_from_buckets([], [0], 0.5) == 0.0
