"""Top-K "most flipping" patterns (paper Section 7, future work).

The paper closes by proposing two extensions for users who cannot pick
γ and ε a priori:

* rank patterns by the *gap* between correlation values at different
  hierarchy levels and return the K sharpest flips
  (:func:`top_k_most_flipping`);
* search the threshold space automatically until a satisfactory number
  of patterns emerges (:func:`mine_top_k`), following the paper's
  guidance of fixing γ and relaxing ε downward / γ upward.

Both are implemented here on top of the ordinary miner, making the
future-work section of the paper executable.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.flipper import PruningConfig, mine_flipping_patterns
from repro.core.measures import Measure
from repro.core.patterns import FlippingPattern, MiningResult
from repro.core.thresholds import Thresholds
from repro.data.database import TransactionDatabase
from repro.errors import ConfigError

__all__ = ["top_k_most_flipping", "mine_top_k"]

_SCORES = ("min_gap", "max_gap", "mean_gap")


def top_k_most_flipping(
    patterns: Sequence[FlippingPattern] | MiningResult,
    k: int,
    score: str = "min_gap",
) -> list[FlippingPattern]:
    """The ``k`` patterns with the sharpest flips.

    ``score`` selects the gap statistic: ``min_gap`` (bottleneck gap —
    the paper's "largest gap" reading applied conservatively across
    the chain), ``max_gap`` or ``mean_gap``.
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    if score not in _SCORES:
        raise ConfigError(f"unknown score {score!r}; known: {_SCORES}")
    if isinstance(patterns, MiningResult):
        patterns = patterns.patterns
    ranked = sorted(
        patterns,
        key=lambda p: (getattr(p, score), p.leaf_names),
        reverse=True,
    )
    return ranked[:k]


def mine_top_k(
    database: TransactionDatabase,
    k: int,
    min_support: float | int | Sequence[float | int],
    measure: str | Measure = "kulczynski",
    score: str = "min_gap",
    gamma_start: float = 0.5,
    epsilon_start: float = 0.3,
    relax_step: float = 0.05,
    max_rounds: int = 8,
    pruning: PruningConfig | None = None,
) -> list[FlippingPattern]:
    """Mine with progressively relaxed thresholds until >= k patterns
    appear, then rank and return the top k.

    Starts from a strict ``(gamma_start, epsilon_start)`` pair and, as
    the paper suggests, gradually lowers ε (and, when ε reaches 0,
    lowers γ) until enough patterns are found or ``max_rounds`` is
    exhausted; whatever was found is then ranked by ``score``.
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    if not 0.0 <= epsilon_start < gamma_start <= 1.0:
        raise ConfigError(
            "need 0 <= epsilon_start < gamma_start <= 1, got "
            f"({gamma_start}, {epsilon_start})"
        )
    if relax_step <= 0.0:
        raise ConfigError(f"relax_step must be positive, got {relax_step}")

    gamma = gamma_start
    epsilon = epsilon_start
    best: list[FlippingPattern] = []
    for _round in range(max_rounds):
        thresholds = Thresholds(
            gamma=gamma, epsilon=epsilon, min_support=min_support
        )
        result = mine_flipping_patterns(
            database,
            thresholds,
            measure=measure,
            pruning=pruning,
        )
        if len(result.patterns) > len(best):
            best = result.patterns
        if len(best) >= k:
            break
        # Relax toward more patterns: widen the negative band (raise
        # epsilon toward gamma); once the bands touch, lower gamma too.
        if epsilon + relax_step < gamma - relax_step:
            epsilon = epsilon + relax_step
        elif gamma - relax_step > relax_step:
            gamma = gamma - relax_step
            epsilon = min(epsilon, gamma - relax_step)
        else:
            break  # nothing left to relax
    if not best:
        return []
    return top_k_most_flipping(best, k=min(k, len(best)), score=score)
