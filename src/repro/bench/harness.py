"""Measurement harness: run methods, collect records, sweep parameters.

The Fig. 8 experiments all share one shape: generate a workload, run
the four-method pruning ladder, record runtime / candidate counts /
memory proxy, and compare series across a swept parameter.  This
module is that shape, factored once.
"""

from __future__ import annotations

import tracemalloc
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.flipper import FlipperMiner, PruningConfig
from repro.core.measures import Measure
from repro.core.thresholds import Thresholds
from repro.data.database import TransactionDatabase

__all__ = ["RunRecord", "SweepResult", "run_method", "run_ladder", "sweep"]

#: The four configurations of Figure 8, in the paper's legend order.
LADDER: list[tuple[str, PruningConfig]] = [
    ("BASIC", PruningConfig.basic()),
    ("FLIPPING", PruningConfig.flipping_only()),
    ("FLIPPING+TPG", PruningConfig.flipping_tpg()),
    ("FLIPPING+TPG+SIBP", PruningConfig.full()),
]


@dataclass
class RunRecord:
    """One (method, workload) measurement.

    ``executor``/``workers``/``chunk_size`` record the engine
    configuration the run used, so ablation benches can compare
    serial vs parallel rows of the same method."""

    method: str
    seconds: float
    candidates: int
    counted: int
    stored_entries: int
    max_cell_entries: int
    n_patterns: int
    db_scans: int
    tpg_events: int
    sibp_bans: int
    peak_memory_bytes: int | None = None
    executor: str = "serial"
    workers: int = 1
    chunk_size: int | None = None
    partitions: int = 1
    memory_budget_mb: float | None = None

    @classmethod
    def from_run(
        cls,
        label: str,
        miner: FlipperMiner,
        n_patterns: int,
        peak_memory: int | None = None,
        executor: str = "serial",
        workers: int = 1,
        chunk_size: int | None = None,
        partitions: int = 1,
        memory_budget_mb: float | None = None,
    ) -> "RunRecord":
        stats = miner.stats
        return cls(
            method=label,
            seconds=stats.elapsed_seconds,
            candidates=stats.total_candidates,
            counted=stats.total_counted,
            stored_entries=stats.stored_entries,
            max_cell_entries=stats.max_cell_entries,
            n_patterns=n_patterns,
            db_scans=stats.db_scans,
            tpg_events=len(stats.tpg_events),
            sibp_bans=len(stats.sibp_bans),
            peak_memory_bytes=peak_memory,
            executor=executor,
            workers=workers,
            chunk_size=chunk_size,
            partitions=partitions,
            memory_budget_mb=memory_budget_mb,
        )


def run_method(
    database: TransactionDatabase,
    thresholds: Thresholds,
    pruning: PruningConfig,
    label: str | None = None,
    measure: str | Measure = "kulczynski",
    backend: str = "bitmap",
    executor: str = "serial",
    workers: int | None = None,
    chunk_size: int | None = None,
    max_k: int | None = None,
    partitions: int | None = None,
    memory_budget_mb: float | None = None,
    track_memory: bool = False,
) -> RunRecord:
    """Run one configuration and record its costs.

    With ``track_memory=True`` the run is wrapped in ``tracemalloc``
    (Fig. 9(b)); this slows Python down noticeably, so runtime and
    memory are measured in separate benches, as the paper did.
    ``executor``/``workers``/``chunk_size`` select the engine
    configuration and are recorded in the returned row.
    """
    peak = None
    if track_memory:
        tracemalloc.start()
    try:
        miner = FlipperMiner(
            database,
            thresholds,
            measure=measure,
            pruning=pruning,
            backend=backend,
            executor=executor,
            workers=workers,
            chunk_size=chunk_size,
            max_k=max_k,
            partitions=partitions,
            memory_budget_mb=memory_budget_mb,
        )
        result = miner.mine()
        if track_memory:
            _current, peak = tracemalloc.get_traced_memory()
    finally:
        if track_memory:
            tracemalloc.stop()
    return RunRecord.from_run(
        label or pruning.name,
        miner,
        len(result.patterns),
        peak,
        executor=result.config["executor"],
        workers=result.config["workers"],
        chunk_size=result.config["chunk_size"],
        partitions=result.config["partitions"],
        memory_budget_mb=result.config["memory_budget_mb"],
    )


def run_ladder(
    database: TransactionDatabase,
    thresholds: Thresholds,
    methods: Sequence[tuple[str, PruningConfig]] | None = None,
    **kwargs: object,
) -> list[RunRecord]:
    """Run the full Figure-8 method ladder on one workload."""
    return [
        run_method(database, thresholds, pruning, label=label, **kwargs)  # type: ignore[arg-type]
        for label, pruning in (methods or LADDER)
    ]


@dataclass
class SweepResult:
    """Series of ladder measurements across a swept parameter."""

    parameter: str
    values: list[object] = field(default_factory=list)
    #: method label -> one record per swept value
    series: dict[str, list[RunRecord]] = field(default_factory=dict)

    def add(self, value: object, records: Sequence[RunRecord]) -> None:
        self.values.append(value)
        for record in records:
            self.series.setdefault(record.method, []).append(record)

    def metric(self, method: str, name: str) -> list[float]:
        """One series of a metric (e.g. ``seconds``) for one method."""
        return [getattr(record, name) for record in self.series[method]]

    @property
    def methods(self) -> list[str]:
        return list(self.series)


def sweep(
    parameter: str,
    values: Sequence[object],
    database_for: Callable[[object], TransactionDatabase],
    thresholds_for: Callable[[object], Thresholds],
    methods: Sequence[tuple[str, PruningConfig]] | None = None,
    **kwargs: object,
) -> SweepResult:
    """Run the ladder across a parameter sweep (one Fig. 8 subfigure)."""
    result = SweepResult(parameter=parameter)
    for value in values:
        database = database_for(value)
        thresholds = thresholds_for(value)
        records = run_ladder(database, thresholds, methods=methods, **kwargs)
        result.add(value, records)
    return result
