"""The one atomic-write idiom every persistence path flows through.

Crash-safety contract (PR 6): a writer crash — or a full disk, or an
interrupting signal — must never leave a torn file where a manifest,
store, shard, or image used to be.  The idiom is the classic
temp-sibling dance: write the full payload to a ``NamedTemporaryFile``
in the *target's own directory* (``os.replace`` is only atomic within
a filesystem), ``fsync`` so the bytes are durable before the rename
makes them visible, then ``os.replace`` into place.  Readers see
either the old complete file or the new complete file, never a
mixture, and a failure unlinks the temp so nothing leaks next to the
target.

FLIP003 (``repro analyze``) enforces that write-mode ``open`` calls
in the persistence layers only ever appear inside these helpers or a
function that performs the rename itself.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
]


def atomic_write_bytes(path: str | Path, chunks: bytes | list[bytes]) -> None:
    """Write ``chunks`` to ``path`` atomically (temp + fsync +
    :func:`os.replace`)."""
    target = Path(path)
    payload = [chunks] if isinstance(chunks, bytes) else chunks
    handle = tempfile.NamedTemporaryFile(
        mode="wb",
        dir=target.parent,
        prefix=f".{target.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            for chunk in payload:
                handle.write(chunk)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, target)
    except BaseException:
        # Never leave the temp file behind next to the target.
        try:
            os.unlink(handle.name)
        except FileNotFoundError:
            pass
        raise


def atomic_write_text(
    path: str | Path, text: str, encoding: str = "utf-8"
) -> None:
    """Write ``text`` to ``path`` atomically."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(payload: Any, path: str | Path) -> None:
    """Serialize ``payload`` as indented sorted-key JSON to ``path``
    atomically.

    (Argument order is historical — this predates the byte/text
    helpers and callers across the tree pass ``payload`` first.)
    """
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True))
