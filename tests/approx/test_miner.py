"""Tests for the sample-then-verify miner.

The load-bearing guarantees:

* verified output is always a *subset* of the exact output (phase 2
  re-counts exactly, so approximation can never fabricate);
* at ``sample_rate=1.0`` the output is byte-identical to the exact
  miner (the sample is the data, verification restores exactness);
* candidates carry full-data support confidence intervals that cover
  the true supports of every verified pattern;
* the result is byte-compatible with the serving subsystem;
* the ``FlipperMiner(sample_rate=...)`` wiring composes with the
  partitioned substrate and with exact ``update()`` afterwards.
"""

from __future__ import annotations

import json

import pytest

from repro import FlipperMiner, Thresholds, mine_flipping_patterns
from repro.approx import ApproxMiner, mine_approximate
from repro.core.counting import DeltaCounter
from repro.data.database import TransactionDatabase
from repro.data.shards import ShardedTransactionStore
from repro.datasets.groceries import (
    GROCERIES_THRESHOLDS,
    generate_groceries,
)
from repro.errors import ConfigError
from repro.serve import PatternStore, Query, QueryEngine, linear_scan


def _fps(result) -> set[str]:
    return {json.dumps(p.to_dict(), sort_keys=True) for p in result.patterns}


@pytest.fixture(scope="module")
def groceries():
    return generate_groceries(scale=0.3)


@pytest.fixture(scope="module")
def exact_result(groceries):
    return mine_flipping_patterns(groceries, GROCERIES_THRESHOLDS)


class TestExactness:
    def test_full_rate_is_byte_identical_to_exact(
        self, groceries, exact_result
    ):
        approx = mine_flipping_patterns(
            groceries, GROCERIES_THRESHOLDS, sample_rate=1.0
        )
        assert _fps(approx) == _fps(exact_result)

    def test_sampled_run_never_fabricates(self, groceries, exact_result):
        for seed in range(3):
            approx = mine_flipping_patterns(
                groceries,
                GROCERIES_THRESHOLDS,
                sample_rate=0.4,
                confidence=0.9,
                sample_seed=seed,
            )
            assert _fps(approx) <= _fps(exact_result)

    def test_verified_patterns_carry_exact_values(
        self, groceries, exact_result
    ):
        """Every emitted link holds the true support/correlation, not
        the sampled estimate."""
        approx = mine_flipping_patterns(
            groceries, GROCERIES_THRESHOLDS, sample_rate=0.5, sample_seed=1
        )
        exact_by_leaf = {p.leaf_names: p for p in exact_result.patterns}
        assert approx.patterns, "sampled run found nothing to check"
        for pattern in approx.patterns:
            twin = exact_by_leaf[pattern.leaf_names]
            for mine_link, exact_link in zip(pattern.links, twin.links):
                assert mine_link.support == exact_link.support
                assert mine_link.correlation == exact_link.correlation
                assert mine_link.label is exact_link.label


class TestCandidates:
    def test_intervals_cover_verified_supports(self, groceries):
        store_miner = FlipperMiner(
            groceries,
            GROCERIES_THRESHOLDS,
            sample_rate=0.5,
            sample_seed=2,
        )
        result = store_miner.mine()
        assert result.patterns
        candidates = {
            candidate.leaf_names: candidate
            for candidate in store_miner.approx_candidates
        }
        for pattern in result.patterns:
            candidate = candidates[pattern.leaf_names]
            for link, cand_link in zip(pattern.links, candidate.links):
                assert cand_link.support_lo <= link.support
                assert link.support <= cand_link.support_hi

    def test_candidate_dict_shape(self, groceries):
        miner = ApproxMiner(
            groceries,
            GROCERIES_THRESHOLDS,
            sample_rate=0.5,
            sample_seed=0,
        )
        miner.mine()
        assert miner.candidates
        payload = miner.candidates[0].to_dict()
        assert set(payload) == {"leaf_names", "signature", "links"}
        link = payload["links"][0]
        assert {"support_interval", "sample_support", "correlation"} <= set(
            link
        )

    def test_config_reports_the_bound_math(self, groceries):
        result = mine_approximate(
            groceries,
            GROCERIES_THRESHOLDS,
            sample_rate=0.5,
            confidence=0.9,
        )
        info = result.config["approx"]
        assert info["confidence"] == 0.9
        assert info["n_candidates"] >= info["n_verified"]
        assert info["n_candidates"] == info["n_verified"] + info["n_rejected"]
        assert 0 < info["epsilon_support"] < 1
        assert result.stats.method.startswith("approx+")
        assert result.config["n_transactions"] == len(groceries)


class TestServingCompatibility:
    def test_pattern_store_round_trip(self, groceries):
        result = mine_flipping_patterns(
            groceries, GROCERIES_THRESHOLDS, sample_rate=0.6, sample_seed=3
        )
        store = PatternStore.build(result)
        assert len(store) == len(result.patterns)
        engine = QueryEngine(store)
        query = Query(sort_by="min_gap")
        assert engine.execute(query).ids == linear_scan(store, query).ids


class TestFlipperMinerWiring:
    def test_implied_partitions_for_in_memory_database(self, groceries):
        miner = FlipperMiner(groceries, GROCERIES_THRESHOLDS, sample_rate=0.5)
        result = miner.mine()
        assert result.config["partitions"] == 1
        assert result.config["executor"] == "approx"

    def test_update_after_approx_mine_is_exact(self, groceries):
        rows = [groceries.transaction_names(i) for i in range(len(groceries))]
        base, delta = rows[:-60], rows[-60:]
        miner = FlipperMiner(
            TransactionDatabase(base, groceries.taxonomy),
            GROCERIES_THRESHOLDS,
            partitions=2,
            sample_rate=0.5,
            sample_seed=1,
        )
        miner.mine()
        updated = miner.update(delta)
        full = mine_flipping_patterns(
            TransactionDatabase(rows, groceries.taxonomy),
            GROCERIES_THRESHOLDS,
        )
        assert _fps(updated) == _fps(full)

    def test_shared_store_between_exact_and_approx(
        self, groceries, tmp_path, exact_result
    ):
        store = ShardedTransactionStore.partition_database(
            groceries, tmp_path / "shards", 3
        )
        approx = FlipperMiner(
            store, GROCERIES_THRESHOLDS, sample_rate=1.0
        ).mine()
        assert _fps(approx) == _fps(exact_result)

    def test_sample_options_require_sample_rate(self, groceries):
        with pytest.raises(ConfigError, match="sample_rate"):
            FlipperMiner(groceries, GROCERIES_THRESHOLDS, confidence=0.9)
        with pytest.raises(ConfigError, match="sample_rate"):
            FlipperMiner(
                groceries, GROCERIES_THRESHOLDS, sample_method="reservoir"
            )

    @pytest.mark.parametrize("rate", [0.0, -1.0, 1.01])
    def test_rejects_bad_sample_rate(self, groceries, rate):
        with pytest.raises(ConfigError, match="sample_rate"):
            FlipperMiner(groceries, GROCERIES_THRESHOLDS, sample_rate=rate)


class TestApproxMinerErrors:
    def test_rejects_bad_confidence(self, groceries):
        with pytest.raises(ConfigError, match="confidence"):
            ApproxMiner(
                groceries,
                GROCERIES_THRESHOLDS,
                sample_rate=0.5,
                confidence=1.0,
            )

    def test_rejects_foreign_verify_backend(self, groceries, tmp_path):
        store_a = ShardedTransactionStore.partition_database(
            groceries, tmp_path / "a", 2
        )
        store_b = ShardedTransactionStore.partition_database(
            groceries, tmp_path / "b", 2
        )
        with pytest.raises(ConfigError, match="different store"):
            ApproxMiner(
                store_a,
                GROCERIES_THRESHOLDS,
                sample_rate=0.5,
                verify_backend=DeltaCounter(store_b),
            )

    def test_empty_candidate_set_is_fine(self, groceries):
        # thresholds nothing can clear: the screen finds no chains
        impossible = Thresholds(
            gamma=0.99, epsilon=0.98, min_support=[0.9, 0.9, 0.9]
        )
        result = mine_approximate(groceries, impossible, sample_rate=0.5)
        assert result.patterns == []
        assert result.config["approx"]["n_candidates"] == 0


class TestStagesConflict:
    def test_custom_stages_conflict_with_sample_rate(self, groceries):
        from repro.engine.stages import build_default_stages

        with pytest.raises(ConfigError, match="stages"):
            FlipperMiner(
                groceries,
                GROCERIES_THRESHOLDS,
                sample_rate=0.5,
                stages=build_default_stages(),
            )
