"""Fig. 9(b): memory consumption, naive flipping vs full Flipper.

Paper shape: the naive method stores multi-GB candidate sets; full
Flipper never needed more than 2 GB.  Our proxy is the number of
stored candidate entries (plus a tracemalloc peak as a physical
check); the claim is the *ratio*, not the absolute bytes.
"""

from __future__ import annotations

import pytest

from conftest import one_shot
from repro.bench import run_fig9b, run_method
from repro.bench.experiments import NAIVE_VS_FULL


@pytest.mark.parametrize(
    "dataset_index", [0, 1, 2], ids=["groceries", "census", "medline"]
)
def test_fig9b_memory_pair(benchmark, real_workloads, dataset_index):
    """Benchmark the full-Flipper run with memory tracking enabled."""
    name, database, thresholds = real_workloads[dataset_index]
    label, pruning = NAIVE_VS_FULL[1]
    record = one_shot(
        benchmark,
        run_method,
        database,
        thresholds,
        pruning,
        label,
        track_memory=True,
    )
    assert record.peak_memory_bytes is not None


def test_fig9b_series_shape(benchmark, capsys):
    report, data = one_shot(benchmark, run_fig9b)
    with capsys.disabled():
        print("\n" + report)
    for name, records in data.items():
        naive, full = records
        assert full.stored_entries <= naive.stored_entries, name
