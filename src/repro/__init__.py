"""repro — Flipper: mining flipping correlations with taxonomies.

A production-quality reproduction of

    Marina Barsky, Sangkyum Kim, Tim Weninger, Jiawei Han.
    "Mining Flipping Correlations from Large Datasets with Taxonomies."
    PVLDB 5(4): 370-381, 2011.

Quickstart::

    from repro import Taxonomy, TransactionDatabase, Thresholds
    from repro import mine_flipping_patterns

    taxonomy = Taxonomy.from_dict({
        "drinks":   {"beer":      ["canned beer", "bottled beer"]},
        "non-food": {"cosmetics": ["baby cosmetics", "soap"]},
    })
    db = TransactionDatabase(baskets, taxonomy)
    result = mine_flipping_patterns(db, Thresholds(gamma=0.4, epsilon=0.2))
    for pattern in result.patterns:
        print(pattern.describe())

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured reproduction log.
"""

from repro.core import (
    MEASURES,
    DiscriminativePattern,
    GroupSide,
    mine_discriminative,
    Cell,
    CellEntry,
    CellStats,
    ChainLink,
    FlipperMiner,
    FlippingPattern,
    Label,
    Measure,
    MiningResult,
    MiningStats,
    PruningConfig,
    ResolvedThresholds,
    Thresholds,
    get_measure,
    invariance_table,
    load_result,
    mine_flipping_bruteforce,
    mine_flipping_patterns,
    mine_top_k,
    pattern_significance,
    save_result,
    significant_patterns,
    top_k_most_flipping,
    verify_mining_invariance,
    with_null_transactions,
)
from repro.approx import (
    ApproxCandidate,
    ApproxMiner,
    SampleBounds,
    mine_approximate,
)
from repro.data import (
    TransactionDatabase,
    VerticalIndex,
    load_database,
    profile_database,
)
from repro.fpm import (
    FPTree,
    fp_growth,
    level_frequent_itemsets,
    mine_flipping_posthoc,
)
from repro.engine import (
    ExecutionPlan,
    Executor,
    IncrementalMiner,
    MiningContext,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.errors import (
    ConfigError,
    DataError,
    MiningError,
    ReproError,
    TaxonomyError,
)
from repro.taxonomy import (
    Taxonomy,
    TaxonomyNode,
    contract_levels,
    load_taxonomy,
    rebalance_with_copies,
    save_taxonomy,
    truncate,
)

__version__ = "1.0.0"

__all__ = [
    # primary entry points
    "mine_flipping_patterns",
    "FlipperMiner",
    "PruningConfig",
    "Thresholds",
    "Taxonomy",
    "TransactionDatabase",
    # results
    "MiningResult",
    "FlippingPattern",
    "ChainLink",
    "save_result",
    "load_result",
    "MiningStats",
    "CellStats",
    "Label",
    # measures
    "Measure",
    "MEASURES",
    "get_measure",
    "invariance_table",
    "verify_mining_invariance",
    "with_null_transactions",
    "pattern_significance",
    "significant_patterns",
    "profile_database",
    # extensions & oracle
    "mine_top_k",
    "top_k_most_flipping",
    "mine_discriminative",
    "DiscriminativePattern",
    "GroupSide",
    "mine_flipping_bruteforce",
    # approximate sample-then-verify mining
    "mine_approximate",
    "ApproxMiner",
    "ApproxCandidate",
    "SampleBounds",
    # frequent-pattern-mining substrate (prior art)
    "FPTree",
    "fp_growth",
    "level_frequent_itemsets",
    "mine_flipping_posthoc",
    # engine (plan -> stages -> executor -> backend; see ARCHITECTURE.md)
    "ExecutionPlan",
    "IncrementalMiner",
    "MiningContext",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    # substrate
    "VerticalIndex",
    "TaxonomyNode",
    "rebalance_with_copies",
    "truncate",
    "contract_levels",
    "load_taxonomy",
    "save_taxonomy",
    "load_database",
    "ResolvedThresholds",
    "Cell",
    "CellEntry",
    # errors
    "ReproError",
    "TaxonomyError",
    "DataError",
    "ConfigError",
    "MiningError",
    "__version__",
]
