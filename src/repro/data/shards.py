"""Sharded on-disk transaction store (the out-of-core substrate).

A :class:`ShardedTransactionStore` is the partitioned counterpart of
:class:`~repro.data.database.TransactionDatabase`: the same logical
set ``D`` of transactions, but split into contiguous *shards* that
live on disk and are loaded one at a time.  It is the data layer of
the SON-style partitioned mining path (see ARCHITECTURE.md): every
counting backend can be instantiated per shard, per-shard supports
sum to exact global supports, and the resident set of shard backends
is bounded by a memory budget instead of the dataset size.

Two ways to build a store:

* :meth:`ShardedTransactionStore.partition_database` — split an
  in-memory database into ``n_shards`` contiguous, near-equal shards
  (the parity-testing path; shards may be empty when ``n_shards``
  exceeds the transaction count).
* :meth:`ShardedTransactionStore.ingest` — stream transactions from
  any iterable (dataset generators, file readers) and cut a new shard
  whenever the in-memory buffer reaches ``rows_per_shard`` or the
  ``memory_budget_mb`` estimate — the true out-of-core path, which
  never holds more than one shard of raw transactions.

An existing store *grows* through
:meth:`ShardedTransactionStore.append_batch`: a delta batch is written
as one or more brand-new shard files and the manifest is extended in
place — existing shard files are never rewritten, so per-shard
artifacts derived from them (resident counting backends, cached
supports, persisted backend images) stay valid and incremental mining
only has to look at the delta shards (see
:class:`~repro.core.counting.DeltaCounter`).  It *shrinks* through
:meth:`ShardedTransactionStore.retire_shards` /
:meth:`ShardedTransactionStore.retire_before`: whole shards are
dropped from the manifest and their files (plus persisted backend
images) unlinked — the windowed-mining expiry path.  Every shard
carries a monotonically increasing *generation* stamp in the
manifest; shard file names are derived from the generation, never
from the list position, so a retired shard's name is never reused by
a later append.  The manifest is the commit point both ways: new
shard files are fully written (via same-directory temp files and
``os.replace``) *before* the manifest is atomically replaced, and
retired shard files are unlinked only *after* it, so a mid-write
crash leaves at worst unreferenced orphan files (reclaimed by
:meth:`gc_orphans`), never a manifest naming a torn or missing
shard.

On disk a store is a directory of shard files plus a ``manifest.json``
recording the shard layout.  Shards come in two formats, inferred
from the file suffix:

* ``columnar`` (``.col``, the default) — the binary CSR layout of
  :mod:`repro.data.columnar`, memory-mapped on read so counting
  backends are built from the raw arrays without parsing.  Built
  backends may be persisted next to the shard as ``.img`` files and
  re-admitted by the shard pool with an mmap + header check.
* ``jsonl`` (``.jsonl``) — the legacy line-per-transaction JSON
  format, kept read-compatible; :meth:`migrate` rewrites a store
  between the formats in place.

The taxonomy is bound at construction/open time (exactly like
``TransactionDatabase``), so a reopened store resolves item names
through the identical balanced tree and mining results cannot drift
between open sessions.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from collections.abc import Iterable, Iterator
from pathlib import Path

import numpy as np

from repro.core.atomicio import atomic_write_text
from repro.data.columnar import ColumnarShard, write_columnar_shard
from repro.data.database import TransactionDatabase
from repro.errors import ConfigError, DataError
from repro.taxonomy.rebalance import rebalance_with_copies
from repro.taxonomy.tree import Taxonomy

__all__ = [
    "SHARD_FORMATS",
    "ShardedTransactionStore",
    "estimate_transaction_bytes",
    "open_or_partition_store",
]

_MANIFEST_NAME = "manifest.json"
_MANIFEST_VERSION = 1

#: shard formats and their file suffixes (format is inferred from the
#: suffix, so a store may legitimately mix them after append_batch
#: grows a legacy store with columnar delta shards)
SHARD_FORMATS = {"columnar": ".col", "jsonl": ".jsonl"}
_FORMAT_BY_SUFFIX = {suffix: name for name, suffix in SHARD_FORMATS.items()}

#: Rough per-item cost (in bytes) of one buffered transaction entry:
#: a short Python string plus list/pointer overhead.  Only used to
#: turn ``memory_budget_mb`` into a shard-cut heuristic — exactness
#: does not matter, determinism does.
_BYTES_PER_ITEM = 96
_BYTES_PER_TRANSACTION = 128


def estimate_transaction_bytes(transaction: Iterable[str]) -> int:
    """Deterministic buffered-size estimate of one transaction."""
    n_items = sum(1 for _ in transaction)
    return _BYTES_PER_TRANSACTION + _BYTES_PER_ITEM * n_items


def _check_format(format: str) -> str:
    if format not in SHARD_FORMATS:
        known = ", ".join(sorted(SHARD_FORMATS))
        raise DataError(f"unknown shard format {format!r}; known: {known}")
    return format


class ShardedTransactionStore:
    """Contiguous on-disk shards of one logical transaction set.

    Parameters
    ----------
    directory:
        Directory holding the shard files and ``manifest.json``.
    taxonomy:
        The taxonomy the transactions are bound to.  Unbalanced trees
        are rebalanced with leaf copies exactly as
        :class:`TransactionDatabase` does, so per-shard databases and
        a monolithic database see the same item universe.
    format:
        When set (``"columnar"`` or ``"jsonl"``), require every shard
        to be stored in that format; ``None`` accepts any mix.
    """

    def __init__(
        self,
        directory: str | Path,
        taxonomy: Taxonomy,
        *,
        format: str | None = None,
    ) -> None:
        self._directory = Path(directory)
        if not taxonomy.is_balanced:
            taxonomy = rebalance_with_copies(taxonomy)
        self._taxonomy = taxonomy
        manifest_path = self._directory / _MANIFEST_NAME
        if not manifest_path.is_file():
            raise DataError(
                f"{self._directory} is not a shard store "
                f"(missing {_MANIFEST_NAME})"
            )
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("version") != _MANIFEST_VERSION:
            raise DataError(
                f"unsupported shard manifest version "
                f"{manifest.get('version')!r}"
            )
        self._shard_files: list[str] = list(manifest["shards"])
        self._shard_sizes: list[int] = [
            int(size) for size in manifest["shard_sizes"]
        ]
        if len(self._shard_files) != len(self._shard_sizes):
            raise DataError("shard manifest is inconsistent")
        self._n_transactions = int(manifest["n_transactions"])
        if self._n_transactions != sum(self._shard_sizes):
            raise DataError(
                "shard manifest transaction count does not match shards"
            )
        # Pre-retirement manifests carry no generation stamps; their
        # shards are numbered by position and nothing was ever retired.
        self._generations: list[int] = [
            int(gen)
            for gen in manifest.get(
                "generations", range(len(self._shard_files))
            )
        ]
        self._next_generation = int(
            manifest.get("next_generation", len(self._shard_files))
        )
        if len(self._generations) != len(self._shard_files):
            raise DataError("shard manifest generations are inconsistent")
        if any(
            later <= earlier
            for earlier, later in zip(
                self._generations, self._generations[1:]
            )
        ):
            raise DataError("shard generations must strictly increase")
        if self._generations and (
            self._next_generation <= self._generations[-1]
        ):
            raise DataError(
                "next_generation must exceed every shard generation"
            )
        # An empty store is legal only as the result of retiring every
        # shard (next_generation proves appends happened); a store that
        # never held data is still a construction error.
        if self._n_transactions == 0 and self._next_generation == len(
            self._shard_files
        ):
            raise DataError("shard store is empty")
        for name in self._shard_files:
            if not (self._directory / name).is_file():
                raise DataError(f"missing shard file {name}")
            if format is not None and _format_of(name) != format:
                raise DataError(
                    f"shard file {name} is not in the requested "
                    f"{format!r} format"
                )
        self._width_cache: dict[int, int] = {}
        #: columnar readers are cached (they hold mmaps); dropped on
        #: pickling — worker processes re-map lazily
        self._columnar_readers: dict[int, ColumnarShard] = {}
        #: shard files are immutable once written (appends and
        #: migrations introduce *new* names), so resolved paths and
        #: stat sizes are cached by file name — the budgeted admit
        #: path asks for both on every access
        self._path_cache: dict[str, Path] = {}
        self._size_cache: dict[str, int] = {}

    # ------------------------------------------------------------------
    # pickling (stores are shipped to partitioned-executor workers)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_columnar_readers"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def partition_database(
        cls,
        database: TransactionDatabase,
        directory: str | Path,
        n_shards: int,
        *,
        format: str = "columnar",
    ) -> "ShardedTransactionStore":
        """Split an in-memory database into ``n_shards`` contiguous
        shards of near-equal size (first shards get the remainder).

        ``n_shards`` may exceed the transaction count; the surplus
        shards are empty and contribute zero to every merged count.
        """
        _check_format(format)
        if n_shards < 1:
            raise DataError(f"n_shards must be >= 1, got {n_shards}")
        n = database.n_transactions
        base, remainder = divmod(n, n_shards)
        sizes = [
            base + (1 if index < remainder else 0)
            for index in range(n_shards)
        ]
        rows = (database.transaction_names(index) for index in range(n))
        return cls._write(directory, database.taxonomy, rows, sizes, format)

    @classmethod
    def ingest(
        cls,
        transactions: Iterable[Iterable[str]],
        taxonomy: Taxonomy,
        directory: str | Path,
        *,
        rows_per_shard: int | None = None,
        memory_budget_mb: float | None = None,
        format: str = "columnar",
    ) -> "ShardedTransactionStore":
        """Stream transactions into shard files.

        A shard is cut when the buffered row count reaches
        ``rows_per_shard`` or the buffered-size estimate reaches
        ``memory_budget_mb`` (whichever is configured and hits first);
        only one shard's worth of rows is ever held in memory.  With
        neither bound set, everything lands in a single shard.
        """
        _check_format(format)
        if rows_per_shard is not None and rows_per_shard < 1:
            raise DataError(
                f"rows_per_shard must be >= 1, got {rows_per_shard}"
            )
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise DataError(
                f"memory_budget_mb must be > 0, got {memory_budget_mb}"
            )
        budget_bytes = (
            None
            if memory_budget_mb is None
            else int(memory_budget_mb * 1024 * 1024)
        )
        if not taxonomy.is_balanced:
            taxonomy = rebalance_with_copies(taxonomy)
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        shard_files: list[str] = []
        shard_sizes: list[int] = []
        buffer: list[tuple[str, ...]] = []
        buffered_bytes = 0

        def flush() -> None:
            nonlocal buffered_bytes
            if not buffer:
                return
            name = _shard_file_name(len(shard_files), format)
            _write_shard_file(directory / name, buffer, format)
            shard_files.append(name)
            shard_sizes.append(len(buffer))
            buffer.clear()
            buffered_bytes = 0

        for raw in transactions:
            row = tuple(str(item) for item in raw)
            buffer.append(row)
            buffered_bytes += estimate_transaction_bytes(row)
            full = (
                rows_per_shard is not None and len(buffer) >= rows_per_shard
            ) or (budget_bytes is not None and buffered_bytes >= budget_bytes)
            if full:
                flush()
        flush()
        if not shard_sizes:
            raise DataError("transaction stream is empty")
        _write_manifest(directory, shard_files, shard_sizes)
        return cls(directory, taxonomy)

    @classmethod
    def _write(
        cls,
        directory: str | Path,
        taxonomy: Taxonomy,
        rows: Iterator[tuple[str, ...]],
        sizes: list[int],
        format: str,
    ) -> "ShardedTransactionStore":
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        shard_files: list[str] = []
        for index, size in enumerate(sizes):
            name = _shard_file_name(index, format)
            chunk = [next(rows) for _ in range(size)]
            _write_shard_file(directory / name, chunk, format)
            shard_files.append(name)
        _write_manifest(directory, shard_files, sizes)
        return cls(directory, taxonomy)

    @classmethod
    def open(
        cls,
        directory: str | Path,
        taxonomy: Taxonomy,
        *,
        format: str | None = None,
    ) -> "ShardedTransactionStore":
        """Open an existing store (alias of the constructor)."""
        if format is not None:
            _check_format(format)
        return cls(directory, taxonomy, format=format)

    # ------------------------------------------------------------------
    # delta ingestion
    # ------------------------------------------------------------------

    def append_batch(
        self,
        transactions: Iterable[Iterable[str]],
        *,
        rows_per_shard: int | None = None,
        format: str = "columnar",
    ) -> list[int]:
        """Append a delta batch as new shard(s); never rewrites data.

        The batch is written to fresh shard files (split every
        ``rows_per_shard`` rows when set, one shard otherwise) and the
        manifest is extended with them.  Returns the indexes of the
        new shards — the exact set an incremental consumer has to
        count.  An empty batch is a no-op returning ``[]``.

        Crash safety: every new shard file is fully written (temp +
        ``os.replace``) *before* the manifest is atomically replaced,
        and the in-memory state only advances after the manifest
        commit.  A crash anywhere in between leaves the previous
        manifest intact and at worst some unreferenced shard files: a
        retried append of the same batch overwrites them (the
        generation counter only advances at the commit), and any
        other continuation leaves orphans that :meth:`gc_orphans`
        reclaims.
        """
        _check_format(format)
        if rows_per_shard is not None and rows_per_shard < 1:
            raise DataError(
                f"rows_per_shard must be >= 1, got {rows_per_shard}"
            )
        rows = [tuple(str(item) for item in raw) for raw in transactions]
        if not rows:
            return []
        # Validate before the first write: a bad delta must not leave
        # the on-disk store half-extended.
        id_by_name = self._id_by_name()
        for row_index, row in enumerate(rows):
            for name in row:
                if name not in id_by_name:
                    raise DataError(
                        f"delta transaction {row_index}: unknown item "
                        f"{name!r}"
                    )
        new_files: list[str] = []
        new_sizes: list[int] = []
        new_gens: list[int] = []
        step = rows_per_shard or len(rows)
        for start in range(0, len(rows), step):
            chunk = rows[start : start + step]
            # Names come from the generation counter, not the list
            # position, so a name retired earlier is never reused.
            generation = self._next_generation + len(new_files)
            name = _shard_file_name(generation, format)
            # An existing file at a brand-new generation is an orphan
            # from a crashed earlier append (written, never committed
            # to the manifest); replacing it is the recovery path.
            _write_shard_file(self._directory / name, chunk, format)
            new_files.append(name)
            new_sizes.append(len(chunk))
            new_gens.append(generation)
        _write_manifest(
            self._directory,
            self._shard_files + new_files,
            self._shard_sizes + new_sizes,
            generations=self._generations + new_gens,
            next_generation=self._next_generation + len(new_files),
        )
        # The manifest replace above is the commit point; only now is
        # the in-memory view allowed to see the delta.
        first_new = len(self._shard_files)
        self._shard_files.extend(new_files)
        self._shard_sizes.extend(new_sizes)
        self._generations.extend(new_gens)
        self._next_generation += len(new_files)
        self._n_transactions += len(rows)
        # Cached per-level widths stay exact: fold in the delta rows
        # instead of re-streaming every shard.
        for level, best in list(self._width_cache.items()):
            self._width_cache[level] = max(
                best, self._rows_width_at_level(rows, level, id_by_name)
            )
        return list(range(first_new, len(self._shard_files)))

    def _id_by_name(self) -> dict[str, int]:
        return {
            self._taxonomy.name_of(item): item
            for item in self._taxonomy.item_ids
        }

    def _rows_width_at_level(
        self,
        rows: list[tuple[str, ...]],
        level: int,
        id_by_name: dict[str, int],
    ) -> int:
        """Largest distinct-node width among ``rows`` at ``level``."""
        mapping = self._taxonomy.item_ancestor_map(level)
        best = 0
        for row in rows:
            nodes = {mapping[id_by_name[name]] for name in row}
            if len(nodes) > best:
                best = len(nodes)
        return best

    # ------------------------------------------------------------------
    # format migration
    # ------------------------------------------------------------------

    def migrate(self, to: str) -> int:
        """Rewrite every shard in ``to`` format, in place, atomically.

        Shard boundaries (and therefore all mining results) are
        preserved exactly; only the encoding changes.  New shard files
        are staged in a temporary subdirectory, renamed into the store
        directory, and the manifest replace is the commit point — a
        crash before it leaves the old store fully intact, a crash
        after it leaves the new store fully intact (plus harmless
        orphan files).  Persisted backend images of rewritten shards
        are dropped (they are keyed to shard file names) and will be
        regenerated by the pool on demand.

        Returns the number of shard files rewritten (0 when the store
        already is entirely in the target format).
        """
        _check_format(to)
        old_files = list(self._shard_files)
        if all(_format_of(name) == to for name in old_files):
            return 0
        staging = Path(
            tempfile.mkdtemp(prefix=".migrate-", dir=self._directory)
        )
        try:
            new_files = [
                _shard_file_name(generation, to)
                for generation in self._generations
            ]
            for index, name in enumerate(new_files):
                _write_shard_file(
                    staging / name, self.shard_transactions(index), to
                )
            # Release mmaps over the old files before unlinking them.
            self._columnar_readers.clear()
            for name in new_files:
                os.replace(staging / name, self._directory / name)
            _write_manifest(
                self._directory,
                new_files,
                self._shard_sizes,
                generations=self._generations,
                next_generation=self._next_generation,
            )
        finally:
            shutil.rmtree(staging, ignore_errors=True)
        # Committed: retire the old encodings and their images.
        rewritten = 0
        for name in old_files:
            if name in new_files:
                continue
            rewritten += 1
            _unlink_quietly(self._directory / name)
            for image in self._directory.glob(f"{name}.*.img"):
                _unlink_quietly(image)
            self._drop_cached_paths(name)
        self._shard_files = new_files
        self.gc_orphans()
        return rewritten

    # ------------------------------------------------------------------
    # shard retirement (the windowed-mining expiry path)
    # ------------------------------------------------------------------

    def retire_shards(self, indexes: Iterable[int]) -> int:
        """Drop whole shards from the store; returns the rows removed.

        The survivor manifest is atomically replaced first — that is
        the commit point — and only then are the retired shard files
        and their persisted backend images unlinked, so a crash
        mid-retirement leaves at worst committed-out orphan files
        (reclaimed by :meth:`gc_orphans`), never a manifest naming a
        missing shard.  Remaining shards keep their generation stamps;
        retired generations are never reissued.
        """
        retired = sorted(set(int(index) for index in indexes))
        if not retired:
            return 0
        for index in retired:
            if not 0 <= index < len(self._shard_files):
                raise DataError(
                    f"cannot retire shard {index}: store has "
                    f"{len(self._shard_files)} shard(s)"
                )
        retired_set = set(retired)
        survivors = [
            index
            for index in range(len(self._shard_files))
            if index not in retired_set
        ]
        new_index_of = {old: new for new, old in enumerate(survivors)}
        new_files = [self._shard_files[old] for old in survivors]
        new_sizes = [self._shard_sizes[old] for old in survivors]
        new_gens = [self._generations[old] for old in survivors]
        retired_names = [self._shard_files[old] for old in retired]
        rows = sum(self._shard_sizes[old] for old in retired)
        _write_manifest(
            self._directory,
            new_files,
            new_sizes,
            generations=new_gens,
            next_generation=self._next_generation,
        )
        # Committed.  Release mmaps over the retired shards, remap the
        # survivors' cached readers to their new positions, then
        # unlink the dead files and images.
        self._columnar_readers = {
            new_index_of[old]: reader
            for old, reader in self._columnar_readers.items()
            if old not in retired_set
        }
        for name in retired_names:
            _unlink_quietly(self._directory / name)
            for image in self._directory.glob(f"{name}.*.img"):
                _unlink_quietly(image)
            self._drop_cached_paths(name)
        self._shard_files = new_files
        self._shard_sizes = new_sizes
        self._generations = new_gens
        self._n_transactions -= rows
        # Width maxima may have lived in the retired rows; recompute
        # lazily so windowed results match a cold mine byte for byte.
        self._width_cache.clear()
        return rows

    def retire_before(self, generation: int) -> list[int]:
        """Retire every shard with a generation stamp below
        ``generation``; returns the retired generations (possibly
        empty)."""
        indexes = [
            index
            for index, gen in enumerate(self._generations)
            if gen < generation
        ]
        retired = [self._generations[index] for index in indexes]
        self.retire_shards(indexes)
        return retired

    def gc_orphans(self, *, dry_run: bool = False) -> list[str]:
        """Sweep shard/image files the manifest does not reference.

        Orphans arise from crashes in the commit windows of
        :meth:`append_batch`, :meth:`retire_shards` and
        :meth:`migrate` (a file fully written or left behind, but the
        manifest replace naming it never happened / already dropped
        it).  Returns the orphan file names, sorted; with
        ``dry_run=True`` nothing is unlinked.
        """
        referenced = set(self._shard_files)
        orphans: list[str] = []
        for path in sorted(self._directory.glob("shard-*")):
            if not path.is_file():
                continue
            name = path.name
            if name in referenced:
                continue
            if name.endswith(".img"):
                base = name.rsplit(".", 2)[0]
                if base in referenced:
                    continue
            orphans.append(name)
        if not dry_run:
            for name in orphans:
                _unlink_quietly(self._directory / name)
                self._drop_cached_paths(name)
        return orphans

    def _drop_cached_paths(self, name: str) -> None:
        """Purge cached paths/sizes of one shard file and its images."""
        prefix = f"{name}."
        for cache in (self._path_cache, self._size_cache):
            for key in [
                key
                for key in cache
                if key == name or key.startswith(prefix)
            ]:
                del cache[key]

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def taxonomy(self) -> Taxonomy:
        """The (balanced) taxonomy the store is bound to."""
        return self._taxonomy

    @property
    def n_shards(self) -> int:
        return len(self._shard_files)

    @property
    def n_transactions(self) -> int:
        return self._n_transactions

    @property
    def shard_sizes(self) -> list[int]:
        """Transactions per shard (zeros allowed)."""
        return list(self._shard_sizes)

    @property
    def shard_generations(self) -> list[int]:
        """Per-shard generation stamps (strictly increasing; gaps mark
        retired shards)."""
        return list(self._generations)

    @property
    def next_generation(self) -> int:
        """The generation the next appended shard will receive."""
        return self._next_generation

    def shard_path(self, index: int) -> Path:
        name = self._shard_files[index]
        path = self._path_cache.get(name)
        if path is None:
            path = self._directory / name
            self._path_cache[name] = path
        return path

    def shard_format(self, index: int) -> str:
        """Storage format of one shard (``columnar`` or ``jsonl``)."""
        return _format_of(self._shard_files[index])

    def shard_bytes(self, index: int) -> int:
        """On-disk size of one shard file (0 if unreadable).

        Cached per file name — shard files never change in place
        (appends and migrations write new names).
        """
        name = self._shard_files[index]
        size = self._size_cache.get(name)
        if size is None:
            try:
                size = self.shard_path(index).stat().st_size
            except OSError:
                return 0
            self._size_cache[name] = size
        return size

    def image_path(self, index: int, inner: str) -> Path:
        """Where shard ``index``'s persisted ``inner``-backend image
        lives (the file may or may not exist yet)."""
        name = f"{self._shard_files[index]}.{inner}.img"
        path = self._path_cache.get(name)
        if path is None:
            path = self._directory / name
            self._path_cache[name] = path
        return path

    def image_bytes(self, index: int) -> int:
        """Total on-disk size of every persisted image of one shard."""
        total = 0
        for image in self._directory.glob(f"{self._shard_files[index]}.*.img"):
            try:
                total += image.stat().st_size
            except OSError:
                continue
        return total

    def shard_images(self, index: int) -> list[str]:
        """Backend names with a persisted image for shard ``index``."""
        prefix = f"{self._shard_files[index]}."
        names = []
        for image in self._directory.glob(f"{prefix}*.img"):
            names.append(image.name[len(prefix) : -len(".img")])
        return sorted(names)

    def __len__(self) -> int:
        return self._n_transactions

    # ------------------------------------------------------------------
    # shard access (the memory-budgeted read path)
    # ------------------------------------------------------------------

    def columnar_reader(self, index: int) -> ColumnarShard:
        """The memory-mapped reader of one columnar shard (cached).

        Raises :class:`DataError` for a jsonl shard — callers decide
        per shard via :meth:`shard_format` whether the zero-parse path
        applies.
        """
        if self.shard_format(index) != "columnar":
            raise DataError(
                f"shard {index} ({self._shard_files[index]}) is not "
                "columnar"
            )
        reader = self._columnar_readers.get(index)
        if reader is None:
            reader = ColumnarShard(self.shard_path(index))
            if reader.n_rows != self._shard_sizes[index]:
                raise DataError(
                    f"shard {index} holds {reader.n_rows} transactions, "
                    f"manifest says {self._shard_sizes[index]}"
                )
            self._columnar_readers[index] = reader
        return reader

    def shard_transactions(self, index: int) -> list[tuple[str, ...]]:
        """The raw item-name rows of one shard."""
        if self._shard_sizes[index] == 0:
            return []
        if self.shard_format(index) == "columnar":
            return self.columnar_reader(index).rows()
        rows = _read_jsonl_shard(self.shard_path(index))
        if len(rows) != self._shard_sizes[index]:
            raise DataError(
                f"shard {index} holds {len(rows)} transactions, "
                f"manifest says {self._shard_sizes[index]}"
            )
        return rows

    def shard_transactions_at(
        self, index: int, row_indices: list[int]
    ) -> list[tuple[str, ...]]:
        """Selected rows of one shard, in the given order.

        Columnar shards decode only the requested rows (CSR random
        access); jsonl shards fall back to a full parse.  Samplers
        use this so a k-row draw over a columnar store never
        materializes the other ``n - k`` rows.
        """
        if not row_indices:
            return []
        if self.shard_format(index) == "columnar":
            return self.columnar_reader(index).rows_at(row_indices)
        rows = self.shard_transactions(index)
        return [rows[row] for row in row_indices]

    def shard_database(self, index: int) -> TransactionDatabase | None:
        """One shard materialized as a :class:`TransactionDatabase`
        bound to the shared taxonomy, or ``None`` for an empty shard.

        This is the unit of residency: callers (the partitioned
        backend's shard pool) hold as many of these as their memory
        budget allows and re-read evicted ones from disk.
        """
        rows = self.shard_transactions(index)
        if not rows:
            return None
        return TransactionDatabase(rows, self._taxonomy)

    def iter_shard_databases(
        self,
    ) -> Iterator[tuple[int, TransactionDatabase | None]]:
        """Stream ``(index, database)`` one shard at a time."""
        for index in range(self.n_shards):
            yield index, self.shard_database(index)

    # ------------------------------------------------------------------
    # database-compatible shape queries (what the miner needs)
    # ------------------------------------------------------------------

    def _local_node_map(
        self,
        reader: ColumnarShard,
        index: int,
        level: int,
        mapping: dict[int, int],
        id_by_name: dict[str, int],
    ) -> np.ndarray:
        """Level-``level`` ancestor node id of every *local* item id
        of one columnar shard (the vectorized projection table)."""
        nodes = np.empty(len(reader.item_names), dtype=np.int64)
        for local, name in enumerate(reader.item_names):
            item = id_by_name.get(name)
            if item is None:
                raise DataError(f"shard {index}: unknown item {name!r}")
            nodes[local] = mapping[item]
        return nodes

    def width_at_level(self, level: int) -> int:
        """Largest distinct-node width after projecting to ``level``,
        computed by streaming the shards (never all at once).

        Columnar shards are measured directly on the mapped arrays:
        distinct ``(row, node)`` pairs via one vectorized pass, no
        per-row Python objects.
        """
        if level not in self._width_cache:
            mapping = self._taxonomy.item_ancestor_map(level)
            id_by_name = self._id_by_name()
            stride = max(mapping.values(), default=0) + 1
            best = 0
            for index in range(self.n_shards):
                if self._shard_sizes[index] == 0:
                    continue
                if self.shard_format(index) == "columnar":
                    reader = self.columnar_reader(index)
                    if reader.n_values == 0:
                        continue
                    node_of = self._local_node_map(
                        reader, index, level, mapping, id_by_name
                    )
                    keys = np.unique(
                        reader.row_index() * stride
                        + node_of[reader.items]
                    )
                    widths = np.bincount(keys // stride)
                    best = max(best, int(widths.max()))
                    continue
                for row in self.shard_transactions(index):
                    nodes: set[int] = set()
                    for name in row:
                        item = id_by_name.get(name)
                        if item is None:
                            raise DataError(
                                f"shard {index}: unknown item {name!r}"
                            )
                        nodes.add(mapping[item])
                    if len(nodes) > best:
                        best = len(nodes)
            self._width_cache[level] = best
        return self._width_cache[level]

    def to_database(self) -> TransactionDatabase:
        """Materialize the whole store in memory (tests / small data)."""
        rows: list[tuple[str, ...]] = []
        for index in range(self.n_shards):
            rows.extend(self.shard_transactions(index))
        return TransactionDatabase(rows, self._taxonomy)

    def describe(self) -> str:
        """Store summary used by the CLI and examples: one header
        line, then one line per shard with format, on-disk bytes and
        persisted backend images."""
        sizes = self._shard_sizes
        size_note = f"(sizes {min(sizes)}..{max(sizes)}) " if sizes else ""
        lines = [
            f"ShardedTransactionStore: {self._n_transactions} transactions "
            f"in {self.n_shards} shard(s) "
            f"{size_note}at {self._directory}"
        ]
        for index, name in enumerate(self._shard_files):
            images = self.shard_images(index)
            image_note = (
                f"images: {', '.join(images)}" if images else "images: none"
            )
            lines.append(
                f"  shard {index}: {name} [{self.shard_format(index)}] "
                f"{sizes[index]} row(s), {self.shard_bytes(index)} bytes, "
                f"{image_note}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ShardedTransactionStore(n={self._n_transactions}, "
            f"shards={self.n_shards})"
        )


def open_or_partition_store(
    database: TransactionDatabase | ShardedTransactionStore,
    partitions: int | None,
    shard_dir: str | Path | None,
    *,
    tmp_prefix: str = "repro-shards-",
) -> tuple[
    ShardedTransactionStore, "tempfile.TemporaryDirectory[str] | None"
]:
    """Resolve a miner's ``(database, partitions, shard_dir)`` trio
    into an on-disk store — the single implementation behind
    :class:`~repro.core.flipper.FlipperMiner` and
    :class:`~repro.engine.incremental.IncrementalMiner`.

    An existing store passes through (``partitions`` must agree and
    ``shard_dir`` must be unset); an in-memory database is split into
    ``partitions or 1`` shards under ``shard_dir`` or a fresh
    temporary directory, which is returned so the caller can own its
    lifetime (it self-deletes when garbage-collected).
    """
    if isinstance(database, ShardedTransactionStore):
        if partitions is not None and partitions != database.n_shards:
            raise ConfigError(
                f"partitions={partitions} conflicts with a store of "
                f"{database.n_shards} shard(s); drop the argument"
            )
        if shard_dir is not None:
            raise ConfigError(
                "shard_dir names where partitions=N materializes "
                "shards; this store already lives at "
                f"{database.directory}"
            )
        return database, None
    if partitions is not None and partitions < 1:
        raise ConfigError(f"partitions must be >= 1, got {partitions}")
    tmpdir: tempfile.TemporaryDirectory[str] | None = None
    if shard_dir is None:
        tmpdir = tempfile.TemporaryDirectory(prefix=tmp_prefix)
        shard_dir = tmpdir.name
    store = ShardedTransactionStore.partition_database(
        database, shard_dir, partitions or 1
    )
    return store, tmpdir


# ----------------------------------------------------------------------
# file helpers
# ----------------------------------------------------------------------


def _shard_file_name(index: int, format: str = "columnar") -> str:
    return f"shard-{index:05d}{SHARD_FORMATS[format]}"


def _format_of(name: str) -> str:
    suffix = Path(name).suffix
    try:
        return _FORMAT_BY_SUFFIX[suffix]
    except KeyError:
        raise DataError(
            f"shard file {name!r} has an unknown format suffix"
        ) from None


def _write_shard_file(
    path: Path, rows: list[tuple[str, ...]], format: str
) -> None:
    if format == "columnar":
        write_columnar_shard(path, rows)
        return
    atomic_write_text(
        path, "".join(json.dumps(list(row)) + "\n" for row in rows)
    )


def _read_jsonl_shard(path: Path) -> list[tuple[str, ...]]:
    rows: list[tuple[str, ...]] = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            row = json.loads(line)
            if not isinstance(row, list):
                raise DataError(f"{path}:{lineno}: expected a JSON array")
            rows.append(tuple(str(item) for item in row))
    return rows


def _unlink_quietly(path: Path) -> None:
    try:
        path.unlink()
    except OSError:
        pass


def _write_manifest(
    directory: Path,
    shard_files: list[str],
    shard_sizes: list[int],
    *,
    generations: list[int] | None = None,
    next_generation: int | None = None,
) -> None:
    """Atomically replace the manifest — the store's commit point.

    ``generations`` defaults to positional numbering and
    ``next_generation`` to the shard count — exactly what the reader
    assumes for manifests predating retirement support.
    """
    if generations is None:
        generations = list(range(len(shard_files)))
    if next_generation is None:
        next_generation = len(shard_files)
    manifest = {
        "version": _MANIFEST_VERSION,
        "shards": shard_files,
        "shard_sizes": shard_sizes,
        "n_transactions": sum(shard_sizes),
        "generations": generations,
        "next_generation": next_generation,
    }
    atomic_write_text(
        directory / _MANIFEST_NAME,
        json.dumps(manifest, indent=2) + "\n",
    )
