"""Report rendering and shape checks for the bench harness.

The reproduction does not chase the paper's absolute seconds (2011
Xeon vs. pure Python); it checks *shapes*: which method wins, how the
ordering behaves along a sweep, where the pruning bites.  The shape
checks live here so both the pytest benches and the CLI print the
same verdicts.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bench.harness import RunRecord, SweepResult

__all__ = [
    "format_table",
    "series_table",
    "ShapeCheck",
    "check_ladder_ordering",
    "check_monotone_series",
    "render_checks",
]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain ASCII table (no external deps)."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                text = f"{cell:.3f}"
            else:
                text = str(cell)
            columns[i].append(text)
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    n_rows = len(rows)
    for r in range(n_rows):
        lines.append(
            " | ".join(
                columns[i][r + 1].ljust(widths[i]) for i in range(len(headers))
            )
        )
    return "\n".join(lines)


def series_table(result: SweepResult, metric: str = "seconds") -> str:
    """Paper-style series table: one row per swept value, one column
    per method."""
    headers = [result.parameter] + result.methods
    rows = []
    for index, value in enumerate(result.values):
        row: list[object] = [value]
        for method in result.methods:
            row.append(getattr(result.series[method][index], metric))
        rows.append(row)
    return format_table(headers, rows)


class ShapeCheck:
    """A named pass/fail verdict with an explanation."""

    def __init__(self, name: str, passed: bool, detail: str) -> None:
        self.name = name
        self.passed = passed
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ShapeCheck({self.name}, passed={self.passed})"


def check_ladder_ordering(
    records: Sequence[RunRecord], metric: str = "candidates"
) -> ShapeCheck:
    """Stronger pruning must never *increase* the work metric.

    The paper's headline shape: BASIC >= FLIPPING >= +TPG >= +SIBP in
    candidates/entries.  A small tolerance absorbs ties.
    """
    values = [getattr(record, metric) for record in records]
    ok = all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
    detail = " >= ".join(
        f"{record.method}:{getattr(record, metric)}" for record in records
    )
    return ShapeCheck(f"ladder ordering on {metric}", ok, detail)


def check_monotone_series(
    result: SweepResult,
    method: str,
    metric: str = "seconds",
    direction: str = "increasing",
    tolerance: float = 0.25,
) -> ShapeCheck:
    """A metric should grow (or shrink) along the sweep, modulo noise.

    ``tolerance`` allows per-step violations of up to that fraction —
    wall-clock on small inputs is noisy; the trend is the claim.
    """
    series = result.metric(method, metric)
    ok = True
    for a, b in zip(series, series[1:]):
        if direction == "increasing" and b < a * (1 - tolerance):
            ok = False
        if direction == "decreasing" and b > a * (1 + tolerance):
            ok = False
    detail = f"{method} {metric}: " + " -> ".join(f"{v:.3g}" for v in series)
    return ShapeCheck(f"{direction} {metric} for {method}", ok, detail)


def render_checks(checks: Sequence[ShapeCheck]) -> str:
    lines = []
    for check in checks:
        verdict = "PASS" if check.passed else "FAIL"
        lines.append(f"[{verdict}] {check.name}: {check.detail}")
    return "\n".join(lines)
