"""Unit tests for repro.core.flipper — the Flipper algorithm itself."""

from __future__ import annotations

import pytest

from repro import (
    FlipperMiner,
    PruningConfig,
    Taxonomy,
    Thresholds,
    TransactionDatabase,
    mine_flipping_patterns,
)
from repro.core.labels import Label
from repro.errors import ConfigError


class TestPruningConfig:
    def test_ladder_names(self):
        names = [cfg.name for cfg in PruningConfig.ladder()]
        assert names == [
            "basic",
            "flipping",
            "flipping+tpg",
            "flipping+tpg+sibp",
        ]

    def test_tpg_requires_flipping(self):
        with pytest.raises(ConfigError):
            PruningConfig(flipping=False, tpg=True, sibp=False)

    def test_sibp_requires_flipping(self):
        with pytest.raises(ConfigError):
            PruningConfig(flipping=False, tpg=False, sibp=True)

    def test_default_is_full(self):
        assert PruningConfig().name == "flipping+tpg+sibp"


class TestPaperExample:
    """Example 3 / Figs. 4-5: the ground truth of the whole pipeline."""

    @pytest.mark.parametrize(
        "cfg", PruningConfig.ladder(), ids=lambda c: c.name
    )
    def test_unique_pattern_all_methods(
        self, example3_db, example3_thresholds, cfg
    ):
        result = mine_flipping_patterns(
            example3_db, example3_thresholds, pruning=cfg
        )
        assert [p.leaf_names for p in result.patterns] == [("a11", "b11")]

    def test_chain_values(self, example3_db, example3_thresholds):
        result = mine_flipping_patterns(example3_db, example3_thresholds)
        (pattern,) = result.patterns
        assert pattern.signature == "+-+"
        by_level = {link.level: link for link in pattern.links}
        assert by_level[1].support == 7
        assert by_level[1].correlation == pytest.approx((7 / 8 + 7 / 9) / 2)
        assert by_level[2].support == 2
        assert by_level[2].correlation == pytest.approx(1 / 3)
        assert by_level[3].support == 2
        assert by_level[3].correlation == pytest.approx(1.0)

    def test_names_resolve(self, example3_db, example3_thresholds):
        result = mine_flipping_patterns(example3_db, example3_thresholds)
        (pattern,) = result.patterns
        assert pattern.links[0].names == ("a", "b")
        assert pattern.links[1].names == ("a1", "b1")

    def test_pruning_reduces_candidates(
        self, example3_db, example3_thresholds
    ):
        counts = {}
        for cfg in PruningConfig.ladder():
            result = mine_flipping_patterns(
                example3_db, example3_thresholds, pruning=cfg
            )
            counts[cfg.name] = result.stats.total_candidates
        assert counts["flipping"] < counts["basic"]
        assert counts["flipping+tpg+sibp"] <= counts["flipping"]


class TestConfigValidation:
    def test_height_one_rejected(self):
        tax = Taxonomy.from_edges([("*ROOT*", "a"), ("*ROOT*", "b")])
        db = TransactionDatabase([["a", "b"]], tax)
        with pytest.raises(ConfigError, match="height"):
            FlipperMiner(db, Thresholds(gamma=0.5, epsilon=0.1))

    def test_bad_max_k(self, example3_db, example3_thresholds):
        with pytest.raises(ConfigError, match="max_k"):
            FlipperMiner(example3_db, example3_thresholds, max_k=1)

    def test_unknown_measure(self, example3_db, example3_thresholds):
        with pytest.raises(ConfigError, match="unknown measure"):
            FlipperMiner(example3_db, example3_thresholds, measure="pearson")

    def test_unknown_backend(self, example3_db, example3_thresholds):
        with pytest.raises(ConfigError, match="backend"):
            FlipperMiner(example3_db, example3_thresholds, backend="gpu")


class TestBackendsAgree:
    def test_same_patterns(self, example3_db, example3_thresholds):
        bitmap = mine_flipping_patterns(
            example3_db, example3_thresholds, backend="bitmap"
        )
        horizontal = mine_flipping_patterns(
            example3_db, example3_thresholds, backend="horizontal"
        )
        assert [p.to_dict() for p in bitmap.patterns] == [
            p.to_dict() for p in horizontal.patterns
        ]


class TestMeasures:
    @pytest.mark.parametrize(
        "measure",
        [
            "all_confidence",
            "coherence",
            "cosine",
            "kulczynski",
            "max_confidence",
        ],
    )
    def test_all_measures_run(self, example3_db, measure):
        thresholds = Thresholds(gamma=0.5, epsilon=0.3, min_support=1)
        result = mine_flipping_patterns(
            example3_db, thresholds, measure=measure
        )
        assert result.stats.measure == measure
        # every reported pattern must genuinely alternate
        for pattern in result.patterns:
            signs = [link.label for link in pattern.links]
            for parent, child in zip(signs, signs[1:]):
                assert parent != child
                assert parent.is_signed and child.is_signed


class TestThresholdEffects:
    def test_impossible_thresholds_give_nothing(self, example3_db):
        thresholds = Thresholds(gamma=0.999, epsilon=0.998, min_support=9)
        result = mine_flipping_patterns(example3_db, thresholds)
        assert result.patterns == []

    def test_high_support_kills_pattern(self, example3_db):
        # {a1,b1} has support 2; requiring 3 at level 2 breaks the chain
        thresholds = Thresholds(gamma=0.6, epsilon=0.35, min_support=[3, 3, 1])
        result = mine_flipping_patterns(example3_db, thresholds)
        assert result.patterns == []

    def test_max_k_caps_pattern_size(self, random_db):
        thresholds = Thresholds(gamma=0.2, epsilon=0.15, min_support=1)
        result = mine_flipping_patterns(random_db, thresholds, max_k=2)
        assert all(p.k <= 2 for p in result.patterns)


class TestStatsPlumbing:
    def test_stats_populated(self, example3_db, example3_thresholds):
        result = mine_flipping_patterns(example3_db, example3_thresholds)
        stats = result.stats
        assert stats.method == "flipping+tpg+sibp"
        assert stats.elapsed_seconds > 0
        assert stats.db_scans >= 1
        assert stats.cells_processed >= 3
        assert stats.n_patterns == 1
        assert stats.total_candidates >= stats.total_counted

    def test_config_snapshot(self, example3_db, example3_thresholds):
        result = mine_flipping_patterns(example3_db, example3_thresholds)
        assert result.config["gamma"] == 0.6
        assert result.config["height"] == 3
        assert result.config["n_transactions"] == 10

    def test_cell_accessor(self, example3_db, example3_thresholds):
        miner = FlipperMiner(example3_db, example3_thresholds)
        miner.mine()
        cell = miner.cell(1, 2)
        assert cell is not None
        assert cell.level == 1 and cell.k == 2
        assert miner.cell(9, 9) is None


class TestChainSemantics:
    def test_same_category_items_never_pattern(self, grocery_taxonomy):
        # cola & lemonade share every generalization -> cannot flip
        transactions = [["cola", "lemonade"]] * 5 + [["cola"], ["lemonade"]]
        db = TransactionDatabase(transactions, grocery_taxonomy)
        result = mine_flipping_patterns(
            db, Thresholds(gamma=0.5, epsilon=0.3, min_support=1)
        )
        assert all(
            len({name for name in p.links[0].names}) == p.k
            for p in result.patterns
        )
        assert not any(
            set(p.leaf_names) == {"cola", "lemonade"} for p in result.patterns
        )

    def test_labels_alternate_in_every_pattern(self, random_db):
        result = mine_flipping_patterns(
            random_db, Thresholds(gamma=0.25, epsilon=0.2, min_support=1)
        )
        for pattern in result.patterns:
            labels = [link.label for link in pattern.links]
            assert all(label.is_signed for label in labels)
            assert all(a != b for a, b in zip(labels, labels[1:]))
            assert len(labels) == random_db.taxonomy.height
