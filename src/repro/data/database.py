"""Transaction database substrate.

A :class:`TransactionDatabase` holds the market-basket observations
(set ``D`` in the paper) bound to a :class:`~repro.taxonomy.Taxonomy`.
Items are the taxonomy's leaves; internally each transaction is a
sorted tuple of item ids with duplicates removed.  All support
counting is delegated to a pluggable backend
(:mod:`repro.core.counting`), which consumes the per-level projections
exposed here.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import DataError, TaxonomyError
from repro.taxonomy.rebalance import rebalance_with_copies
from repro.taxonomy.tree import Taxonomy

__all__ = ["TransactionDatabase"]


class TransactionDatabase:
    """Immutable collection of transactions over a taxonomy's items.

    Parameters
    ----------
    transactions:
        Iterable of iterables of item *names*.
    taxonomy:
        The taxonomy whose leaves define the item universe.  Unbalanced
        taxonomies are automatically rebalanced with leaf copies
        (paper Fig. 3 [B]); pass ``rebalance=False`` to forbid that.
    strict:
        When True (default) transactions containing unknown items
        raise :class:`DataError`; when False unknown items are
        silently dropped (useful for sampled external data).
    """

    def __init__(
        self,
        transactions: Iterable[Iterable[str]],
        taxonomy: Taxonomy,
        *,
        rebalance: bool = True,
        strict: bool = True,
    ) -> None:
        if not taxonomy.is_balanced:
            if not rebalance:
                raise TaxonomyError(
                    "taxonomy is unbalanced and rebalance=False"
                )
            taxonomy = rebalance_with_copies(taxonomy)
        self._taxonomy = taxonomy
        # items are the original leaves of the (balanced) tree
        self._item_ids: list[int] = taxonomy.item_ids
        self._id_by_name: dict[str, int] = {
            taxonomy.name_of(item_id): item_id for item_id in self._item_ids
        }
        encoded: list[tuple[int, ...]] = []
        for index, raw in enumerate(transactions):
            ids: set[int] = set()
            for name in raw:
                item_id = self._id_by_name.get(name)
                if item_id is None:
                    if strict:
                        raise DataError(
                            f"transaction {index}: unknown item {name!r}"
                        )
                    continue
                ids.add(item_id)
            encoded.append(tuple(sorted(ids)))
        if not encoded:
            raise DataError("transaction database is empty")
        self._transactions: list[tuple[int, ...]] = encoded

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_transactions(
        cls,
        transactions: Iterable[Iterable[str]],
        taxonomy: Taxonomy,
        **kwargs: object,
    ) -> "TransactionDatabase":
        """Alias of the constructor, for symmetry with other factories."""
        return cls(transactions, taxonomy, **kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def taxonomy(self) -> Taxonomy:
        """The (balanced) taxonomy the database is bound to."""
        return self._taxonomy

    @property
    def n_transactions(self) -> int:
        return len(self._transactions)

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._transactions)

    def transaction(self, index: int) -> tuple[int, ...]:
        """The ``index``-th transaction as a sorted tuple of item ids."""
        return self._transactions[index]

    def transaction_names(self, index: int) -> tuple[str, ...]:
        """The ``index``-th transaction as item names."""
        return tuple(
            self._taxonomy.name_of(item) for item in self._transactions[index]
        )

    @property
    def item_ids(self) -> list[int]:
        """All item ids of the taxonomy (present in transactions or not)."""
        return list(self._item_ids)

    def item_id(self, name: str) -> int:
        try:
            return self._id_by_name[name]
        except KeyError:
            raise DataError(f"unknown item {name!r}") from None

    def item_name(self, item_id: int) -> str:
        return self._taxonomy.name_of(item_id)

    # ------------------------------------------------------------------
    # shape statistics
    # ------------------------------------------------------------------

    @property
    def max_width(self) -> int:
        """Largest number of distinct items in a single transaction."""
        return max(len(t) for t in self._transactions)

    @property
    def mean_width(self) -> float:
        """Average number of distinct items per transaction."""
        total = sum(len(t) for t in self._transactions)
        return total / len(self._transactions)

    def width_at_level(self, level: int) -> int:
        """Largest distinct-node width after projecting to ``level``.

        Bounds the itemset size ``K`` explored at that level: a
        transaction can support a k-itemset only if its projection has
        at least k distinct nodes.
        """
        mapping = self._taxonomy.item_ancestor_map(level)
        best = 0
        for transaction in self._transactions:
            width = len({mapping[item] for item in transaction})
            if width > best:
                best = width
        return best

    # ------------------------------------------------------------------
    # projections
    # ------------------------------------------------------------------

    def project_to_level(self, level: int) -> list[frozenset[int]]:
        """Every transaction with items replaced by their level-``level``
        generalizations (duplicates collapse, matching the paper's
        Example 3)."""
        mapping = self._taxonomy.item_ancestor_map(level)
        return [
            frozenset(mapping[item] for item in transaction)
            for transaction in self._transactions
        ]

    def describe(self) -> str:
        """Multi-line summary used by the CLI and examples."""
        return (
            f"TransactionDatabase: {self.n_transactions} transactions, "
            f"{len(self._item_ids)} items, "
            f"mean width {self.mean_width:.2f}, max width {self.max_width}, "
            f"taxonomy height {self._taxonomy.height}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"TransactionDatabase(n={self.n_transactions}, "
            f"items={len(self._item_ids)})"
        )
