"""Unit tests for repro.core.topk (future-work extensions)."""

from __future__ import annotations

import pytest

from repro import (
    Thresholds,
    mine_flipping_patterns,
    mine_top_k,
    top_k_most_flipping,
)
from repro.core.labels import Label
from repro.core.patterns import ChainLink, FlippingPattern
from repro.errors import ConfigError


def make_pattern(names, corrs):
    labels = [
        Label.POSITIVE if i % 2 == 0 else Label.NEGATIVE
        for i in range(len(corrs))
    ]
    links = tuple(
        ChainLink(
            level=i + 1,
            itemset=(i * 10, i * 10 + 1),
            names=(f"{names[0]}{i}", f"{names[1]}{i}"),
            support=5,
            correlation=corr,
            label=label,
        )
        for i, (corr, label) in enumerate(zip(corrs, labels))
    )
    return FlippingPattern(links=links)


class TestTopKMostFlipping:
    def test_ranks_by_min_gap(self):
        mild = make_pattern(("a", "b"), [0.6, 0.4])
        sharp = make_pattern(("c", "d"), [0.9, 0.05])
        top = top_k_most_flipping([mild, sharp], k=1)
        assert top == [sharp]

    def test_k_larger_than_input(self):
        mild = make_pattern(("a", "b"), [0.6, 0.4])
        assert top_k_most_flipping([mild], k=5) == [mild]

    def test_accepts_mining_result(self, example3_db, example3_thresholds):
        result = mine_flipping_patterns(example3_db, example3_thresholds)
        top = top_k_most_flipping(result, k=1)
        assert top[0].leaf_names == ("a11", "b11")

    def test_bad_k(self):
        with pytest.raises(ConfigError):
            top_k_most_flipping([], k=0)

    def test_bad_score(self):
        with pytest.raises(ConfigError):
            top_k_most_flipping([], k=1, score="sharpest")

    @pytest.mark.parametrize("score", ["min_gap", "max_gap", "mean_gap"])
    def test_all_scores(self, score):
        patterns = [
            make_pattern(("a", "b"), [0.6, 0.4]),
            make_pattern(("c", "d"), [0.9, 0.05]),
        ]
        ranked = top_k_most_flipping(patterns, k=2, score=score)
        assert len(ranked) == 2


class TestMineTopK:
    def test_finds_paper_pattern_without_thresholds(self, example3_db):
        patterns = mine_top_k(
            example3_db,
            k=1,
            min_support=1,
            gamma_start=0.7,
            epsilon_start=0.2,
        )
        assert patterns
        assert patterns[0].leaf_names == ("a11", "b11")

    def test_relaxation_monotone(self, example3_db):
        # A very strict start must still converge via relaxation.
        patterns = mine_top_k(
            example3_db,
            k=1,
            min_support=1,
            gamma_start=0.95,
            epsilon_start=0.05,
            relax_step=0.1,
            max_rounds=12,
        )
        assert patterns  # found after relaxing

    def test_validation(self, example3_db):
        with pytest.raises(ConfigError):
            mine_top_k(example3_db, k=0, min_support=1)
        with pytest.raises(ConfigError):
            mine_top_k(
                example3_db,
                k=1,
                min_support=1,
                gamma_start=0.2,
                epsilon_start=0.5,
            )
        with pytest.raises(ConfigError):
            mine_top_k(example3_db, k=1, min_support=1, relax_step=0.0)

    def test_empty_database_region(self, example3_db):
        # thresholds that can never match anything: returns [] gracefully
        patterns = mine_top_k(
            example3_db,
            k=99,
            min_support=10,
            gamma_start=0.99,
            epsilon_start=0.98,
            relax_step=0.001,
            max_rounds=2,
        )
        assert patterns == []
