"""Unit tests for repro.datasets.toy (paper Fig. 4 and Table 1)."""

from __future__ import annotations

import pytest

from repro.core.measures import expectation_sign, kulczynski
from repro.datasets import (
    EXAMPLE3_EPSILON,
    EXAMPLE3_GAMMA,
    example3_database,
    example3_taxonomy,
    example3_transactions,
    table1_rows,
)


class TestExample3:
    def test_ten_transactions(self):
        assert len(example3_transactions()) == 10

    def test_taxonomy_shape(self):
        tax = example3_taxonomy()
        assert tax.height == 3
        assert len(tax.nodes_at_level(1)) == 2
        assert len(tax.nodes_at_level(2)) == 4
        assert len(tax.nodes_at_level(3)) == 8

    def test_database_binds(self):
        db = example3_database()
        assert db.n_transactions == 10
        assert len(db.item_ids) == 8

    def test_paper_supports(self):
        # Fig. 4 hand counts
        from repro.data import VerticalIndex

        db = example3_database()
        index = VerticalIndex(db)
        tax = db.taxonomy
        assert index.support_of_node(3, tax.node_by_name("a11").node_id) == 2
        assert index.support_of_node(2, tax.node_by_name("b1").node_id) == 6
        assert index.support_of_node(1, tax.node_by_name("a").node_id) == 8

    def test_thresholds_constants(self):
        assert EXAMPLE3_GAMMA == 0.6
        assert EXAMPLE3_EPSILON == 0.35


class TestTable1:
    def test_four_rows(self):
        assert len(table1_rows()) == 4

    def test_expectation_flips_with_n(self):
        for row in table1_rows():
            assert (
                expectation_sign(
                    row.sup_pair,
                    [row.sup_first, row.sup_second],
                    row.n_transactions,
                )
                == row.expected_paper_sign
            )

    def test_kulc_constant_per_pair(self):
        for row in table1_rows():
            assert kulczynski(
                row.sup_pair, [row.sup_first, row.sup_second]
            ) == pytest.approx(row.kulc_paper)
