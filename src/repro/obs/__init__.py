"""Observability: the metrics registry, exposition and span tracer.

Zero-dependency runtime instrumentation shared by every layer — the
mining engine, the shard-backend pool, the caches and the serving
tier.  See :mod:`repro.obs.catalog` for the metric/span name
contract, :mod:`repro.obs.metrics` for the registry,
:mod:`repro.obs.exposition` for the Prometheus/JSON renderers and
:mod:`repro.obs.tracing` for the span tracer behind
``repro mine --profile``.
"""

from __future__ import annotations

from repro.obs import catalog
from repro.obs.exposition import (
    CONTENT_TYPE_TEXT,
    render_json,
    render_text,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    quantile_from_buckets,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    aggregate_spans,
    current_tracer,
    render_trace,
    trace,
    trace_span,
    tracer_from_dict,
)

__all__ = [
    "CONTENT_TYPE_TEXT",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "Tracer",
    "aggregate_spans",
    "catalog",
    "current_tracer",
    "default_registry",
    "quantile_from_buckets",
    "render_json",
    "render_text",
    "render_trace",
    "trace",
    "trace_span",
    "tracer_from_dict",
]
