#!/usr/bin/env python3
"""The pruning ladder, measured (paper Section 5's core experiment).

Runs BASIC -> FLIPPING -> +TPG -> +SIBP on one synthetic workload and
prints what each pruning device buys: candidate counts, stored
entries, runtime.  This is Fig. 8 in miniature, on one dataset.

Run:  python examples/pruning_ladder.py
"""

from repro.bench import (
    bench_config,
    format_table,
    run_ladder,
    thresholds_for_profile,
)
from repro.bench.profiles import DEFAULT_MINSUP
from repro.datasets import generate_synthetic

config = bench_config()
print(
    f"synthetic workload: N={config.n_transactions}, W={config.avg_width}, "
    f"|I|={config.n_items}, H={config.height}, "
    f"roots={config.n_roots}, fanout={config.fanout}"
)
database = generate_synthetic(config)
thresholds = thresholds_for_profile(
    DEFAULT_MINSUP, n_transactions=database.n_transactions
)
print(f"thresholds: {thresholds.describe()}")
print()

records = run_ladder(database, thresholds)
rows = [
    [
        record.method,
        record.candidates,
        record.counted,
        record.stored_entries,
        f"{record.seconds:.3f}",
        record.tpg_events,
        record.sibp_bans,
        record.n_patterns,
    ]
    for record in records
]
print(
    format_table(
        [
            "method",
            "candidates",
            "counted",
            "stored",
            "seconds",
            "TPG",
            "SIBP bans",
            "patterns",
        ],
        rows,
    )
)

basic, *_rest, full = records
if full.candidates:
    print()
    print(
        f"full Flipper evaluates {basic.candidates / full.candidates:.1f}x "
        "fewer candidates than BASIC on this workload"
    )
