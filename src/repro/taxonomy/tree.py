"""The taxonomy tree substrate.

A :class:`Taxonomy` is an is-a hierarchy over items.  Transactions
contain *items*, which are the leaves of the original taxonomy; every
internal node is a generalization and is itself an item at a coarser
abstraction level.  Levels are counted from the artificial root
(level 0, excluded from mining) down to ``height`` (the most specific
level).

The mining algorithms require a *balanced* taxonomy: every leaf at the
same depth.  Unbalanced trees can be repaired with the two strategies
of Fig. 3 of the paper, implemented in
:mod:`repro.taxonomy.rebalance`.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from repro.errors import TaxonomyError
from repro.taxonomy.node import ROOT_NAME, TaxonomyNode

__all__ = ["Taxonomy"]


class Taxonomy:
    """An immutable-by-convention taxonomy tree.

    Construct with one of the factory class methods
    (:meth:`from_edges`, :meth:`from_paths`, :meth:`from_dict`) rather
    than by mutating an instance.
    """

    def __init__(self) -> None:
        self._nodes: dict[int, TaxonomyNode] = {}
        self._root_id: int | None = None
        # name -> node ids carrying that display name, ordered by level.
        self._name_index: dict[str, list[int]] = {}
        self._next_id = 0
        # caches, invalidated on _finalize()
        self._levels_cache: dict[int, list[int]] | None = None
        self._height_cache: int | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[str, str]],
        root_name: str = ROOT_NAME,
    ) -> "Taxonomy":
        """Build a taxonomy from ``(parent_name, child_name)`` pairs.

        Nodes that never appear as a child are attached to an
        artificial root named ``root_name`` (created if necessary), so
        callers may supply a forest of per-category trees exactly as
        the paper describes level-1 categories.
        """
        tax = cls()
        root = tax._add_node(root_name, parent=None)
        parent_of: dict[str, str] = {}
        children_of: dict[str, list[str]] = {}
        names: list[str] = []
        seen: set[str] = set()
        for parent_name, child_name in edges:
            if not isinstance(parent_name, str) or not isinstance(
                child_name, str
            ):
                raise TaxonomyError("edge endpoints must be strings")
            if parent_name == child_name:
                raise TaxonomyError(f"self-loop on node {child_name!r}")
            if (
                child_name in parent_of
                and parent_of[child_name] != parent_name
            ):
                raise TaxonomyError(
                    f"node {child_name!r} has two parents: "
                    f"{parent_of[child_name]!r} and {parent_name!r}"
                )
            parent_of[child_name] = parent_name
            children_of.setdefault(parent_name, []).append(child_name)
            for name in (parent_name, child_name):
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        if root_name in parent_of:
            raise TaxonomyError(f"root {root_name!r} may not have a parent")
        # Top-level nodes: explicit children of the root name, plus every
        # parentless node, attached directly under the root.
        top_level: list[str] = []
        seen_top: set[str] = set()
        for name in children_of.get(root_name, []) + [
            n for n in names if n not in parent_of and n != root_name
        ]:
            if name not in seen_top:
                seen_top.add(name)
                top_level.append(name)
        if not top_level:
            if not names:
                raise TaxonomyError("taxonomy has no edges")
            raise TaxonomyError(
                "taxonomy contains a cycle (no top-level node)"
            )
        stack: list[tuple[str, TaxonomyNode]] = [
            (name, root) for name in reversed(top_level)
        ]
        visited: set[str] = set()
        while stack:
            name, parent_node = stack.pop()
            if name in visited:
                raise TaxonomyError(
                    f"node {name!r} reachable twice (cycle or DAG)"
                )
            visited.add(name)
            node = tax._add_node(name, parent=parent_node)
            for child in reversed(children_of.get(name, [])):
                stack.append((child, node))
        unreachable = set(names) - visited - {root_name}
        if unreachable:
            raise TaxonomyError(
                f"nodes unreachable from the root (cycle?): {sorted(unreachable)[:5]}"
            )
        tax._finalize()
        return tax

    @classmethod
    def from_paths(
        cls,
        paths: Iterable[Sequence[str]],
        root_name: str = ROOT_NAME,
    ) -> "Taxonomy":
        """Build from root-to-leaf name paths (excluding the root).

        Each path lists names from level 1 down to the item, e.g.
        ``("drinks", "beer", "canned beer")``.  Shared prefixes merge.
        """
        edges: list[tuple[str, str]] = []
        seen_edges: set[tuple[str, str]] = set()
        any_path = False
        for path in paths:
            any_path = True
            if not path:
                raise TaxonomyError("empty path")
            prev = root_name
            for name in path:
                edge = (prev, name)
                if edge not in seen_edges:
                    seen_edges.add(edge)
                    edges.append(edge)
                prev = name
        if not any_path:
            raise TaxonomyError("no paths supplied")
        return cls.from_edges(edges, root_name=root_name)

    @classmethod
    def from_dict(
        cls,
        tree: Mapping[str, Any],
        root_name: str = ROOT_NAME,
    ) -> "Taxonomy":
        """Build from a nested mapping.

        Values may be mappings (further levels), iterables of leaf
        names, or ``None`` (the key itself is a leaf)::

            Taxonomy.from_dict({
                "drinks": {"beer": ["canned beer", "bottled beer"]},
                "non-food": {"cosmetics": ["baby cosmetics"]},
            })
        """
        edges: list[tuple[str, str]] = []

        def walk(parent: str, value: Any) -> None:
            if value is None:
                return
            if isinstance(value, Mapping):
                for key, sub in value.items():
                    edges.append((parent, key))
                    walk(key, sub)
            elif isinstance(value, str):
                # A bare string is a single leaf child.
                edges.append((parent, value))
            else:
                for leaf in value:
                    walk(parent, leaf)

        walk(root_name, tree)
        if not edges:
            raise TaxonomyError("empty taxonomy mapping")
        return cls.from_edges(edges, root_name=root_name)

    # internal builders -------------------------------------------------

    def _add_node(
        self,
        name: str,
        parent: TaxonomyNode | None,
        *,
        is_copy: bool = False,
        source_id: int | None = None,
    ) -> TaxonomyNode:
        if not name:
            raise TaxonomyError("node names must be non-empty strings")
        if not is_copy and name in self._name_index:
            raise TaxonomyError(f"duplicate node name {name!r}")
        node_id = self._next_id
        self._next_id += 1
        level = 0 if parent is None else parent.level + 1
        node = TaxonomyNode(
            node_id=node_id,
            name=name,
            level=level,
            parent_id=None if parent is None else parent.node_id,
            is_copy=is_copy,
            source_id=source_id,
        )
        self._nodes[node_id] = node
        if parent is None:
            if self._root_id is not None:
                raise TaxonomyError("taxonomy already has a root")
            self._root_id = node_id
        else:
            parent.children_ids.append(node_id)
        self._name_index.setdefault(name, []).append(node_id)
        return node

    def _finalize(self) -> None:
        """Recompute caches; call after any structural change."""
        self._levels_cache = None
        self._height_cache = None
        for ids in self._name_index.values():
            ids.sort(key=lambda nid: self._nodes[nid].level)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def root_id(self) -> int:
        if self._root_id is None:  # pragma: no cover - guarded by factories
            raise TaxonomyError("taxonomy has no root")
        return self._root_id

    @property
    def root(self) -> TaxonomyNode:
        return self._nodes[self.root_id]

    def node(self, node_id: int) -> TaxonomyNode:
        """Return the node with the given id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TaxonomyError(f"unknown node id {node_id}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._name_index

    def __len__(self) -> int:
        """Number of nodes excluding the root."""
        return len(self._nodes) - 1

    def node_by_name(
        self, name: str, level: int | None = None
    ) -> TaxonomyNode:
        """Look a node up by display name.

        With rebalancing copies several nodes can share a name; pass
        ``level`` to disambiguate, otherwise the original (shallowest)
        node is returned.
        """
        ids = self._name_index.get(name)
        if not ids:
            raise TaxonomyError(f"unknown node name {name!r}")
        if level is None:
            return self._nodes[ids[0]]
        for nid in ids:
            if self._nodes[nid].level == level:
                return self._nodes[nid]
        raise TaxonomyError(f"no node named {name!r} at level {level}")

    def name_of(self, node_id: int) -> str:
        return self.node(node_id).name

    def parent_id(self, node_id: int) -> int | None:
        return self.node(node_id).parent_id

    def children_ids(self, node_id: int) -> tuple[int, ...]:
        return tuple(self.node(node_id).children_ids)

    def iter_nodes(self, include_root: bool = False) -> Iterable[TaxonomyNode]:
        """Iterate nodes in breadth-first (level) order."""
        queue: deque[int] = deque([self.root_id])
        while queue:
            nid = queue.popleft()
            node = self._nodes[nid]
            if include_root or not node.is_root:
                yield node
            queue.extend(node.children_ids)

    # ------------------------------------------------------------------
    # levels
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of abstraction levels, i.e. the depth of the deepest leaf."""
        if self._height_cache is None:
            self._height_cache = max(
                (node.level for node in self._nodes.values()), default=0
            )
        return self._height_cache

    def nodes_at_level(self, level: int) -> list[int]:
        """Ids of all nodes at the given level, ascending by id."""
        if self._levels_cache is None:
            cache: dict[int, list[int]] = {}
            for node in self._nodes.values():
                cache.setdefault(node.level, []).append(node.node_id)
            for ids in cache.values():
                ids.sort()
            self._levels_cache = cache
        if level < 0 or level > self.height:
            raise TaxonomyError(
                f"level {level} out of range [0, {self.height}]"
            )
        return list(self._levels_cache.get(level, []))

    @property
    def leaf_ids(self) -> list[int]:
        """Ids of all leaves (any depth), ascending."""
        return sorted(
            node.node_id for node in self._nodes.values() if node.is_leaf
        )

    @property
    def item_ids(self) -> list[int]:
        """Ids of the *items*: original (non-copy) leaves, plus
        original nodes whose entire remaining subtree is copies."""
        items = []
        for node in self._nodes.values():
            if node.is_copy or node.is_root:
                continue
            if node.is_leaf or all(
                self._nodes[c].is_copy for c in node.children_ids
            ):
                items.append(node.node_id)
        return sorted(items)

    @property
    def is_balanced(self) -> bool:
        """True when every leaf sits at depth ``height``."""
        height = self.height
        return all(
            node.level == height
            for node in self._nodes.values()
            if node.is_leaf
        )

    # ------------------------------------------------------------------
    # ancestry
    # ------------------------------------------------------------------

    def ancestors(self, node_id: int) -> list[int]:
        """Ancestor ids from level 1 down to the node itself (inclusive)."""
        chain: list[int] = []
        current: int | None = node_id
        while current is not None:
            node = self._nodes[current]
            if not node.is_root:
                chain.append(current)
            current = node.parent_id
        chain.reverse()
        return chain

    def ancestor_at_level(self, node_id: int, level: int) -> int:
        """Id of the ancestor of ``node_id`` at the given level.

        ``level`` must satisfy ``1 <= level <= node.level``; the node
        itself is returned when ``level == node.level``.
        """
        node = self.node(node_id)
        if level < 1 or level > node.level:
            raise TaxonomyError(
                f"node {node.name!r} (level {node.level}) has no ancestor "
                f"at level {level}"
            )
        while node.level > level:
            assert node.parent_id is not None
            node = self._nodes[node.parent_id]
        return node.node_id

    def level1_ancestor(self, node_id: int) -> int:
        """Id of the level-1 (top category) ancestor."""
        return self.ancestor_at_level(node_id, 1)

    def item_leaves(self, node_id: int) -> set[int]:
        """Ids of the original items covered by the subtree of a node.

        Rebalancing copies are resolved to their source leaf, so the
        result always refers to items that occur in transactions.
        """
        found: set[int] = set()
        stack = [node_id]
        while stack:
            nid = stack.pop()
            node = self._nodes[nid]
            if node.is_leaf:
                assert node.source_id is not None
                found.add(node.source_id)
            else:
                stack.extend(node.children_ids)
        return found

    def item_ancestor_map(self, level: int) -> dict[int, int]:
        """Map each item id to its generalization id at ``level``.

        Requires a balanced taxonomy (rebalance first otherwise) so
        that every item has an ancestor at every level.
        """
        if not self.is_balanced:
            raise TaxonomyError(
                "taxonomy is unbalanced; rebalance it before mining "
                "(see repro.taxonomy.rebalance)"
            )
        if level < 1 or level > self.height:
            raise TaxonomyError(
                f"level {level} out of range [1, {self.height}]"
            )
        mapping: dict[int, int] = {}
        for node in self._nodes.values():
            if not node.is_leaf:
                continue
            assert node.source_id is not None
            mapping[node.source_id] = self.ancestor_at_level(
                node.node_id, level
            )
        return mapping

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line summary of the tree shape."""
        lines = [
            f"Taxonomy: {len(self)} nodes, height={self.height}, "
            f"balanced={self.is_balanced}"
        ]
        for level in range(1, self.height + 1):
            ids = self.nodes_at_level(level)
            preview = ", ".join(self._nodes[i].name for i in ids[:6])
            suffix = ", ..." if len(ids) > 6 else ""
            lines.append(
                f"  level {level}: {len(ids)} nodes ({preview}{suffix})"
            )
        return "\n".join(lines)

    def render(self, max_children: int = 10) -> str:
        """ASCII rendering of the tree (truncated at ``max_children``)."""
        lines: list[str] = []

        def walk(node_id: int, prefix: str) -> None:
            node = self._nodes[node_id]
            label = node.name + (" (copy)" if node.is_copy else "")
            lines.append(f"{prefix}{label}")
            shown = node.children_ids[:max_children]
            hidden = len(node.children_ids) - len(shown)
            for child in shown:
                walk(child, prefix + "  ")
            if hidden > 0:
                lines.append(f"{prefix}  ... ({hidden} more)")

        walk(self.root_id, "")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Taxonomy(nodes={len(self)}, height={self.height})"
