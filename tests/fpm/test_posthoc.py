"""The post-hoc (generate-all-then-filter) pipeline must reproduce
Flipper's output exactly — it is the prior-art oracle."""

from __future__ import annotations

import pytest

from repro import PruningConfig, Thresholds, mine_flipping_patterns
from repro.errors import ConfigError
from repro.fpm import mine_flipping_posthoc
from tests.conftest import make_random_database


def keys(patterns):
    return sorted(p.leaf_names for p in patterns)


class TestToyExample:
    def test_finds_the_paper_pattern(self, example3_db, example3_thresholds):
        """Paper Example 3: {a11, b11} is the unique flipping pattern."""
        report = mine_flipping_posthoc(example3_db, example3_thresholds)
        assert keys(report.patterns) == [("a11", "b11")]

    def test_chain_matches_flipper(self, example3_db, example3_thresholds):
        report = mine_flipping_posthoc(example3_db, example3_thresholds)
        mined = mine_flipping_patterns(example3_db, example3_thresholds)
        for ours, theirs in zip(report.patterns, mined.patterns):
            for link_a, link_b in zip(ours.links, theirs.links):
                assert link_a.itemset == link_b.itemset
                assert link_a.support == link_b.support
                assert abs(link_a.correlation - link_b.correlation) < 1e-12
                assert link_a.label is link_b.label


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_flipper_on_random_data(self, grocery_taxonomy, seed):
        database = make_random_database(
            grocery_taxonomy, 150, seed=seed, max_width=6
        )
        thresholds = Thresholds(gamma=0.4, epsilon=0.2, min_support=2)
        report = mine_flipping_posthoc(database, thresholds)
        mined = mine_flipping_patterns(
            database, thresholds, pruning=PruningConfig.basic()
        )
        assert keys(report.patterns) == keys(mined.patterns)

    def test_max_k_bounds_both(self, random_db):
        thresholds = Thresholds(gamma=0.4, epsilon=0.2, min_support=2)
        report = mine_flipping_posthoc(random_db, thresholds, max_k=2)
        assert all(p.k <= 2 for p in report.patterns)


class TestReport:
    def test_accounting(self, example3_db, example3_thresholds):
        report = mine_flipping_posthoc(example3_db, example3_thresholds)
        assert report.total_frequent == sum(report.frequent_per_level.values())
        assert set(report.frequent_per_level) == {1, 2, 3}
        assert report.positives > 0
        assert report.negatives > 0
        assert report.elapsed_seconds >= 0.0

    def test_posthoc_materializes_more_than_it_keeps(
        self, example3_db, example3_thresholds
    ):
        """The pipeline's defining weakness: it counts every frequent
        itemset, of which flips are a tiny subset."""
        report = mine_flipping_posthoc(example3_db, example3_thresholds)
        assert report.total_frequent > len(report.patterns)

    def test_summary_mentions_counts(self, example3_db, example3_thresholds):
        report = mine_flipping_posthoc(example3_db, example3_thresholds)
        text = report.summary()
        assert "flipping" in text
        assert str(report.total_frequent) in text


class TestValidation:
    def test_flat_taxonomy_rejected(self):
        from repro import Taxonomy, TransactionDatabase

        taxonomy = Taxonomy.from_dict({"a": None, "b": None})
        database = TransactionDatabase([["a", "b"]], taxonomy)
        with pytest.raises(ConfigError):
            mine_flipping_posthoc(
                database, Thresholds(gamma=0.5, epsilon=0.2, min_support=1)
            )
