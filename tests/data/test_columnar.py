"""Unit and property tests for the binary columnar containers.

Covers the FLIPCOL1 shard files (CSR round trip, header validation,
corruption handling) and the FLIPIMG1 backend images (array round
trip, structural-integrity fallback to ``None``), plus the taxonomy
fingerprint that keys image validity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.columnar import (
    COLUMNAR_FORMAT_VERSION,
    ColumnarShard,
    read_backend_image,
    taxonomy_fingerprint,
    write_backend_image,
    write_columnar_shard,
)
from repro.errors import DataError
from repro.taxonomy.tree import Taxonomy


class TestColumnarRoundTrip:
    def test_rows_round_trip_exactly(self, tmp_path):
        rows = [
            ("milk", "cola"),
            (),
            ("cola", "cola", "milk"),  # duplicates survive
            ("soap",),
        ]
        path = tmp_path / "shard.col"
        write_columnar_shard(path, rows)
        reader = ColumnarShard(path)
        assert reader.rows() == rows
        assert reader.n_rows == 4
        assert reader.n_values == 6

    def test_name_table_is_first_occurrence_order(self, tmp_path):
        path = tmp_path / "shard.col"
        write_columnar_shard(path, [("b", "a"), ("c", "a")])
        reader = ColumnarShard(path)
        assert reader.item_names == ("b", "a", "c")
        # local ids index into the name table
        assert list(reader.items) == [0, 1, 2, 1]

    def test_file_content_is_deterministic(self, tmp_path):
        rows = [("x", "y"), ("y",)]
        write_columnar_shard(tmp_path / "a.col", rows)
        write_columnar_shard(tmp_path / "b.col", rows)
        assert (tmp_path / "a.col").read_bytes() == (
            tmp_path / "b.col"
        ).read_bytes()

    def test_empty_shard_round_trips(self, tmp_path):
        path = tmp_path / "empty.col"
        write_columnar_shard(path, [])
        reader = ColumnarShard(path)
        assert reader.n_rows == 0
        assert reader.rows() == []

    def test_row_index_matches_offsets(self, tmp_path):
        path = tmp_path / "shard.col"
        write_columnar_shard(path, [("a", "b"), ("c",), ("a", "b", "c")])
        reader = ColumnarShard(path)
        assert list(reader.row_index()) == [0, 0, 1, 2, 2, 2]

    def test_rows_at_selects_without_full_decode(self, tmp_path):
        rows = [("a", "b"), (), ("c",), ("a", "c", "b"), ("b",)]
        path = tmp_path / "shard.col"
        write_columnar_shard(path, rows)
        reader = ColumnarShard(path)
        assert reader.rows_at([3, 0]) == [rows[3], rows[0]]
        assert reader.rows_at([1]) == [()]
        assert reader.rows_at([]) == []
        assert reader.rows_at(range(5)) == rows

    def test_rows_at_out_of_range_rejected(self, tmp_path):
        path = tmp_path / "shard.col"
        write_columnar_shard(path, [("a",)])
        reader = ColumnarShard(path)
        with pytest.raises(DataError, match="out of range"):
            reader.rows_at([1])
        with pytest.raises(DataError, match="out of range"):
            reader.rows_at([-1])

    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.lists(
            st.lists(
                st.text(
                    alphabet=st.characters(
                        min_codepoint=33, max_codepoint=0x2FF
                    ),
                    min_size=1,
                    max_size=8,
                ),
                max_size=6,
            ).map(tuple),
            max_size=25,
        )
    )
    def test_any_rows_round_trip(self, tmp_path_factory, rows):
        path = tmp_path_factory.mktemp("col") / "shard.col"
        write_columnar_shard(path, rows)
        assert ColumnarShard(path).rows() == rows


class TestColumnarValidation:
    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.col"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 64)
        with pytest.raises(DataError, match="not a FLIPCOL1"):
            ColumnarShard(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "future.col"
        write_columnar_shard(path, [("a",)])
        raw = bytearray(path.read_bytes())
        marker = f'"format":{COLUMNAR_FORMAT_VERSION}'.encode()
        at = raw.index(marker)
        raw[at : at + len(marker)] = marker.replace(
            str(COLUMNAR_FORMAT_VERSION).encode(), b"9"
        )
        path.write_bytes(bytes(raw))
        with pytest.raises(DataError, match="unsupported columnar"):
            ColumnarShard(path)

    def test_truncated_payload_rejected(self, tmp_path):
        path = tmp_path / "cut.col"
        write_columnar_shard(path, [("a", "b", "c"), ("a",)])
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 8])
        with pytest.raises(DataError, match="truncated"):
            ColumnarShard(path)

    def test_corrupt_header_json_rejected(self, tmp_path):
        path = tmp_path / "junk.col"
        header = b"{not json"
        raw = b"FLIPCOL1" + len(header).to_bytes(4, "little") + header
        path.write_bytes(raw + b"\x00" * (64 - len(raw) % 64))
        with pytest.raises(DataError, match="corrupt header"):
            ColumnarShard(path)


class TestBackendImages:
    def _meta(self):
        return {
            "backend": "bitmap",
            "n_rows": 3,
            "taxonomy_fingerprint": "abc123",
            "source_bytes": 99,
            "levels": [{"level": 1, "nodes": [4, 5]}],
        }

    def test_arrays_round_trip(self, tmp_path):
        path = tmp_path / "shard.col.bitmap.img"
        plane = np.array([[1, 2], [3, 4]], dtype=np.uint8)
        matrix = np.ones((3, 2), dtype=np.bool_)
        write_backend_image(path, self._meta(), [plane, matrix])
        loaded = read_backend_image(path)
        assert loaded is not None
        header, arrays = loaded
        assert header["backend"] == "bitmap"
        assert header["taxonomy_fingerprint"] == "abc123"
        assert [spec["dtype"] for spec in header["arrays"]] == [
            plane.dtype.str,
            matrix.dtype.str,
        ]
        np.testing.assert_array_equal(arrays[0], plane)
        np.testing.assert_array_equal(arrays[1], matrix)

    def test_arrays_are_zero_copy_views(self, tmp_path):
        path = tmp_path / "img"
        plane = np.arange(128, dtype=np.uint8).reshape(2, 64)
        write_backend_image(path, self._meta(), [plane])
        _, arrays = read_backend_image(path)
        # served straight off the mapped file, not a heap copy
        assert not arrays[0].flags["OWNDATA"]
        assert not arrays[0].flags["WRITEABLE"]

    def test_empty_array_round_trips(self, tmp_path):
        path = tmp_path / "img"
        write_backend_image(
            path, self._meta(), [np.empty((0, 4), dtype=np.uint8)]
        )
        _, arrays = read_backend_image(path)
        assert arrays[0].shape == (0, 4)

    def test_missing_file_is_none(self, tmp_path):
        assert read_backend_image(tmp_path / "nope.img") is None

    def test_wrong_magic_is_none(self, tmp_path):
        path = tmp_path / "img"
        path.write_bytes(b"WRONG!!!" + b"\x00" * 64)
        assert read_backend_image(path) is None

    def test_truncated_arrays_are_none(self, tmp_path):
        path = tmp_path / "img"
        write_backend_image(
            path, self._meta(), [np.ones((8, 64), dtype=np.uint8)]
        )
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 256])
        assert read_backend_image(path) is None

    def test_corrupt_header_is_none(self, tmp_path):
        path = tmp_path / "img"
        header = b"12345"
        raw = b"FLIPIMG1" + len(header).to_bytes(4, "little") + header
        path.write_bytes(raw + b"\x00" * 64)
        assert read_backend_image(path) is None

    def test_future_version_is_none(self, tmp_path):
        path = tmp_path / "img"
        write_backend_image(path, self._meta(), [np.ones(4, dtype=np.uint8)])
        raw = path.read_bytes()
        # bump the declared format version in place
        patched = raw.replace(b'"format":1', b'"format":9', 1)
        path.write_bytes(patched)
        assert read_backend_image(path) is None


class TestTaxonomyFingerprint:
    def test_equal_trees_share_a_fingerprint(self):
        tree = {"a": {"m": ["x", "y"]}, "b": {"n": ["z", "w"]}}
        first = Taxonomy.from_dict(tree)
        second = Taxonomy.from_dict(tree)
        assert taxonomy_fingerprint(first) == taxonomy_fingerprint(second)

    def test_different_trees_differ(self):
        first = Taxonomy.from_dict({"a": {"m": ["x", "y"]}})
        second = Taxonomy.from_dict({"a": {"m": ["x", "q"]}})
        assert taxonomy_fingerprint(first) != taxonomy_fingerprint(second)

    def test_invariant_under_rebalancing(self):
        from repro.taxonomy.rebalance import rebalance_with_copies

        unbalanced = Taxonomy.from_dict(
            {"deep": {"mid": ["leaf"]}, "shallow": None}
        )
        balanced = rebalance_with_copies(unbalanced)
        assert taxonomy_fingerprint(unbalanced) == taxonomy_fingerprint(
            balanced
        )

    def test_memoized_per_instance(self):
        taxonomy = Taxonomy.from_dict({"a": ["x", "y"]})
        assert taxonomy_fingerprint(taxonomy) is taxonomy_fingerprint(taxonomy)
