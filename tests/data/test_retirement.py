"""Shard retirement, generation stamps and orphan gc."""

from __future__ import annotations

import json

import pytest

from repro.data.database import TransactionDatabase
from repro.data.shards import ShardedTransactionStore
from repro.errors import DataError


def _store(db: TransactionDatabase, tmp_path, n_shards: int = 4):
    return ShardedTransactionStore.partition_database(db, tmp_path, n_shards)


class TestGenerations:
    def test_fresh_store_generations(self, random_db, tmp_path):
        store = _store(random_db, tmp_path)
        assert store.shard_generations == [0, 1, 2, 3]
        assert store.next_generation == 4

    def test_append_extends_generations(self, random_db, tmp_path):
        store = _store(random_db, tmp_path)
        store.append_batch([["milk", "cola"], ["soap"]])
        assert store.shard_generations == [0, 1, 2, 3, 4]
        assert store.next_generation == 5

    def test_generations_survive_reopen(self, random_db, tmp_path):
        store = _store(random_db, tmp_path)
        store.retire_shards([0, 2])
        reopened = ShardedTransactionStore.open(
            tmp_path, random_db.taxonomy
        )
        assert reopened.shard_generations == [1, 3]
        assert reopened.next_generation == 4

    def test_legacy_manifest_defaults(self, random_db, tmp_path):
        _store(random_db, tmp_path)
        manifest = tmp_path / "manifest.json"
        payload = json.loads(manifest.read_text())
        del payload["generations"]
        del payload["next_generation"]
        manifest.write_text(json.dumps(payload))
        reopened = ShardedTransactionStore.open(
            tmp_path, random_db.taxonomy
        )
        assert reopened.shard_generations == [0, 1, 2, 3]
        assert reopened.next_generation == 4

    def test_retired_names_never_reused(self, random_db, tmp_path):
        store = _store(random_db, tmp_path)
        retired_names = [store.shard_path(i).name for i in range(4)]
        store.retire_shards(range(4))
        new_shards = store.append_batch([["milk"], ["cola"]])
        fresh = [store.shard_path(i).name for i in new_shards]
        assert not set(fresh) & set(retired_names)


class TestRetireShards:
    def test_retire_drops_rows_and_files(self, random_db, tmp_path):
        store = _store(random_db, tmp_path)
        sizes = list(store.shard_sizes)
        doomed = store.shard_path(0)
        rows = store.retire_shards([0])
        assert rows == sizes[0]
        assert store.n_shards == 3
        assert store.n_transactions == sum(sizes[1:])
        assert not doomed.exists()

    def test_surviving_rows_are_exact(self, random_db, tmp_path):
        store = _store(random_db, tmp_path)
        expected = []
        for index in (1, 3):
            expected.extend(store.shard_transactions(index))
        store.retire_shards([0, 2])
        survivors = []
        for index in range(store.n_shards):
            survivors.extend(store.shard_transactions(index))
        assert survivors == expected

    def test_retire_all_leaves_legal_empty_store(self, random_db, tmp_path):
        store = _store(random_db, tmp_path)
        store.retire_shards(range(4))
        assert store.n_shards == 0
        assert store.n_transactions == 0
        reopened = ShardedTransactionStore.open(
            tmp_path, random_db.taxonomy
        )
        assert reopened.n_transactions == 0
        # the store revives through append
        reopened.append_batch([["milk", "cola"]])
        assert reopened.n_transactions == 1
        assert reopened.shard_generations == [4]

    def test_retire_before_generation(self, random_db, tmp_path):
        store = _store(random_db, tmp_path)
        retired = store.retire_before(2)
        assert retired == [0, 1]
        assert store.shard_generations == [2, 3]

    def test_retire_rejects_bad_index(self, random_db, tmp_path):
        store = _store(random_db, tmp_path)
        with pytest.raises(DataError):
            store.retire_shards([7])

    def test_retire_nothing_is_noop(self, random_db, tmp_path):
        store = _store(random_db, tmp_path)
        assert store.retire_shards([]) == 0
        assert store.n_shards == 4

    def test_retire_drops_backend_images(self, random_db, tmp_path):
        store = _store(random_db, tmp_path)
        image = tmp_path / f"{store.shard_path(0).name}.bitmap.img"
        image.write_bytes(b"stale image bytes")
        store.retire_shards([0])
        assert not image.exists()

    def test_size_cache_purged(self, random_db, tmp_path):
        store = _store(random_db, tmp_path)
        # warm the per-name size cache, then retire: stale entries
        # must not survive for a revived name
        for index in range(store.n_shards):
            store.shard_bytes(index)
        store.retire_shards([0])
        assert store.shard_bytes(0) == store.shard_path(0).stat().st_size


class TestGcOrphans:
    def test_gc_removes_only_orphans(self, random_db, tmp_path):
        store = _store(random_db, tmp_path)
        keep = {store.shard_path(i).name for i in range(4)}
        (tmp_path / "shard-07777.col").write_bytes(b"orphan")
        (tmp_path / "shard-07777.col.bitmap.img").write_bytes(b"img")
        removed = store.gc_orphans()
        assert sorted(removed) == [
            "shard-07777.col",
            "shard-07777.col.bitmap.img",
        ]
        assert {p.name for p in tmp_path.glob("shard-*")} == keep

    def test_dry_run_deletes_nothing(self, random_db, tmp_path):
        store = _store(random_db, tmp_path)
        orphan = tmp_path / "shard-07777.col"
        orphan.write_bytes(b"orphan")
        removed = store.gc_orphans(dry_run=True)
        assert removed == ["shard-07777.col"]
        assert orphan.exists()

    def test_live_images_survive(self, random_db, tmp_path):
        store = _store(random_db, tmp_path)
        image = tmp_path / f"{store.shard_path(0).name}.bitmap.img"
        image.write_bytes(b"live image")
        assert store.gc_orphans() == []
        assert image.exists()
