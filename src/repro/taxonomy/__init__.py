"""Taxonomy (is-a hierarchy) substrate.

The paper assumes every dataset comes with a taxonomy tree whose
leaves are the transaction items; mining contrasts correlations of the
same itemset across the tree's abstraction levels.
"""

from repro.taxonomy.io import load_taxonomy, save_taxonomy, taxonomy_to_dict
from repro.taxonomy.node import ROOT_NAME, TaxonomyNode
from repro.taxonomy.rebalance import (
    contract_levels,
    min_leaf_depth,
    rebalance_with_copies,
    truncate,
)
from repro.taxonomy.tree import Taxonomy

__all__ = [
    "Taxonomy",
    "TaxonomyNode",
    "ROOT_NAME",
    "rebalance_with_copies",
    "truncate",
    "contract_levels",
    "min_leaf_depth",
    "load_taxonomy",
    "save_taxonomy",
    "taxonomy_to_dict",
]
