"""Statistical post-validation of mined patterns (chi-square).

The paper's related work pairs Lift with "a chi-square test for
statistical significance" (Brin et al. [3]).  Chi-square shares the
expectation-based family's N-sensitivity (Table 1), which is why it
cannot *drive* the mining — but once flipping patterns are found with
a null-invariant measure, it answers a different, legitimate
question: *is the observed co-occurrence at each level distinguishable
from independence, given this database?*  This module provides that
post-validation step.

For k-itemsets with k > 2 the 2x2 test does not directly apply; the
conservative convention used here tests every pair inside the itemset
and reports the *weakest* evidence (largest p-value) — an itemset is
only called significant when all of its pairwise co-occurrences are.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from scipy.stats import chi2 as chi2_distribution

from repro.core.measures import chi_square
from repro.core.patterns import FlippingPattern
from repro.data.database import TransactionDatabase
from repro.data.vertical import VerticalIndex
from repro.errors import ConfigError

__all__ = [
    "chi_square_test",
    "LinkSignificance",
    "pattern_significance",
    "significant_patterns",
]


def chi_square_test(
    sup_a: int, sup_b: int, sup_ab: int, n_transactions: int
) -> tuple[float, float]:
    """Pearson chi-square statistic and p-value for one item pair.

    One degree of freedom (2x2 contingency).  Returns
    ``(statistic, p_value)``.
    """
    statistic = chi_square(sup_a, sup_b, sup_ab, n_transactions)
    p_value = float(chi2_distribution.sf(statistic, df=1))
    return statistic, p_value


@dataclass(frozen=True)
class LinkSignificance:
    """Chi-square verdict for one level of a flipping chain.

    ``statistic`` / ``p_value`` are the *weakest pair*'s (largest p)
    inside the itemset — the conservative k-ary reading.
    """

    level: int
    itemset: tuple[int, ...]
    names: tuple[str, ...]
    statistic: float
    p_value: float

    def is_significant(self, alpha: float = 0.05) -> bool:
        return self.p_value <= alpha


def pattern_significance(
    database: TransactionDatabase,
    pattern: FlippingPattern,
    index: VerticalIndex | None = None,
) -> list[LinkSignificance]:
    """Chi-square evidence for every level of one pattern's chain.

    Parameters
    ----------
    database:
        The database the pattern was mined from.
    pattern:
        A mined :class:`FlippingPattern`.
    index:
        Optional pre-built :class:`VerticalIndex` (reused across many
        patterns by :func:`significant_patterns`).
    """
    if index is None:
        index = VerticalIndex(database)
    n = database.n_transactions
    out: list[LinkSignificance] = []
    for link in pattern.links:
        supports = {
            node: index.support_of_node(link.level, node)
            for node in link.itemset
        }
        worst_stat = float("inf")
        worst_p = 0.0
        for a, b in itertools.combinations(link.itemset, 2):
            sup_ab = index.support(link.level, (a, b))
            statistic, p_value = chi_square_test(
                supports[a], supports[b], sup_ab, n
            )
            if p_value > worst_p:
                worst_p = p_value
                worst_stat = statistic
        out.append(
            LinkSignificance(
                level=link.level,
                itemset=link.itemset,
                names=link.names,
                statistic=worst_stat,
                p_value=worst_p,
            )
        )
    return out


def significant_patterns(
    database: TransactionDatabase,
    patterns: Sequence[FlippingPattern],
    alpha: float = 0.05,
) -> list[tuple[FlippingPattern, list[LinkSignificance]]]:
    """The patterns whose *every* chain level passes the chi-square
    test at ``alpha``, with their per-level evidence.

    A flipping pattern asserts a sign contrast at every level; the
    conservative post-validation therefore requires departure from
    independence at every level too.
    """
    if not 0.0 < alpha < 1.0:
        raise ConfigError(f"alpha must be in (0, 1), got {alpha}")
    index = VerticalIndex(database)
    kept = []
    for pattern in patterns:
        evidence = pattern_significance(database, pattern, index=index)
        if all(link.is_significant(alpha) for link in evidence):
            kept.append((pattern, evidence))
    return kept
