"""R-interesting pruning of generalized rules (Srikant & Agrawal [17]).

A generalized rule is redundant when its statistics are just what its
*ancestor* rule predicts: if ``{clothes} -> {footwear}`` holds with
confidence c, then ``{jackets} -> {footwear}`` with confidence ~c
says nothing new.  [17] keeps a rule only if its support or
confidence deviates from the expectation derived from an ancestor
rule by at least a factor ``R``.

Expected values follow the paper's independence-style scaling: for a
rule whose items ``z_i`` generalize to ``ẑ_i`` in the ancestor,

    E[sup]  = sup(ancestor) * prod_i  sup(z_i) / sup(ẑ_i)
    E[conf] = conf(ancestor) * prod_{i in consequent} sup(z_i) / sup(ẑ_i)

(only *strictly* generalized positions contribute a factor).

This is the redundancy-oriented use of taxonomies the paper's
Section 6 describes — it characterizes positive rules against their
generalizations, but cannot express a *sign flip*; the example
scripts contrast the two directly.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import MiningError
from repro.related.rules import AssociationRule
from repro.taxonomy.tree import Taxonomy

__all__ = ["is_r_interesting", "prune_uninteresting", "ancestor_rules"]


def _is_ancestor_or_self(
    taxonomy: Taxonomy, general: int, special: int
) -> bool:
    return general == special or general in taxonomy.ancestors(special)


def _match_generalization(
    taxonomy: Taxonomy,
    special: Sequence[int],
    general: Sequence[int],
) -> list[tuple[int, int]] | None:
    """Greedy position matching of a specialized itemset side against
    a candidate ancestor side; returns (special, general) pairs or
    None when the sides do not correspond 1:1."""
    if len(special) != len(general):
        return None
    remaining = list(general)
    pairs: list[tuple[int, int]] = []
    for item in special:
        match = next(
            (g for g in remaining if _is_ancestor_or_self(taxonomy, g, item)),
            None,
        )
        if match is None:
            return None
        remaining.remove(match)
        pairs.append((item, match))
    return pairs


def ancestor_rules(
    taxonomy: Taxonomy,
    rule: AssociationRule,
    rules: Sequence[AssociationRule],
) -> list[AssociationRule]:
    """All rules in ``rules`` that are strict generalizations of
    ``rule`` (each side matches 1:1 by ancestor-or-equal, with at
    least one strict generalization)."""
    out = []
    for other in rules:
        if other is rule:
            continue
        left = _match_generalization(
            taxonomy, rule.antecedent, other.antecedent
        )
        right = _match_generalization(
            taxonomy, rule.consequent, other.consequent
        )
        if left is None or right is None:
            continue
        if any(s != g for s, g in left + right):
            out.append(other)
    return out


def is_r_interesting(
    taxonomy: Taxonomy,
    rule: AssociationRule,
    ancestor: AssociationRule,
    single_supports: Mapping[int, int],
    r: float,
) -> bool:
    """Does ``rule`` deviate from ``ancestor``'s prediction by >= R?

    True when either its support or its confidence is at least
    ``r`` times the value expected from the ancestor rule.
    """
    if r < 1.0:
        raise MiningError(f"interest factor R must be >= 1, got {r}")
    left = _match_generalization(
        taxonomy, rule.antecedent, ancestor.antecedent
    )
    right = _match_generalization(
        taxonomy, rule.consequent, ancestor.consequent
    )
    if left is None or right is None:
        raise MiningError(f"{ancestor} is not an ancestor of {rule}")

    def ratio(pairs: list[tuple[int, int]]) -> float:
        value = 1.0
        for special, general in pairs:
            if special == general:
                continue
            try:
                value *= single_supports[special] / single_supports[general]
            except KeyError as exc:
                raise MiningError(
                    f"missing single-item support for node {exc}"
                ) from None
        return value

    expected_support = ancestor.support * ratio(left) * ratio(right)
    expected_confidence = ancestor.confidence * ratio(right)
    return (
        rule.support >= r * expected_support
        or rule.confidence >= r * expected_confidence
    )


def prune_uninteresting(
    taxonomy: Taxonomy,
    rules: Sequence[AssociationRule],
    single_supports: Mapping[int, int],
    r: float = 1.1,
) -> list[AssociationRule]:
    """Keep rules with no ancestors in the set, or R-interesting with
    respect to every ancestor present (the conservative reading of
    [17]'s "close ancestors" — an intermediate pruned ancestor can
    only make the expectation *less* accurate)."""
    kept: list[AssociationRule] = []
    for rule in rules:
        parents = ancestor_rules(taxonomy, rule, rules)
        if not parents or all(
            is_r_interesting(taxonomy, rule, parent, single_supports, r)
            for parent in parents
        ):
            kept.append(rule)
    return kept
