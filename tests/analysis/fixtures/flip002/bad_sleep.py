"""Known-bad: sleeping and shelling out on the event loop."""

import subprocess
import time


async def handler(payload):
    time.sleep(0.5)  # FLIP002
    return payload


async def run_tool(args):
    return subprocess.run(args, check=False)  # FLIP002
