"""Incremental delta mining over a growing shard store.

The batch path re-mines the whole store on every change; this module
keeps mining results fresh while paying only for what changed.  An
:class:`IncrementalMiner` owns three pieces of durable state:

* a :class:`~repro.data.shards.ShardedTransactionStore` that grows
  through ``append_batch`` — deltas land in brand-new shard files and
  the existing shards (and anything derived from them) stay valid;
* a :class:`~repro.core.counting.DeltaCounter`, whose cached global
  node/itemset supports are maintained exactly under deltas by
  counting the *delta shards only* (the SON merge applied over time);
* the last :class:`~repro.core.patterns.MiningResult` together with
  the resolved thresholds it was mined under.

``update(transactions)`` appends the delta and re-runs the full
generate → count → label → prune pipeline through a fresh
:class:`~repro.core.flipper.FlipperMiner` over the shared counter.
The sweep is exact and byte-identical to a from-scratch mine of the
concatenated database by construction — every stage sees the same
exact global supports — while the count stage, the only stage whose
cost scales with the dataset, degenerates to dict lookups for every
(h,k)-cell whose candidates were already counted: only supports that
actually changed (the delta shards' contributions, folded in by
``refresh``) and candidates never seen before touch transaction data.

Two run modes are reported in ``result.config["incremental"]``:

* ``"incremental"`` — resolved thresholds unchanged; cached counts
  and, for an empty delta, the previous result itself are reused;
* ``"full"`` — the thresholds *shifted* (fractional minimum supports
  re-resolved against a changed transaction count), so nothing mined
  earlier can be trusted and the update falls back to a full re-mine
  (support caches are threshold-independent and survive even this).

With ``window_shards=`` / ``window_rows=`` the miner runs *windowed*:
each :meth:`~IncrementalMiner.update` appends the delta, retires the
oldest shards that fell out of the window (exact count subtraction
through :meth:`~repro.core.counting.DeltaCounter.retire`), and
re-mines — byte-identical to a cold mine of only the in-window
shards, which the engine parity tests assert.  A step that retired
shards reports mode ``"windowed"`` (or ``"full"`` when fractional
thresholds shifted with the shrunken N).
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path

from repro.core.counting import DeltaCounter
from repro.core.measures import Measure, get_measure
from repro.core.patterns import MiningResult
from repro.core.thresholds import ResolvedThresholds, Thresholds
from repro.data.database import TransactionDatabase
from repro.data.shards import (
    ShardedTransactionStore,
    open_or_partition_store,
)
from repro.errors import ConfigError
from repro.obs import catalog
from repro.obs.tracing import trace_span

__all__ = ["IncrementalMiner"]


class IncrementalMiner:
    """Keep flipping-pattern results fresh under streaming deltas.

    Parameters
    ----------
    database:
        The starting transactions: a :class:`ShardedTransactionStore`
        (used in place, and grown by :meth:`update`) or an in-memory
        :class:`TransactionDatabase` (partitioned into ``partitions``
        on-disk shards under ``shard_dir`` or a temporary directory).
    thresholds:
        γ, ε and per-level minimum supports.  Absolute counts keep
        updates on the incremental path; fractional supports shift
        with the transaction count, forcing the full-re-mine fallback.
    measure, pruning, max_k:
        Passed through to every underlying mining run.
    backend:
        Inner per-shard backend name (``bitmap``/``horizontal``/
        ``numpy``), or an existing :class:`DeltaCounter` to adopt
        (it must count the same store; its caches are reused).
    workers, chunk_size:
        Partitioned-executor configuration for the underlying runs.
    memory_budget_mb:
        Resident-shard-backend budget of the counter's pool (ignored
        when adopting an existing counter, which carries its own).
    window_shards, window_rows:
        Sliding-window bounds enforced by :meth:`update`.  With
        ``window_shards=W`` at most the newest ``W`` shards survive a
        step; with ``window_rows=R`` the oldest shards are retired as
        long as the survivors still hold at least ``R`` rows (shards
        retire whole, so the window covers the most recent >= R
        rows).  The newest shard is never retired.  Both may be set;
        whichever retires more wins.
    """

    def __init__(
        self,
        database: TransactionDatabase | ShardedTransactionStore,
        thresholds: Thresholds,
        *,
        measure: str | Measure = "kulczynski",
        pruning: object | None = None,
        backend: str | DeltaCounter = "bitmap",
        workers: int | None = None,
        chunk_size: int | None = None,
        max_k: int | None = None,
        partitions: int | None = None,
        memory_budget_mb: float | None = None,
        shard_dir: str | Path | None = None,
        window_shards: int | None = None,
        window_rows: int | None = None,
    ) -> None:
        if window_shards is not None and window_shards < 1:
            raise ConfigError(
                f"window_shards must be >= 1, got {window_shards}"
            )
        if window_rows is not None and window_rows < 1:
            raise ConfigError(
                f"window_rows must be >= 1, got {window_rows}"
            )
        self._window_shards = window_shards
        self._window_rows = window_rows
        store, self._shard_tmpdir = open_or_partition_store(
            database,
            partitions,
            shard_dir,
            tmp_prefix="repro-delta-shards-",
        )
        self._store = store
        if isinstance(backend, DeltaCounter):
            if backend.store is not store:
                raise ConfigError(
                    "the DeltaCounter counts a different store than the "
                    "one being mined; build it from the same "
                    "ShardedTransactionStore"
                )
            if memory_budget_mb is not None:
                raise ConfigError(
                    "memory_budget_mb configures a counter the miner "
                    "builds; pass it to your DeltaCounter instead"
                )
            self._counter = backend
        else:
            self._counter = DeltaCounter(
                store, inner=backend, memory_budget_mb=memory_budget_mb
            )
        self._thresholds = thresholds
        self._measure = get_measure(measure)
        self._pruning = pruning
        self._workers = workers
        self._chunk_size = chunk_size
        self._max_k = max_k
        self._last_result: MiningResult | None = None
        self._last_resolved: ResolvedThresholds | None = None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def store(self) -> ShardedTransactionStore:
        return self._store

    @property
    def counter(self) -> DeltaCounter:
        return self._counter

    @property
    def last_result(self) -> MiningResult | None:
        """The most recent mining result (``None`` before the first)."""
        return self._last_result

    def seed(self, result: MiningResult, resolved: ResolvedThresholds) -> None:
        """Adopt a result already mined over the current store state
        (lets :meth:`~repro.core.flipper.FlipperMiner.update` hand over
        its first full mine instead of re-paying it)."""
        self._last_result = result
        self._last_resolved = resolved

    def _resolve(self) -> ResolvedThresholds:
        return self._thresholds.resolve(
            self._store.taxonomy.height, self._store.n_transactions
        )

    # ------------------------------------------------------------------
    # mining
    # ------------------------------------------------------------------

    def mine(self) -> MiningResult:
        """Full mine of the current store (fills the counter caches)."""
        return self._run(
            mode="initial",
            delta_shards=0,
            delta_rows=0,
            resolved=self._resolve(),
        )

    def update(self, transactions: Iterable[Iterable[str]]) -> MiningResult:
        """Append a delta batch and return fresh, exact results.

        The patterns are byte-identical to a from-scratch mine of the
        grown store (of the in-window shards, in windowed mode); only
        the delta shards (and never-seen candidates) are counted
        against transaction data.  An empty delta that retires nothing
        returns the previous result unchanged.
        """
        with trace_span(catalog.SPAN_UPDATE):
            return self._update(transactions)

    def _retire_out_of_window(self) -> tuple[int, int]:
        """Retire the oldest shards that fell out of the window;
        returns ``(shards, rows)`` retired (``(0, 0)`` unwindowed)."""
        if self._window_shards is None and self._window_rows is None:
            return 0, 0
        sizes = self._store.shard_sizes
        n_shards = len(sizes)
        remaining = self._store.n_transactions
        drop = 0
        while drop < n_shards - 1:  # the newest shard always survives
            if (
                self._window_shards is not None
                and n_shards - drop > self._window_shards
            ):
                remaining -= sizes[drop]
                drop += 1
                continue
            if (
                self._window_rows is not None
                and remaining - sizes[drop] >= self._window_rows
            ):
                remaining -= sizes[drop]
                drop += 1
                continue
            break
        if drop == 0:
            return 0, 0
        rows = self._counter.retire(range(drop))
        return drop, rows

    def _update(
        self, transactions: Iterable[Iterable[str]]
    ) -> MiningResult:
        new_shards = self._store.append_batch(transactions)
        delta_rows = sum(
            self._store.shard_sizes[index] for index in new_shards
        )
        retired_shards, retired_rows = self._retire_out_of_window()
        self._counter.refresh()
        resolved = self._resolve()
        if (
            not new_shards
            and retired_shards == 0
            and self._last_result is not None
            and resolved == self._last_resolved
        ):
            # Nothing changed: the previous result is still exact.
            # Share patterns/stats but annotate a *copied* config, so
            # the result the caller already holds keeps its metadata.
            result = MiningResult(
                patterns=self._last_result.patterns,
                stats=self._last_result.stats,
                config=dict(self._last_result.config),
            )
            self._annotate(
                result,
                mode="noop",
                delta_shards=0,
                delta_rows=0,
                cache_hits=0,
                cache_misses=0,
            )
            return result
        mode = "windowed" if retired_shards else "incremental"
        if (
            self._last_resolved is not None
            and resolved != self._last_resolved
        ):
            # Fractional thresholds re-resolved against the changed N:
            # nothing mined earlier can be reused — full re-mine.
            mode = "full"
        return self._run(
            mode=mode,
            delta_shards=len(new_shards),
            delta_rows=delta_rows,
            resolved=resolved,
            retired_shards=retired_shards,
            retired_rows=retired_rows,
        )

    def _run(
        self,
        mode: str,
        delta_shards: int,
        delta_rows: int,
        resolved: ResolvedThresholds,
        retired_shards: int = 0,
        retired_rows: int = 0,
    ) -> MiningResult:
        # Local import: core.flipper imports the engine package.
        from repro.core.flipper import FlipperMiner

        hits_before = self._counter.cache_hits
        misses_before = self._counter.cache_misses
        miner = FlipperMiner(
            self._store,
            self._thresholds,
            measure=self._measure,
            pruning=self._pruning,  # type: ignore[arg-type]
            backend=self._counter,
            executor="partitioned",
            workers=self._workers,
            chunk_size=self._chunk_size,
            max_k=self._max_k,
        )
        result = miner.mine()
        self._annotate(
            result,
            mode=mode,
            delta_shards=delta_shards,
            delta_rows=delta_rows,
            cache_hits=self._counter.cache_hits - hits_before,
            cache_misses=self._counter.cache_misses - misses_before,
            retired_shards=retired_shards,
            retired_rows=retired_rows,
        )
        self._last_result = result
        # Record the thresholds the run above was actually mined
        # under — re-resolving here would race a concurrent append
        # between the resolve and the mine.
        self._last_resolved = resolved
        return result

    def _annotate(
        self,
        result: MiningResult,
        *,
        mode: str,
        delta_shards: int,
        delta_rows: int,
        cache_hits: int,
        cache_misses: int,
        retired_shards: int = 0,
        retired_rows: int = 0,
    ) -> None:
        incremental: dict[str, object] = {
            "mode": mode,
            "n_shards": self._store.n_shards,
            "counted_shards": self._counter.counted_shards,
            "delta_shards": delta_shards,
            "delta_rows": delta_rows,
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "cached_itemsets": self._counter.cached_itemsets,
            "pool_rebuilds": self._counter.pool.rebuilds,
            "pool_image_admits": self._counter.pool.image_admits,
            "retired_shards": retired_shards,
            "retired_rows": retired_rows,
        }
        if self._window_shards is not None:
            incremental["window_shards"] = self._window_shards
        if self._window_rows is not None:
            incremental["window_rows"] = self._window_rows
        result.config["incremental"] = incremental
