"""Transaction data substrate: databases, vertical indexes, IO."""

from repro.data.database import TransactionDatabase
from repro.data.io import (
    format_basket_text,
    load_database,
    load_transactions,
    parse_basket_text,
    save_transactions,
)
from repro.data.profile import (
    DatabaseProfile,
    LevelProfile,
    profile_database,
)
from repro.data.shards import ShardedTransactionStore
from repro.data.vertical import VerticalIndex

__all__ = [
    "TransactionDatabase",
    "ShardedTransactionStore",
    "VerticalIndex",
    "DatabaseProfile",
    "LevelProfile",
    "profile_database",
    "parse_basket_text",
    "format_basket_text",
    "load_transactions",
    "save_transactions",
    "load_database",
]
