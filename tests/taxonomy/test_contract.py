"""Unit tests for level contraction (paper §2.2 level-subset queries)."""

from __future__ import annotations

import pytest

from repro import (
    Taxonomy,
    Thresholds,
    TransactionDatabase,
    contract_levels,
    mine_flipping_patterns,
)
from repro.errors import TaxonomyError


@pytest.fixture
def four_level_tax():
    return Taxonomy.from_dict(
        {
            "a": {
                "a1": {"a1x": ["a1x1", "a1x2"], "a1y": ["a1y1"]},
                "a2": {"a2x": ["a2x1", "a2x2"]},
            },
            "b": {
                "b1": {"b1x": ["b1x1", "b1x2"]},
                "b2": {"b2x": ["b2x1"]},
            },
        }
    )


class TestStructure:
    def test_identity_contraction(self, four_level_tax):
        new, renames = contract_levels(four_level_tax, [1, 2, 3, 4])
        assert new.height == 4
        assert renames == {}
        assert len(new.leaf_ids) == len(four_level_tax.leaf_ids)

    def test_drop_middle_level(self, four_level_tax):
        new, renames = contract_levels(four_level_tax, [1, 2, 4])
        assert new.height == 3
        assert renames == {}
        # level-3 categories are spliced out: a1x1's parent is now a1
        leaf = new.node_by_name("a1x1")
        assert new.name_of(leaf.parent_id) == "a1"

    def test_drop_bottom_absorbs_items(self, four_level_tax):
        new, renames = contract_levels(four_level_tax, [1, 3])
        assert new.height == 2
        # every level-4 item renamed to its level-3 ancestor
        assert renames["a1x1"] == "a1x"
        assert renames["a1x2"] == "a1x"
        assert renames["b2x1"] == "b2x"
        # level-2 spliced: a1x hangs under a
        node = new.node_by_name("a1x")
        assert new.name_of(node.parent_id) == "a"

    def test_single_level(self, four_level_tax):
        new, renames = contract_levels(four_level_tax, [2])
        assert new.height == 1
        assert set(renames.values()) <= {
            four_level_tax.name_of(n)
            for n in four_level_tax.nodes_at_level(2)
        }

    def test_order_and_duplicates_ignored(self, four_level_tax):
        a, _ = contract_levels(four_level_tax, [4, 1, 4])
        b, _ = contract_levels(four_level_tax, [1, 4])
        assert a.height == b.height == 2
        assert {n.name for n in a.iter_nodes()} == {
            n.name for n in b.iter_nodes()
        }


class TestValidation:
    def test_empty_levels(self, four_level_tax):
        with pytest.raises(TaxonomyError, match="at least one"):
            contract_levels(four_level_tax, [])

    def test_out_of_range(self, four_level_tax):
        with pytest.raises(TaxonomyError, match="out of range"):
            contract_levels(four_level_tax, [0, 2])
        with pytest.raises(TaxonomyError, match="out of range"):
            contract_levels(four_level_tax, [1, 9])

    def test_rebalanced_tree_rejected(self):
        unbalanced = Taxonomy.from_dict(
            {"deep": {"mid": ["leaf"]}, "shallow": None}
        )
        database = TransactionDatabase([["leaf", "shallow"]], unbalanced)
        with pytest.raises(TaxonomyError, match="original taxonomy"):
            contract_levels(database.taxonomy, [1, 2])


class TestUnbalancedInput:
    def test_dropped_level_leaf_survives(self):
        taxonomy = Taxonomy.from_dict(
            {"deep": {"mid": ["leaf"]}, "shallow": None}
        )
        # drop level 2: "mid" is spliced, but the *item* "shallow"
        # (a level-1 leaf) and "leaf" must both survive
        new, renames = contract_levels(taxonomy, [1, 3])
        names = {node.name for node in new.iter_nodes()}
        assert {"deep", "shallow", "leaf"} <= names
        assert renames == {}


class TestMiningOnContractedLevels:
    def test_levels_1_and_3_of_the_toy(self, example3_tax):
        """Mining the toy data on levels {1, 3} only.

        Flips are *level-specific*: the paper's {a11, b11} pattern is
        ``+-+`` over all three levels, so with level 2 removed its
        chain reads ``++`` — no longer a flip.  What does flip over
        {1, 3} are the item pairs that anti-correlate under the
        positively-correlated roots (e.g. {a12, b22})."""
        from repro.datasets import example3_transactions

        contracted, renames = contract_levels(example3_tax, [1, 3])
        assert renames == {}
        database = TransactionDatabase(example3_transactions(), contracted)
        result = mine_flipping_patterns(
            database,
            Thresholds(gamma=0.6, epsilon=0.35, min_support=1),
        )
        found = {frozenset(p.leaf_names) for p in result.patterns}
        assert frozenset({"a11", "b11"}) not in found
        assert frozenset({"a12", "b22"}) in found
        for pattern in result.patterns:
            assert pattern.height == 2
            assert pattern.signature == "+-"