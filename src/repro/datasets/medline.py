"""MEDLINE dataset simulator.

The paper mines 640,000 MEDLINE 2010 citations, each annotated with
MeSH topics, restricted to the top three levels of the MeSH tree.
MEDLINE baseline dumps and the 2010 MeSH tree are access-gated bulk
downloads, so this module rebuilds an equivalent workload: a wide,
shallow MeSH-like hierarchy (12 top categories, 160 leaf topics),
multi-topic "citations", themed research noise, and the Fig. 12
patterns planted with known signatures:

* ``(withdrawal syndrome, temperance)``  ``- + -`` — substance-related
  disorders and temperance are studied together (mid-level positive),
  but the specific withdrawal-syndrome/temperance combination is
  underrepresented (leaf negative), as is the pair of their top
  categories;
* ``(biofeedback, behavior therapy)``    ``+ - +`` — two "unrelated"
  mid-level areas (psychophysiology / psychotherapy) whose specific
  sub-topics are in fact studied together.

``scale=1.0`` generates ≈64K citations (1/10th of the paper's corpus,
a documented scaling); ``scale=10`` reaches the full 640K.
"""

from __future__ import annotations

import random

from repro.core.thresholds import Thresholds
from repro.data.database import TransactionDatabase
from repro.datasets.planted import BlockPlan, plant_npn_chain, plant_pnp_chain
from repro.taxonomy.tree import Taxonomy

__all__ = [
    "medline_taxonomy",
    "generate_medline",
    "MEDLINE_THRESHOLDS",
    "MEDLINE_PLANTED",
]

#: Table 4 row M: (gamma, epsilon, theta1..theta3).
MEDLINE_THRESHOLDS = Thresholds(
    gamma=0.40, epsilon=0.10, min_support=[0.001, 0.0005, 0.0001]
)

#: Planted chains (level-1 -> level-3 signatures).
MEDLINE_PLANTED: list[tuple[tuple[str, str], str]] = [
    (("withdrawal syndrome", "temperance"), "-+-"),
    (("biofeedback", "behavior therapy"), "+-+"),
]

#: MeSH-like top categories (paper: 16 MeSH branches; we keep 12).
_GENERIC_CATEGORIES = [
    "anatomy",
    "organisms",
    "diseases",
    "chemicals and drugs",
    "analytical techniques",
    "health care",
    "biological sciences",
    "information science",
    "anthropology",
    "technology and food",
]


def _mesh_tree() -> dict:
    """The full nested hierarchy, with the pattern-bearing branches
    spelled out and generic branches generated."""
    tree: dict = {
        "mental disorders": {
            "substance-related disorders": [
                "withdrawal syndrome",
                "alcohol-related disorders",
                "opioid dependence",
                "drug overdose",
            ],
            "mood disorders": [
                "major depression",
                "bipolar disorder",
                "dysthymia",
                "seasonal affective disorder",
            ],
        },
        "human activities": {
            "health behavior": [
                "temperance",
                "diet habits",
                "exercise",
                "smoking cessation",
            ],
            "leisure activities": [
                "sports",
                "travel",
                "gardening activity",
                "reading activity",
            ],
        },
        "psychological phenomena": {
            "psychophysiology": [
                "biofeedback",
                "arousal",
                "sleep physiology",
                "stress physiology",
            ],
            "cognition": [
                "memory",
                "attention",
                "decision making",
                "problem solving",
            ],
        },
        "behavioral disciplines": {
            "psychotherapy": [
                "behavior therapy",
                "cognitive therapy",
                "family therapy",
                "psychoanalysis",
            ],
            "behavioral research": [
                "ethology",
                "psychometrics",
                "survey methods",
                "case studies",
            ],
        },
    }
    for category in _GENERIC_CATEGORIES[: 12 - len(tree)]:
        tree[category] = {
            f"{category} / branch {b}": [
                f"{category} topic {b}.{t}" for t in range(4)
            ]
            for b in range(4)
        }
    return tree


def medline_taxonomy() -> Taxonomy:
    """The 3-level MeSH-like topic hierarchy (12 x 4ish x 4)."""
    return Taxonomy.from_dict(_mesh_tree())


def _noise_blocks(
    plan: BlockPlan,
    rng: random.Random,
    n_citations: int,
    protected_categories: set[str],
    taxonomy: Taxonomy,
) -> None:
    """Themed citations: topics drawn within one subcategory, with an
    occasional cross-category topic.  Subcategories on planted chains
    are skipped entirely so the recipes stay exact."""
    pools: list[list[str]] = []
    for node in taxonomy.iter_nodes():
        if (
            node.level != 2
            or node.is_copy
            or node.name in protected_categories
        ):
            continue
        leaves = [
            taxonomy.name_of(leaf)
            for leaf in taxonomy.item_leaves(node.node_id)
        ]
        pools.append(leaves)
    for _ in range(n_citations):
        pool = rng.choice(pools)
        size = 1 + min(rng.getrandbits(2), len(pool) - 1)
        citation = rng.sample(pool, size)
        if rng.random() < 0.2:
            citation.append(rng.choice(rng.choice(pools)))
        plan.add(citation, 1)


def generate_medline(
    scale: float = 1.0, seed: int = 17, extra_chains: int = 4
) -> TransactionDatabase:
    """Generate the simulated MEDLINE database.

    ``scale=1.0`` ≈ 64K citations (1/10th of the paper's 640K corpus —
    the documented scaling for pure-Python runtimes); ``scale=10.0``
    reproduces the full size.  ``extra_chains`` (0..4) plants
    additional chains on the generic MeSH branches, one department
    pair each.
    """
    taxonomy = medline_taxonomy()
    rng = random.Random(seed)
    base = max(1, round(48 * scale))
    plan = BlockPlan()
    chains: list[tuple[str, str, str]] = [
        (x, y, sig) for (x, y), sig in MEDLINE_PLANTED
    ]
    included_generic = _GENERIC_CATEGORIES[: 12 - 4]  # the 8 in the tree
    half = len(included_generic) // 2
    for index in range(min(max(0, extra_chains), half)):
        category_x = included_generic[index]
        category_y = included_generic[index + half]
        signature = "+-+" if index % 2 == 0 else "-+-"
        chains.append(
            (
                f"{category_x} topic 0.0",
                f"{category_y} topic 0.1",
                signature,
            )
        )
    avoid = frozenset(name for x, y, _sig in chains for name in (x, y))
    protected_categories: set[str] = set()
    for leaf_x, leaf_y, signature in chains:
        for name in (leaf_x, leaf_y):
            node = taxonomy.node_by_name(name)
            protected_categories.add(taxonomy.node(node.parent_id).name)
        if signature == "+-+":
            plant_pnp_chain(
                plan,
                taxonomy,
                leaf_x,
                leaf_y,
                base=base,
                avoid=avoid,
                cousin_blocks=90,
            )
        else:
            plant_npn_chain(
                plan, taxonomy, leaf_x, leaf_y, base=base, avoid=avoid
            )
    _noise_blocks(
        plan, rng, round(12_000 * scale), protected_categories, taxonomy
    )
    transactions = plan.materialize(rng)
    return TransactionDatabase(transactions, taxonomy)
