"""Known-bad: clock and RNG values baked into fingerprints."""

import random
import time


def taxonomy_fingerprint(edges):
    return f"{len(edges)}-{time.time()}"  # FLIP005


def shard_header(rows):
    return {"rows": len(rows), "nonce": random.random()}  # FLIP005
