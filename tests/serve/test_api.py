"""The versioned ``/v1`` route layer: envelopes, cursors, ETags.

These tests drive :class:`~repro.serve.api.PatternAPI` directly —
the exact dispatch both servers share — so they cover the wire
contract without socket noise.  A few closing tests then assert the
same behaviour over real HTTP through each front end.
"""

from __future__ import annotations

import json

import pytest

from repro.serve import (
    PatternAPI,
    PatternStore,
    Query,
    QueryEngine,
    UpdateIntent,
    decode_cursor,
    encode_cursor,
)
from repro.serve.api import ApiError


@pytest.fixture
def api(corpus_store):
    return PatternAPI(QueryEngine(corpus_store, cache_size=8))


@pytest.fixture
def writable(live_miner):
    store = PatternStore.build(live_miner.mine())
    return PatternAPI(QueryEngine(store), miner=live_miner)


def _json(response):
    assert response.payload is not None
    return json.loads(response.encode())


def _envelope(response, code):
    """Every 4xx/5xx is the uniform error envelope, nothing else."""
    payload = _json(response)
    assert set(payload) == {"error"}
    error = payload["error"]
    assert set(error) <= {"code", "message", "detail"}
    assert error["code"] == code
    assert isinstance(error["message"], str) and error["message"]
    return error


class TestErrorEnvelope:
    def test_unknown_route_404(self, api):
        response = api.dispatch("GET", "/v1/nope")
        assert response.status == 404
        error = _envelope(response, "not_found")
        assert error["detail"]["path"] == "/nope"

    def test_missing_pattern_404(self, api):
        response = api.dispatch("GET", "/v1/patterns/999-999")
        assert response.status == 404
        error = _envelope(response, "not_found")
        assert error["detail"]["id"] == "999-999"

    def test_unknown_param_400(self, api):
        response = api.dispatch("GET", "/v1/patterns?colour=red")
        assert response.status == 400
        error = _envelope(response, "bad_request")
        assert "unknown query parameter" in error["message"]
        # the message teaches the caller the full legal surface
        assert "cursor" in error["message"]

    def test_duplicate_param_400(self, api):
        response = api.dispatch("GET", "/v1/patterns?limit=1&limit=2")
        assert response.status == 400
        error = _envelope(response, "bad_request")
        assert "duplicate query parameter" in error["message"]

    def test_stale_expect_version_409(self, api):
        response = api.dispatch("GET", "/v1/patterns?expect_version=999")
        assert response.status == 409
        error = _envelope(response, "conflict")
        assert "stale store version" in error["message"]

    def test_params_forbidden_off_the_query_route(self, api):
        for target in ("/v1/healthz?x=1", "/v1/stats?limit=3"):
            response = api.dispatch("GET", target)
            assert response.status == 400
            _envelope(response, "bad_request")

    def test_read_only_update_409(self, api):
        response = api.dispatch("POST", "/v1/update", b'{"transactions": []}')
        assert response.status == 409
        error = _envelope(response, "read_only")
        assert "read-only" in error["message"]

    def test_update_body_validation_400(self, writable):
        cases = [
            (b"{not json", "not valid JSON"),
            (b'["rows"]', "must be"),
            (b'{"rows": []}', "unknown update body field"),
            (b'{"transactions": 3}', "must be"),
        ]
        for body, fragment in cases:
            response = writable.dispatch("POST", "/v1/update", body)
            assert response.status == 400
            error = _envelope(response, "bad_request")
            assert fragment in error["message"]

    def test_dispatch_never_raises(self, api):
        # even a hostile target resolves to an enveloped response
        for target in ("/v1//", "/v1/patterns/%00", "//", "/v1/../x"):
            response = api.dispatch("GET", target)
            assert response.status in (200, 400, 404)


class TestDeprecationPolicy:
    def test_legacy_routes_carry_deprecation_header(self, api):
        for target in ("/healthz", "/stats", "/patterns?limit=1"):
            response = api.dispatch("GET", target)
            assert response.status in (200, 304)
            assert response.headers.get("Deprecation") == "true"

    def test_v1_routes_do_not(self, api):
        for target in (
            "/v1/healthz",
            "/v1/stats",
            "/v1/patterns?limit=1",
        ):
            response = api.dispatch("GET", target)
            assert "Deprecation" not in response.headers

    def test_legacy_errors_are_deprecated_and_enveloped(self, api):
        response = api.dispatch("GET", "/patterns/999-999")
        assert response.status == 404
        assert response.headers.get("Deprecation") == "true"
        _envelope(response, "not_found")

    def test_legacy_update_response_is_deprecated(self, writable):
        intent = writable.dispatch("POST", "/update", b'{"transactions": []}')
        assert isinstance(intent, UpdateIntent)
        assert intent.versioned is False
        response = writable.run_update(intent)
        assert response.status == 200
        assert response.headers.get("Deprecation") == "true"

    def test_v1_update_response_is_not(self, writable):
        intent = writable.dispatch(
            "POST", "/v1/update", b'{"transactions": []}'
        )
        assert isinstance(intent, UpdateIntent)
        assert intent.versioned is True
        response = writable.run_update(intent)
        assert response.status == 200
        assert "Deprecation" not in response.headers


class TestSurfaceParity:
    def test_v1_drops_the_volatile_cached_flag(self, api):
        target = "patterns?sort=support&limit=5"
        legacy = _json(api.dispatch("GET", "/" + target))
        v1 = _json(api.dispatch("GET", "/v1/" + target))
        assert "cached" in legacy
        assert "cached" not in v1
        legacy.pop("cached")
        v1.pop("next_cursor", None)
        assert v1 == legacy

    def test_v1_patterns_is_a_pure_function_of_the_snapshot(self, api):
        target = "/v1/patterns?sort=support&limit=5"
        first = api.dispatch("GET", target)
        second = api.dispatch("GET", target)
        # byte-equal even though the second answer came from the
        # query cache — this is what makes /v1 byte-cacheable
        assert first.encode() == second.encode()

    def test_answers_match_the_engine(self, api, corpus_store):
        payload = _json(
            api.dispatch(
                "GET", "/v1/patterns?under=cat01&sort=support&limit=10"
            )
        )
        expected = api.engine.execute(
            Query(under_node="cat01", sort_by="support", limit=10)
        )
        assert [p["id"] for p in payload["patterns"]] == expected.ids
        assert payload["total"] == expected.total


class TestCursorPagination:
    def test_round_trip(self):
        cursor = encode_cursor(7, 40)
        assert decode_cursor(cursor) == (7, 40)

    def test_malformed_cursors_400(self, api):
        for bad in ("!!!", "eyJ2IjoxfQ", encode_cursor(1, 3) + "x"):
            response = api.dispatch("GET", f"/v1/patterns?cursor={bad}")
            assert response.status == 400, bad
            _envelope(response, "bad_cursor")
        with pytest.raises(ApiError):
            decode_cursor("@@@")

    def test_cursor_walk_covers_every_id_exactly_once(self, api, corpus_store):
        expected = api.engine.execute(Query(sort_by="support")).ids
        seen: list[str] = []
        target = "/v1/patterns?sort=support&limit=37"
        for _ in range(len(expected)):
            payload = _json(api.dispatch("GET", target))
            seen += [p["id"] for p in payload["patterns"]]
            cursor = payload.get("next_cursor")
            if cursor is None:
                assert payload["offset"] + payload["count"] == (
                    payload["total"]
                )
                break
            target = f"/v1/patterns?sort=support&limit=37&cursor={cursor}"
        assert seen == expected

    def test_cursor_and_offset_are_mutually_exclusive(self, api):
        cursor = encode_cursor(1, 5)
        response = api.dispatch(
            "GET", f"/v1/patterns?cursor={cursor}&offset=3"
        )
        assert response.status == 400
        error = _envelope(response, "bad_request")
        assert "mutually exclusive" in error["message"]

    def test_cursor_across_snapshot_swap_is_409(self, writable):
        payload = _json(writable.dispatch("GET", "/v1/patterns?limit=1"))
        cursor = encode_cursor(payload["store_version"], 0)
        intent = writable.dispatch(
            "POST",
            "/v1/update",
            json.dumps(
                {"transactions": [["a11", "b11"], ["a12", "b12"]]}
            ).encode(),
        )
        assert writable.run_update(intent).status == 200
        response = writable.dispatch(
            "GET", f"/v1/patterns?cursor={cursor}&limit=1"
        )
        assert response.status == 409
        error = _envelope(response, "stale_cursor")
        assert error["detail"]["cursor_version"] == payload["store_version"]
        assert error["detail"]["store_version"] > payload["store_version"]

    def test_cursor_is_rejected_on_the_legacy_surface(self, api):
        cursor = encode_cursor(1, 0)
        response = api.dispatch("GET", f"/patterns?cursor={cursor}")
        assert response.status == 400
        error = _envelope(response, "bad_request")
        assert "cursor" in error["message"]

    def test_no_cursor_without_limit_or_on_last_page(self, api):
        everything = _json(api.dispatch("GET", "/v1/patterns"))
        assert "next_cursor" not in everything
        total = everything["total"]
        last = _json(
            api.dispatch(
                "GET",
                f"/v1/patterns?limit=10&offset={total - 3}",
            )
        )
        assert "next_cursor" not in last


class TestEtagRevalidation:
    def test_etag_keyed_on_snapshot_version(self, api, corpus_store):
        response = api.dispatch("GET", "/v1/patterns?limit=1")
        etag = response.headers["ETag"]
        assert str(corpus_store.version) in etag
        repeat = api.dispatch(
            "GET",
            "/v1/patterns?limit=1",
            headers={"if-none-match": etag},
        )
        assert repeat.status == 304
        assert repeat.payload is None
        assert repeat.encode() == b""
        assert repeat.headers["ETag"] == etag

    def test_mismatched_etag_answers_in_full(self, api):
        response = api.dispatch(
            "GET",
            "/v1/patterns?limit=1",
            headers={"if-none-match": '"patterns-v999"'},
        )
        assert response.status == 200
        assert response.payload is not None

    def test_etag_moves_with_the_snapshot(self, writable):
        before = writable.dispatch("GET", "/v1/patterns").headers["ETag"]
        intent = writable.dispatch(
            "POST",
            "/v1/update",
            b'{"transactions": [["a11", "b11"], ["a12", "b12"]]}',
        )
        assert writable.run_update(intent).status == 200
        after = writable.dispatch(
            "GET",
            "/v1/patterns",
            headers={"if-none-match": before},
        )
        assert after.status == 200
        assert after.headers["ETag"] != before

    def test_legacy_surface_has_no_etag(self, api):
        response = api.dispatch("GET", "/patterns?limit=1")
        assert "ETag" not in response.headers


class TestOverHttp:
    """The same contract through real sockets, on both front ends."""

    @pytest.mark.parametrize("kind", ["threaded", "async"])
    def test_v1_contract_end_to_end(self, kind, corpus_store):
        import http.client

        from repro.serve import AsyncPatternServer, PatternServer

        make = PatternServer if kind == "threaded" else AsyncPatternServer
        offline = PatternAPI(QueryEngine(corpus_store, cache_size=0))
        with make(corpus_store) as server:
            conn = http.client.HTTPConnection(
                server.host, server.port, timeout=10
            )
            try:
                target = "/v1/patterns?sort=support&limit=25"
                conn.request("GET", target)
                response = conn.getresponse()
                assert response.status == 200
                etag = response.headers["ETag"]
                body = response.read()
                assert body == offline.dispatch("GET", target).encode()
                # conditional revalidation over the same socket
                conn.request("GET", target, headers={"If-None-Match": etag})
                response = conn.getresponse()
                assert response.status == 304
                assert response.read() == b""
                # cursor continuation
                cursor = json.loads(body)["next_cursor"]
                conn.request("GET", f"{target}&cursor={cursor}")
                page = json.loads(conn.getresponse().read())
                assert page["offset"] == 25
                # enveloped errors with the legacy deprecation signal
                conn.request("GET", "/patterns/999-999")
                response = conn.getresponse()
                assert response.status == 404
                assert response.headers["Deprecation"] == "true"
                error = json.loads(response.read())["error"]
                assert error["code"] == "not_found"
            finally:
                conn.close()
