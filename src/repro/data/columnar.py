"""Binary columnar shard format and persisted backend images.

The out-of-core tier's zero-parse substrate.  Two file kinds live
next to a shard store's ``manifest.json``:

* **Columnar shards** (``shard-NNNNN.col``, magic ``FLIPCOL1``) — one
  shard's transactions in CSR layout: an ``int64`` row-offsets array
  of length ``n_rows + 1`` followed by a contiguous ``int32`` array
  of item ids.  Item ids are *local*: indexes into a per-shard item
  name table carried in the header, so a shard file is self-describing
  and lossless (duplicates and item order included) without coupling
  to global taxonomy node numbering.  Readers :func:`numpy.memmap`
  both arrays, so serving shard data costs no parsing at all.
* **Backend images** (``<shard>.img``, magic ``FLIPIMG1``) — the
  *built* counting structure of one shard (NumpyBackend level
  matrices, or BitmapBackend bitset planes packed to bytes), so a
  :class:`~repro.core.counting.ShardBackendPool` re-admit is an mmap
  plus a header check instead of a parse-and-rebuild.  The header
  carries the image format version, the backend kind, the row count,
  the source shard file's byte size and a taxonomy fingerprint; any
  mismatch invalidates the image and forces a rebuild — a stale image
  is never served.

Both formats share one container: ``magic (8 bytes) + uint32 LE
header length + UTF-8 JSON header``, padded to a 64-byte boundary,
then the raw little-endian arrays, each aligned to 64 bytes.  Writes
go through a temporary file in the same directory and ``os.replace``,
so a crash can leave at worst an ignorable temp file, never a torn
shard or image.
"""

from __future__ import annotations

import hashlib
import json
import math
import mmap
import os
import weakref
from collections.abc import Iterable
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.atomicio import atomic_write_bytes
from repro.errors import DataError
from repro.obs import catalog
from repro.obs.metrics import default_registry
from repro.taxonomy.tree import Taxonomy

__all__ = [
    "COLUMNAR_FORMAT_VERSION",
    "IMAGE_FORMAT_VERSION",
    "ColumnarShard",
    "read_backend_image",
    "taxonomy_fingerprint",
    "write_backend_image",
    "write_columnar_shard",
]

COLUMNAR_MAGIC = b"FLIPCOL1"
IMAGE_MAGIC = b"FLIPIMG1"

#: bumped whenever the on-disk layout changes; readers reject files
#: whose header declares a different version
COLUMNAR_FORMAT_VERSION = 1
IMAGE_FORMAT_VERSION = 1

#: array alignment inside both containers (cache-line friendly, and
#: a safe mmap offset granularity everywhere)
_ALIGN = 64

#: registered once at import; every map/decode below feeds these
_M_MAPPED_BYTES = default_registry().counter(catalog.COLUMNAR_MAPPED_BYTES)
_M_SHARDS_DECODED = default_registry().counter(
    catalog.COLUMNAR_SHARDS_DECODED
)


#: per-instance fingerprint cache — taxonomies are immutable after
#: construction, and every pool construction asks for the fingerprint
_FINGERPRINTS: "weakref.WeakKeyDictionary[Taxonomy, str]" = (
    weakref.WeakKeyDictionary()
)


def taxonomy_fingerprint(taxonomy: Taxonomy) -> str:
    """Stable content hash of a taxonomy's (original) tree shape.

    Computed over the canonical nested-mapping form, so it is
    invariant under rebalancing (copy nodes are not part of the
    serialized tree) and across open sessions.  Backend images carry
    it; an image built under a different taxonomy never validates.
    Memoized per instance — taxonomies never mutate after load.
    """
    cached = _FINGERPRINTS.get(taxonomy)
    if cached is not None:
        return cached
    from repro.taxonomy.io import taxonomy_to_dict

    payload = json.dumps(
        taxonomy_to_dict(taxonomy), sort_keys=True, separators=(",", ":")
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
    _FINGERPRINTS[taxonomy] = digest
    return digest


def _pad_to(size: int) -> int:
    return (size + _ALIGN - 1) // _ALIGN * _ALIGN


def _pack_header(magic: bytes, header: dict[str, Any]) -> bytes:
    payload = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    raw = magic + len(payload).to_bytes(4, "little") + payload
    return raw + b"\x00" * (_pad_to(len(raw)) - len(raw))


def _read_header(path: Path, magic: bytes) -> tuple[dict[str, Any], int]:
    """Parse a container header; returns ``(header, data_offset)``.

    A missing or unreadable file raises :class:`DataError`, so the
    public readers built on this never leak ``FileNotFoundError``.
    """
    try:
        handle = path.open("rb")
    except OSError as exc:
        raise DataError(f"cannot read {path}: {exc}") from None
    with handle:
        prefix = handle.read(len(magic) + 4)
        if prefix[: len(magic)] != magic:
            raise DataError(f"{path} is not a {magic.decode('ascii')} file")
        length = int.from_bytes(prefix[len(magic) :], "little")
        payload = handle.read(length)
    if len(payload) != length:
        raise DataError(f"{path}: truncated header")
    try:
        header = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DataError(f"{path}: corrupt header: {exc}") from exc
    if not isinstance(header, dict):
        raise DataError(f"{path}: header must be a JSON object")
    return header, _pad_to(len(magic) + 4 + length)


def _atomic_write(path: Path, chunks: list[bytes]) -> None:
    """Write a file fully in a same-directory temp, then rename it
    into place — the only mutation the directory ever observes.

    Kept as a module-level name (tests monkeypatch it for failure
    injection); the implementation is the shared helper.
    """
    atomic_write_bytes(path, chunks)


# ----------------------------------------------------------------------
# columnar shards
# ----------------------------------------------------------------------


def write_columnar_shard(
    path: str | Path, rows: list[tuple[str, ...]]
) -> None:
    """Write one shard of transactions in CSR columnar layout.

    The item name table is built in first-occurrence order, so the
    file content is a deterministic function of the rows alone.
    """
    path = Path(path)
    name_table: dict[str, int] = {}
    locals_per_row: list[list[int]] = []
    for row in rows:
        encoded = []
        for name in row:
            local = name_table.setdefault(name, len(name_table))
            encoded.append(local)
        locals_per_row.append(encoded)
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum([len(encoded) for encoded in locals_per_row], out=offsets[1:])
    items = np.fromiter(
        (local for encoded in locals_per_row for local in encoded),
        dtype=np.int32,
        count=int(offsets[-1]),
    )
    header = {
        "format": COLUMNAR_FORMAT_VERSION,
        "n_rows": len(rows),
        "n_values": int(offsets[-1]),
        "item_names": list(name_table),
    }
    head = _pack_header(COLUMNAR_MAGIC, header)
    offset_bytes = offsets.tobytes()
    pad = b"\x00" * (_pad_to(len(offset_bytes)) - len(offset_bytes))
    _atomic_write(path, [head, offset_bytes, pad, items.tobytes()])


class ColumnarShard:
    """Memory-mapped reader of one ``FLIPCOL1`` shard file.

    The header is parsed once at construction (a few hundred bytes);
    the offsets and items arrays are mapped lazily and cached, so
    repeated counting passes over the same shard touch the page cache
    only.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        header, data_offset = _read_header(self._path, COLUMNAR_MAGIC)
        if header.get("format") != COLUMNAR_FORMAT_VERSION:
            raise DataError(
                f"{self._path}: unsupported columnar format "
                f"{header.get('format')!r}"
            )
        try:
            self._n_rows = int(header["n_rows"])
            self._n_values = int(header["n_values"])
            names = header["item_names"]
        except KeyError as exc:
            raise DataError(f"{self._path}: header is missing {exc}") from None
        if self._n_rows < 0 or self._n_values < 0:
            raise DataError(f"{self._path}: negative header counts")
        self._item_names: tuple[str, ...] = tuple(str(name) for name in names)
        self._offsets_at = data_offset
        self._items_at = data_offset + _pad_to(8 * (self._n_rows + 1))
        expected = self._items_at + 4 * self._n_values
        actual = self._path.stat().st_size
        if actual < expected:
            raise DataError(
                f"{self._path}: truncated shard ({actual} bytes, "
                f"layout needs {expected})"
            )
        self._offsets: np.ndarray | None = None
        self._items: np.ndarray | None = None

    @property
    def path(self) -> Path:
        return self._path

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_values(self) -> int:
        return self._n_values

    @property
    def item_names(self) -> tuple[str, ...]:
        """Per-shard item name table (local id -> name)."""
        return self._item_names

    @property
    def offsets(self) -> np.ndarray:
        """Row offsets, ``int64[n_rows + 1]`` (mapped)."""
        if self._offsets is None:
            self._offsets = np.memmap(
                self._path,
                dtype=np.int64,
                mode="r",
                offset=self._offsets_at,
                shape=(self._n_rows + 1,),
            )
            _M_MAPPED_BYTES.inc(self._offsets.nbytes)
        return self._offsets

    @property
    def items(self) -> np.ndarray:
        """Local item ids, ``int32[n_values]`` (mapped)."""
        if self._items is None:
            if self._n_values == 0:
                self._items = np.empty(0, dtype=np.int32)
            else:
                self._items = np.memmap(
                    self._path,
                    dtype=np.int32,
                    mode="r",
                    offset=self._items_at,
                    shape=(self._n_values,),
                )
                _M_MAPPED_BYTES.inc(self._items.nbytes)
        return self._items

    def row_index(self) -> np.ndarray:
        """Row number of every value: ``int64[n_values]``.

        The gather that turns the CSR arrays into (row, item) pairs —
        the only per-value structure vectorized consumers need.
        """
        return np.repeat(
            np.arange(self._n_rows, dtype=np.int64),
            np.diff(self.offsets),
        )

    def rows(self) -> list[tuple[str, ...]]:
        """Decode back to item-name rows (the round-trip contract)."""
        _M_SHARDS_DECODED.inc()
        offsets = self.offsets
        items = self.items
        names = self._item_names
        out: list[tuple[str, ...]] = []
        for row in range(self._n_rows):
            start, stop = int(offsets[row]), int(offsets[row + 1])
            out.append(tuple(names[local] for local in items[start:stop]))
        return out

    def rows_at(self, row_indices: Iterable[int]) -> list[tuple[str, ...]]:
        """Decode only the selected rows (CSR random access).

        The point of the columnar layout for samplers: a k-row draw
        costs k row decodes, not ``n_rows``.
        """
        offsets = self.offsets
        items = self.items
        names = self._item_names
        out: list[tuple[str, ...]] = []
        for row in row_indices:
            if not 0 <= row < self._n_rows:
                raise DataError(
                    f"row {row} out of range for shard with "
                    f"{self._n_rows} row(s)"
                )
            start, stop = int(offsets[row]), int(offsets[row + 1])
            out.append(tuple(names[local] for local in items[start:stop]))
        return out


# ----------------------------------------------------------------------
# backend images
# ----------------------------------------------------------------------


def write_backend_image(
    path: str | Path,
    meta: dict[str, Any],
    arrays: list[np.ndarray],
) -> None:
    """Persist a built backend's arrays next to its shard.

    ``meta`` must carry the validation fields (``backend``,
    ``n_rows``, ``taxonomy_fingerprint``, ``source_bytes``) plus
    whatever structure the backend needs to reattach the arrays
    (level/node tables).  Array dtypes and shapes are recorded in the
    header; payloads are written aligned so readers can map them
    directly.
    """
    path = Path(path)
    header = dict(meta)
    header["format"] = IMAGE_FORMAT_VERSION
    header["arrays"] = [
        {"dtype": array.dtype.str, "shape": list(array.shape)}
        for array in arrays
    ]
    chunks = [_pack_header(IMAGE_MAGIC, header)]
    for array in arrays:
        payload = np.ascontiguousarray(array).tobytes()
        chunks.append(payload)
        chunks.append(b"\x00" * (_pad_to(len(payload)) - len(payload)))
    _atomic_write(path, chunks)


def read_backend_image(
    path: str | Path,
) -> tuple[dict[str, Any], list[np.ndarray]] | None:
    """Map a backend image back as ``(header, arrays)``.

    Returns ``None`` for a missing, truncated or otherwise unreadable
    file — the pool treats that exactly like "no image" and rebuilds.
    Semantic validation (backend kind, row count, fingerprint) is the
    caller's job; this only guarantees structural integrity.

    The file is opened and memory-mapped exactly once; every array is
    a zero-copy :func:`numpy.frombuffer` view over that single map
    (which stays alive for as long as any view references it).  This
    keeps the admit path to one open + one ``mmap`` syscall per image
    regardless of how many arrays the backend persisted.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            prefix = handle.read(len(IMAGE_MAGIC) + 4)
            if prefix[: len(IMAGE_MAGIC)] != IMAGE_MAGIC:
                return None
            length = int.from_bytes(prefix[len(IMAGE_MAGIC) :], "little")
            payload = handle.read(length)
            if len(payload) != length:
                return None
            header = json.loads(payload.decode("utf-8"))
            if not isinstance(header, dict):
                return None
            if header.get("format") != IMAGE_FORMAT_VERSION:
                return None
            specs = header.get("arrays")
            if not isinstance(specs, list):
                return None
            data_offset = _pad_to(len(IMAGE_MAGIC) + 4 + length)
            buffer: mmap.mmap | None = None
            arrays: list[np.ndarray] = []
            at = data_offset
            for spec in specs:
                dtype = np.dtype(spec["dtype"])
                shape = tuple(int(dim) for dim in spec["shape"])
                count = math.prod(shape)
                n_bytes = dtype.itemsize * count
                if at + n_bytes > size:
                    return None
                if n_bytes == 0:
                    arrays.append(np.empty(shape, dtype=dtype))
                else:
                    if buffer is None:
                        buffer = mmap.mmap(
                            handle.fileno(),
                            0,
                            access=mmap.ACCESS_READ,
                        )
                        _M_MAPPED_BYTES.inc(size)
                    view = np.frombuffer(
                        buffer, dtype=dtype, count=count, offset=at
                    ).reshape(shape)
                    arrays.append(view)
                at += _pad_to(n_bytes)
        return header, arrays
    except (
        OSError,
        ValueError,
        TypeError,
        KeyError,
        UnicodeDecodeError,
        json.JSONDecodeError,
    ):
        return None
