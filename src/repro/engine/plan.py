"""Execution plan: one cell-visit decomposed into staged steps.

The miner's unit of work is visiting one search-space cell ``Q(h,k)``
(paper Fig. 6).  The engine decomposes that visit into a fixed
pipeline of :class:`Stage` objects with explicit data handoffs
through a :class:`CellState`:

    generate  →  count  →  label  →  prune
    (candidates)  (supports)  (cell)   (removal lists)

Each stage reads the shared :class:`MiningContext` (immutable-ish run
configuration plus the cross-cell run state the sweep maintains) and
the per-cell :class:`CellState`, and writes its output field.  The
:class:`ExecutionPlan` runs the stages in order, times each one, and
records the finished cell — so counting can be batched and fanned out
through an executor, stages can be swapped (an approximate counting
stage, a sampling generate stage) and instrumented independently of
the sweep logic that stays in
:class:`~repro.core.flipper.FlipperMiner`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.core.cells import Cell
from repro.core.counting import CountingBackend
from repro.core.stats import CellStats, MiningStats, Timer
from repro.core.thresholds import ResolvedThresholds
from repro.data.database import TransactionDatabase
from repro.data.shards import ShardedTransactionStore
from repro.engine.executors import Executor
from repro.obs import catalog
from repro.obs.tracing import trace_span
from repro.taxonomy.tree import Taxonomy

__all__ = ["CellTask", "CellState", "MiningContext", "Stage", "ExecutionPlan"]


@dataclass(frozen=True)
class CellTask:
    """Address of one cell visit: k-itemsets at taxonomy level."""

    level: int
    k: int


@dataclass
class CellState:
    """Data handed from stage to stage while processing one cell."""

    task: CellTask
    stats: CellStats
    #: generate → count: candidate itemsets surviving the filters
    candidates: list[tuple[int, ...]] = field(default_factory=list)
    #: count → label: support of every counted candidate
    supports: dict[tuple[int, ...], int] = field(default_factory=dict)
    #: set by a fused generate stage that already produced supports
    #: (the bitmap DFS fast path); the count stage then no-ops
    fused: bool = False
    #: label → prune: the finished cell
    cell: Cell | None = None


@dataclass
class MiningContext:
    """Everything the stages share for one mining run.

    The sweep (:class:`~repro.core.flipper.FlipperMiner`) owns the
    cross-cell state and mutates it between cell visits (SIBP bans,
    TPG caps); the stages read it and append per-cell results.
    ``pruning`` is any object with ``flipping``/``tpg``/``sibp`` bool
    attributes (:class:`~repro.core.flipper.PruningConfig` — typed
    loosely to keep the engine free of a core→engine→core cycle).
    """

    database: TransactionDatabase | ShardedTransactionStore
    taxonomy: Taxonomy
    thresholds: ResolvedThresholds
    measure: Any
    pruning: Any
    backend: CountingBackend
    executor: Executor
    stats: MiningStats
    # --- cross-cell run state maintained by the sweep -----------------
    cells: dict[tuple[int, int], Cell] = field(default_factory=dict)
    node_supports: dict[int, dict[int, int]] = field(default_factory=dict)
    frequent_items: dict[int, set[int]] = field(default_factory=dict)
    #: parent taxonomy node of every node at level >= 2
    parent_of: dict[int, int] = field(default_factory=dict)
    #: SIBP: level -> {item -> largest itemset size it may join}
    banned: dict[int, dict[int, int]] = field(default_factory=dict)
    #: lazy per-level pair-support cache for the candidate screen
    pair_supports: dict[int, dict[tuple[int, int], int]] = field(
        default_factory=dict
    )
    #: SIBP removal-candidate lists per processed cell
    removal_lists: dict[tuple[int, int], set[int]] = field(
        default_factory=dict
    )


class Stage(Protocol):
    """One step of a cell visit."""

    @property
    def name(self) -> str:
        """Short identifier used in per-stage timing stats."""
        ...

    def run(self, context: MiningContext, state: CellState) -> None:
        """Transform ``state`` in place (read ``context`` freely)."""
        ...


class ExecutionPlan:
    """Ordered stages that turn a :class:`CellTask` into a cell.

    The plan is the engine's public surface: the miner asks it to run
    one cell, the plan threads a fresh :class:`CellState` through the
    stages, accumulates per-stage wall-clock into
    ``stats.extra["stage_seconds"]``, records the cell's counters and
    registers the finished cell in ``context.cells``.
    """

    def __init__(
        self, context: MiningContext, stages: Sequence[Stage]
    ) -> None:
        if not stages:
            raise ValueError("an execution plan needs at least one stage")
        self._context = context
        self._stages = list(stages)

    @property
    def context(self) -> MiningContext:
        return self._context

    @property
    def stages(self) -> list[Stage]:
        return list(self._stages)

    def run_cell(self, level: int, k: int) -> Cell:
        context = self._context
        state = CellState(
            task=CellTask(level=level, k=k),
            stats=CellStats(level=level, k=k),
        )
        stage_seconds: dict[str, float] = context.stats.extra.setdefault(
            "stage_seconds", {}
        )
        with (
            trace_span(catalog.SPAN_CELL, level=level, k=k),
            Timer() as cell_timer,
        ):
            for stage in self._stages:
                with (
                    trace_span(stage.name),
                    Timer() as stage_timer,
                ):
                    stage.run(context, state)
                stage_seconds[stage.name] = (
                    stage_seconds.get(stage.name, 0.0) + stage_timer.seconds
                )
        cell = state.cell
        if cell is None:
            raise RuntimeError(
                "execution plan finished without producing a cell; "
                "a labeling stage must set CellState.cell"
            )
        context.cells[(level, k)] = cell
        state.stats.seconds = cell_timer.seconds
        state.stats.counted = len(cell)
        state.stats.frequent = cell.n_frequent
        state.stats.labeled = cell.n_labeled
        state.stats.alive = cell.n_alive
        context.stats.record_cell(state.stats)
        return cell
