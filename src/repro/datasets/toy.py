"""The paper's worked examples as ready-made datasets.

* :func:`example3_database` — the ten-transaction toy of Fig. 4 with
  its three-level taxonomy.  With γ=0.6 and ε=0.35 exactly one
  flipping pattern exists: ``{a11, b11}`` whose chain is
  positive (level 1: {a,b}) → negative (level 2: {a1,b1}) →
  positive (level 3: {a11,b11}) — Fig. 5.
* :func:`table1_rows` — the support configurations of Table 1,
  demonstrating that expectation-based correlation flips its verdict
  with the total transaction count N while Kulc does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.database import TransactionDatabase
from repro.taxonomy.tree import Taxonomy

__all__ = [
    "example3_taxonomy",
    "example3_transactions",
    "example3_database",
    "EXAMPLE3_GAMMA",
    "EXAMPLE3_EPSILON",
    "Table1Row",
    "table1_rows",
]

#: Correlation thresholds used in the paper's Example 3.
EXAMPLE3_GAMMA = 0.6
EXAMPLE3_EPSILON = 0.35


def example3_taxonomy() -> Taxonomy:
    """The taxonomy of Fig. 4: two categories, two subcategories each,
    two items per subcategory."""
    return Taxonomy.from_dict(
        {
            "a": {
                "a1": ["a11", "a12"],
                "a2": ["a21", "a22"],
            },
            "b": {
                "b1": ["b11", "b12"],
                "b2": ["b21", "b22"],
            },
        }
    )


def example3_transactions() -> list[list[str]]:
    """The ten transactions D1..D10 of Fig. 4, verbatim."""
    return [
        ["a11", "a22", "b11", "b22"],  # D1
        ["a11", "a21", "b11"],         # D2
        ["a12", "a21"],                # D3
        ["a12", "a22", "b21"],         # D4
        ["a12", "a22", "b21"],         # D5
        ["a12", "a21", "b22"],         # D6
        ["a21", "b12"],                # D7
        ["b12", "b21", "b22"],         # D8
        ["b12", "b21"],                # D9
        ["a22", "b12", "b22"],         # D10
    ]


def example3_database() -> TransactionDatabase:
    """Fig. 4 data bound to its taxonomy."""
    return TransactionDatabase(example3_transactions(), example3_taxonomy())


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1."""

    label: str
    database: str
    sup_first: int
    sup_second: int
    sup_pair: int
    n_transactions: int
    expected_paper_sign: str
    kulc_paper: float


def table1_rows() -> list[Table1Row]:
    """All four configurations of Table 1.

    ``expected_paper_sign`` is the verdict of the expectation-based
    measure reported in the paper; the Kulc value is constant per item
    pair regardless of N — which is the table's whole point.
    """
    return [
        Table1Row("AB", "DB1", 1000, 1000, 400, 20_000, "positive", 0.40),
        Table1Row("AB", "DB2", 1000, 1000, 400, 2_000, "negative", 0.40),
        Table1Row("CD", "DB1", 200, 200, 4, 20_000, "positive", 0.02),
        Table1Row("CD", "DB2", 200, 200, 4, 2_000, "negative", 0.02),
    ]
