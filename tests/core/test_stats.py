"""Unit tests for repro.core.stats."""

from __future__ import annotations

from repro.core.stats import CellStats, MiningStats, Timer


class TestMiningStats:
    def test_record_cell_aggregates(self):
        stats = MiningStats()
        stats.record_cell(CellStats(level=1, k=2, candidates=10, counted=8))
        stats.record_cell(CellStats(level=2, k=2, candidates=4, counted=3))
        assert stats.total_candidates == 14
        assert stats.total_counted == 11
        assert stats.stored_entries == 11
        assert stats.max_cell_entries == 8
        assert stats.cells_processed == 2

    def test_cell_lookup(self):
        stats = MiningStats()
        stats.record_cell(CellStats(level=1, k=2))
        assert stats.cell(1, 2) is not None
        assert stats.cell(9, 9) is None

    def test_summary_mentions_events(self):
        stats = MiningStats(method="flipping+tpg+sibp")
        stats.tpg_events.append((1, 3))
        stats.sibp_bans.append((2, 17, 2))
        text = stats.summary()
        assert "TPG fired" in text and "SIBP bans: 1" in text

    def test_to_dict_shape(self):
        stats = MiningStats(method="basic", measure="cosine")
        stats.extra["note"] = "x"
        data = stats.to_dict()
        assert data["method"] == "basic"
        assert data["measure"] == "cosine"
        assert data["note"] == "x"
        assert "total_candidates" in data


class TestTimer:
    def test_measures_time(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.seconds >= 0.0
