"""Unit tests for the Cumulate generalized-rule miner."""

from __future__ import annotations

import itertools

import pytest

from repro import Taxonomy, TransactionDatabase
from repro.errors import ConfigError
from repro.related import (
    cumulate_frequent_itemsets,
    extend_transaction,
    mine_generalized_rules,
)
from tests.conftest import make_random_database


@pytest.fixture
def tiny_db():
    taxonomy = Taxonomy.from_dict(
        {
            "c1": {"m1": ["a", "b"]},
            "c2": {"m2": ["c", "d"]},
        }
    )
    transactions = [["a", "c"], ["b", "c"], ["a", "b"], ["a", "c", "d"]]
    return TransactionDatabase(transactions, taxonomy)


def names_of(taxonomy, itemset):
    return tuple(sorted(taxonomy.name_of(i) for i in itemset))


def bruteforce_cumulate(database, min_count, max_k=None):
    """Oracle: count every ancestor-clean node combination over the
    extended transactions."""
    taxonomy = database.taxonomy
    extended = [extend_transaction(taxonomy, t) for t in database]
    universe = sorted({n for t in extended for n in t})

    def clean(combo):
        return all(
            a not in taxonomy.ancestors(b) or a == b
            for a, b in itertools.permutations(combo, 2)
        )

    out = {}
    bound = len(universe) if max_k is None else max_k
    for size in range(1, bound + 1):
        for combo in itertools.combinations(universe, size):
            if not clean(combo):
                continue
            support = sum(1 for t in extended if set(combo) <= t)
            if support >= min_count:
                out[combo] = support
    return out


class TestExtension:
    def test_extension_adds_all_real_ancestors(self, tiny_db):
        taxonomy = tiny_db.taxonomy
        a = taxonomy.node_by_name("a").node_id
        extended = extend_transaction(taxonomy, (a,))
        assert {taxonomy.name_of(n) for n in extended} == {"a", "m1", "c1"}

    def test_extension_skips_rebalancing_copies(self):
        taxonomy = Taxonomy.from_dict(
            {"deep": {"mid": ["leaf"]}, "shallow": None}
        )
        database = TransactionDatabase(
            [["leaf", "shallow"], ["leaf"]], taxonomy
        )
        balanced = database.taxonomy
        shallow = balanced.node_by_name("shallow", level=1).node_id
        extended = extend_transaction(balanced, (shallow,))
        # only the original level-1 node; its copies are not ancestors
        assert {balanced.name_of(n) for n in extended} == {"shallow"}
        assert len(extended) == 1


class TestFrequentItemsets:
    def test_hand_checked_supports(self, tiny_db):
        taxonomy = tiny_db.taxonomy
        frequent = cumulate_frequent_itemsets(tiny_db, min_support=2)
        by_names = {
            names_of(taxonomy, itemset): support
            for itemset, support in frequent.items()
        }
        # every transaction touches c1; three touch c2
        assert by_names[("c1",)] == 4
        assert by_names[("c2",)] == 3
        assert by_names[("c1", "c2")] == 3
        assert by_names[("a", "c2")] == 2  # {a,c}, {a,c,d}
        assert by_names[("a", "c")] == 2

    def test_no_itemset_mixes_item_with_ancestor(self, tiny_db):
        taxonomy = tiny_db.taxonomy
        frequent = cumulate_frequent_itemsets(tiny_db, min_support=1)
        for itemset in frequent:
            for a, b in itertools.permutations(itemset, 2):
                assert a not in taxonomy.ancestors(b) or a == b

    def test_matches_bruteforce_oracle(self, tiny_db):
        assert cumulate_frequent_itemsets(
            tiny_db, min_support=2
        ) == bruteforce_cumulate(tiny_db, 2)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_oracle_on_random_data(self, grocery_taxonomy, seed):
        database = make_random_database(
            grocery_taxonomy, 40, seed=seed, max_width=4
        )
        assert cumulate_frequent_itemsets(
            database, min_support=3, max_k=3
        ) == bruteforce_cumulate(database, 3, max_k=3)

    def test_fractional_min_support(self, tiny_db):
        by_fraction = cumulate_frequent_itemsets(tiny_db, min_support=0.5)
        by_count = cumulate_frequent_itemsets(tiny_db, min_support=2)
        assert by_fraction == by_count

    def test_max_k_caps_size(self, tiny_db):
        frequent = cumulate_frequent_itemsets(tiny_db, min_support=1, max_k=2)
        assert max(len(itemset) for itemset in frequent) == 2

    def test_max_k_one(self, tiny_db):
        frequent = cumulate_frequent_itemsets(tiny_db, min_support=1, max_k=1)
        assert all(len(itemset) == 1 for itemset in frequent)


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -3])
    def test_absolute_support_positive(self, tiny_db, bad):
        with pytest.raises(ConfigError):
            cumulate_frequent_itemsets(tiny_db, min_support=bad)

    def test_fraction_range(self, tiny_db):
        with pytest.raises(ConfigError):
            cumulate_frequent_itemsets(tiny_db, min_support=1.5)

    def test_max_k_validation(self, tiny_db):
        with pytest.raises(ConfigError):
            cumulate_frequent_itemsets(tiny_db, min_support=1, max_k=0)


class TestGeneralizedRules:
    def test_cross_level_rule_found(self, tiny_db):
        """The defining capability of [17]: rules relating an item to
        a *category*, e.g. a -> c2."""
        taxonomy = tiny_db.taxonomy
        rules = mine_generalized_rules(
            tiny_db, min_support=2, min_confidence=0.6
        )
        sides = {
            (
                names_of(taxonomy, r.antecedent),
                names_of(taxonomy, r.consequent),
            )
            for r in rules
        }
        assert (("a",), ("c2",)) in sides  # conf 2/3
        assert (("c2",), ("c1",)) in sides  # conf 3/3

    def test_rule_confidences_consistent(self, tiny_db):
        frequent = cumulate_frequent_itemsets(tiny_db, min_support=1)
        rules = mine_generalized_rules(
            tiny_db, min_support=1, min_confidence=0.0
        )
        for rule in rules:
            assert rule.confidence == pytest.approx(
                frequent[rule.items] / frequent[rule.antecedent]
            )
