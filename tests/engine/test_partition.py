"""Partition parity: N-shard mining must equal 1-shard mining.

The acceptance bar for the out-of-core path: for every counting
backend and both executor modes (in-process shard loop and process
fan-out), mining through N disk shards produces *byte-identical*
pattern sets to the monolithic single-partition path — including the
empty-shard and single-transaction-shard edge cases.
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.core.counting import (
    PartitionedBackend,
    ShardBackendPool,
    make_backend,
)
from repro.core.flipper import FlipperMiner
from repro.data.shards import ShardedTransactionStore
from repro.datasets.groceries import GROCERIES_THRESHOLDS, generate_groceries
from repro.engine import EXECUTORS, make_executor
from repro.engine.partition import PartitionedExecutor
from repro.errors import ConfigError

BACKENDS = ["bitmap", "horizontal", "numpy"]


@pytest.fixture(scope="module")
def planted_db():
    """The groceries simulator: planted flipping chains."""
    return generate_groceries(scale=0.2)


@pytest.fixture(scope="module")
def planted_store(planted_db, tmp_path_factory):
    directory = tmp_path_factory.mktemp("shards")
    return ShardedTransactionStore.partition_database(planted_db, directory, 4)


def _fingerprint(result) -> str:
    return json.dumps(
        [pattern.to_dict() for pattern in result.patterns], sort_keys=True
    )


def _mine(database, **kwargs):
    return FlipperMiner(database, GROCERIES_THRESHOLDS, **kwargs).mine()


class TestCountingParity:
    """PartitionedBackend counts == monolithic backend counts."""

    @pytest.mark.parametrize("backend_name", BACKENDS)
    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_merged_counts_exact(
        self, planted_db, tmp_path, backend_name, n_shards
    ):
        store = ShardedTransactionStore.partition_database(
            planted_db, tmp_path, n_shards
        )
        partitioned = PartitionedBackend(store, inner=backend_name)
        monolithic = make_backend(backend_name, planted_db)
        level = 2
        candidates = [
            tuple(sorted(pair))
            for pair in itertools.combinations(
                planted_db.taxonomy.nodes_at_level(level), 2
            )
        ]
        assert partitioned.supports_batched(
            level, candidates
        ) == monolithic.supports_batched(level, candidates)
        assert partitioned.node_supports(level) == monolithic.node_supports(
            level
        )

    def test_empty_shards_contribute_zero(self, example3_db, tmp_path):
        n = example3_db.n_transactions
        store = ShardedTransactionStore.partition_database(
            example3_db, tmp_path, n + 3
        )
        partitioned = PartitionedBackend(store)
        monolithic = make_backend("bitmap", example3_db)
        assert partitioned.node_supports(1) == monolithic.node_supports(1)


class TestFormatParity:
    """Byte-parity across shard encodings — the columnar contract.

    The binary columnar format, the legacy jsonl format, a store
    migrated between the two, and a warm store serving persisted
    backend images must all mine byte-identical pattern sets.
    """

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_columnar_equals_jsonl_equals_monolithic(
        self, planted_db, tmp_path, backend_name
    ):
        base = _mine(planted_db, backend=backend_name)
        results = {}
        for format in ("columnar", "jsonl"):
            store = ShardedTransactionStore.partition_database(
                planted_db, tmp_path / format, 4, format=format
            )
            results[format] = _mine(store, backend=backend_name)
        assert len(base.patterns) > 0
        assert _fingerprint(base) == _fingerprint(results["columnar"])
        assert _fingerprint(base) == _fingerprint(results["jsonl"])

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_migrated_store_parity(self, planted_db, tmp_path, backend_name):
        base = _mine(planted_db, backend=backend_name)
        store = ShardedTransactionStore.partition_database(
            planted_db, tmp_path, 4, format="jsonl"
        )
        assert store.migrate("columnar") == 4
        migrated = _mine(store, backend=backend_name)
        assert _fingerprint(base) == _fingerprint(migrated)
        # and back again: the round trip changes nothing
        assert store.migrate("jsonl") == 4
        back = _mine(store, backend=backend_name)
        assert _fingerprint(base) == _fingerprint(back)

    @pytest.mark.parametrize("executor", ["serial", "partitioned"])
    def test_warm_image_serving_parity(self, planted_db, tmp_path, executor):
        """Mining a store whose backends come entirely from persisted
        images equals mining the monolithic database — in-process and
        through the worker fan-out."""
        base = _mine(planted_db)
        store = ShardedTransactionStore.partition_database(
            planted_db, tmp_path, 4
        )
        pool = ShardBackendPool(store)
        for index in range(store.n_shards):
            pool.backend(index)
        assert pool.save_images() == store.n_shards

        warm_store = ShardedTransactionStore.open(
            tmp_path, planted_db.taxonomy
        )
        kwargs = (
            {"executor": "partitioned", "workers": 2}
            if executor == "partitioned"
            else {}
        )
        warm = _mine(warm_store, **kwargs)
        assert _fingerprint(base) == _fingerprint(warm)


class TestMiningParity:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_partitioned_equals_monolithic(
        self, planted_db, planted_store, backend_name
    ):
        base = _mine(planted_db, backend=backend_name)
        part = _mine(planted_store, backend=backend_name)
        assert len(base.patterns) > 0
        assert _fingerprint(base) == _fingerprint(part)
        assert part.config["partitions"] == 4

    @pytest.mark.parametrize("backend_name", ["bitmap", "numpy"])
    def test_worker_fanout_equals_monolithic(
        self, planted_db, planted_store, backend_name
    ):
        base = _mine(planted_db, backend=backend_name)
        part = _mine(
            planted_store,
            backend=backend_name,
            executor="partitioned",
            workers=2,
        )
        assert _fingerprint(base) == _fingerprint(part)

    def test_partitions_argument_builds_temporary_store(self, planted_db):
        base = _mine(planted_db)
        part = _mine(planted_db, partitions=3, memory_budget_mb=8)
        assert _fingerprint(base) == _fingerprint(part)
        assert part.config["partitions"] == 3
        assert part.config["memory_budget_mb"] == 8

    def test_empty_shard_edge_case(self, example3_db, tmp_path):
        """More shards than transactions: surplus shards are empty."""
        n = example3_db.n_transactions
        from repro.core.thresholds import Thresholds

        thresholds = Thresholds(gamma=0.6, epsilon=0.35, min_support=1)
        base = FlipperMiner(example3_db, thresholds).mine()
        store = ShardedTransactionStore.partition_database(
            example3_db, tmp_path, n + 4
        )
        part = FlipperMiner(store, thresholds).mine()
        assert len(base.patterns) > 0
        assert _fingerprint(base) == _fingerprint(part)

    def test_single_transaction_shards(self, example3_db, tmp_path):
        """Exactly one transaction per shard."""
        from repro.core.thresholds import Thresholds

        thresholds = Thresholds(gamma=0.6, epsilon=0.35, min_support=1)
        base = FlipperMiner(example3_db, thresholds).mine()
        part = FlipperMiner(
            example3_db,
            thresholds,
            partitions=example3_db.n_transactions,
            shard_dir=tmp_path,
        ).mine()
        assert _fingerprint(base) == _fingerprint(part)

    def test_memory_budget_bounds_residency(self, planted_db, tmp_path):
        store = ShardedTransactionStore.partition_database(
            planted_db, tmp_path, 4
        )
        # budget for ~1.5 shards, measured in the pool's own truthful
        # per-shard estimate (S1: actual mapped/built bytes)
        probe = ShardBackendPool(store)
        budget_mb = (probe._estimate_bytes(0) * 1.5) / (1024 * 1024)
        miner = FlipperMiner(
            store, GROCERIES_THRESHOLDS, memory_budget_mb=budget_mb
        )
        result = miner.mine()
        backend = miner.context.backend
        assert isinstance(backend, PartitionedBackend)
        # at most one full-size shard resident at a time under this
        # budget, and the pool paid for evictions — with rebuilds or
        # with zero-parse image re-admits
        assert len(backend.pool.resident_shards) <= 2
        assert backend.pool.rebuilds + backend.pool.image_admits > 0
        assert len(result.patterns) > 0

    def test_mine_twice_on_temporary_shards(self, planted_db):
        """Repeated mine() must still find the temp shard files (the
        monolithic path supports repeated runs; the partitioned path
        must too, even with evictions forcing shard re-reads)."""
        miner = FlipperMiner(
            planted_db,
            GROCERIES_THRESHOLDS,
            partitions=3,
            memory_budget_mb=0.1,
        )
        first = miner.mine()
        second = miner.mine()
        assert len(first.patterns) > 0
        assert _fingerprint(first) == _fingerprint(second)

    def test_basic_mode_parity(self, planted_db, planted_store):
        from repro.core.flipper import PruningConfig

        base = _mine(planted_db, pruning=PruningConfig.basic(), max_k=3)
        part = _mine(planted_store, pruning=PruningConfig.basic(), max_k=3)
        assert _fingerprint(base) == _fingerprint(part)


class TestConfigErrors:
    def test_partitions_conflicts_with_store(self, planted_store):
        with pytest.raises(ConfigError, match="conflicts"):
            FlipperMiner(planted_store, GROCERIES_THRESHOLDS, partitions=2)

    def test_backend_from_other_store_rejected(
        self, planted_db, planted_store, tmp_path
    ):
        other = ShardedTransactionStore.partition_database(
            planted_db, tmp_path, 2
        )
        with pytest.raises(ConfigError, match="different store"):
            FlipperMiner(
                planted_store,
                GROCERIES_THRESHOLDS,
                backend=PartitionedBackend(other),
            )

    def test_budget_with_instance_backend_rejected(self, planted_store):
        backend = PartitionedBackend(planted_store, memory_budget_mb=4)
        with pytest.raises(ConfigError, match="memory_budget_mb"):
            FlipperMiner(
                planted_store,
                GROCERIES_THRESHOLDS,
                backend=backend,
                memory_budget_mb=8,
            )

    def test_config_reports_instance_backend_budget(self, planted_store):
        backend = PartitionedBackend(planted_store, memory_budget_mb=4)
        result = FlipperMiner(
            planted_store, GROCERIES_THRESHOLDS, backend=backend
        ).mine()
        assert result.config["memory_budget_mb"] == 4

    def test_shard_dir_with_store_rejected(self, planted_store, tmp_path):
        with pytest.raises(ConfigError, match="shard_dir"):
            FlipperMiner(
                planted_store, GROCERIES_THRESHOLDS, shard_dir=tmp_path
            )

    def test_budget_requires_partitions(self, planted_db):
        with pytest.raises(ConfigError, match="memory_budget_mb"):
            FlipperMiner(planted_db, GROCERIES_THRESHOLDS, memory_budget_mb=64)

    def test_shard_dir_requires_partitions(self, planted_db, tmp_path):
        with pytest.raises(ConfigError, match="shard_dir"):
            FlipperMiner(planted_db, GROCERIES_THRESHOLDS, shard_dir=tmp_path)

    def test_partitioned_executor_needs_partitioned_backend(self, planted_db):
        backend = make_backend("bitmap", planted_db)
        with pytest.raises(ConfigError, match="partitioned"):
            make_executor("partitioned", backend, planted_db)

    def test_partitioned_executor_registered(self):
        assert EXECUTORS["partitioned"] is PartitionedExecutor

    def test_bad_worker_and_chunk_counts(self, planted_store):
        backend = PartitionedBackend(planted_store)
        with pytest.raises(ConfigError, match="workers"):
            PartitionedExecutor(backend, workers=0)
        with pytest.raises(ConfigError, match="chunk_size"):
            PartitionedExecutor(backend, chunk_size=0)

    def test_unknown_executor_name_rejected(self, planted_store):
        with pytest.raises(ConfigError, match="unknown executor"):
            FlipperMiner(
                planted_store, GROCERIES_THRESHOLDS, executor="gpu-cluster"
            )
