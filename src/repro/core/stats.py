"""Instrumentation of a mining run.

The paper's evaluation reports runtime, memory (candidate storage),
and the effect of each pruning device.  :class:`MiningStats` captures
all of it: per-cell candidate/entry counts, prune counters, TPG and
SIBP events, database scans, and wall-clock phases — enough for the
bench harness to regenerate every series of Figures 8 and 9 without
re-instrumenting the miner.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["CellStats", "MiningStats", "Timer"]


@dataclass
class CellStats:
    """Counters for one ``Q(h,k)`` cell."""

    level: int
    k: int
    candidates: int = 0          # generated before any filtering
    filtered_subset: int = 0     # removed: a counted subset was infrequent
    filtered_banned: int = 0     # removed: SIBP-banned item
    counted: int = 0             # actually support-counted
    frequent: int = 0
    labeled: int = 0             # positive or negative
    alive: int = 0               # chain-alive after flip check
    seconds: float = 0.0


@dataclass
class MiningStats:
    """Aggregated statistics of one mining run."""

    method: str = "flipper"
    measure: str = "kulczynski"
    cells: list[CellStats] = field(default_factory=list)
    tpg_events: list[tuple[int, int]] = field(default_factory=list)
    #: (level, item_id, k) triples: item banned for itemsets larger than k
    sibp_bans: list[tuple[int, int, int]] = field(default_factory=list)
    db_scans: int = 0
    #: total counted entries kept across all cells (candidate-storage proxy,
    #: the quantity behind the paper's Fig. 9(b) memory comparison)
    stored_entries: int = 0
    #: largest number of entries held for any single cell
    max_cell_entries: int = 0
    n_patterns: int = 0
    elapsed_seconds: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------

    def record_cell(self, cell_stats: CellStats) -> None:
        self.cells.append(cell_stats)
        self.stored_entries += cell_stats.counted
        if cell_stats.counted > self.max_cell_entries:
            self.max_cell_entries = cell_stats.counted

    @property
    def total_candidates(self) -> int:
        """Candidates generated across all cells (pruning-power metric)."""
        return sum(cell.candidates for cell in self.cells)

    @property
    def total_counted(self) -> int:
        return sum(cell.counted for cell in self.cells)

    @property
    def total_frequent(self) -> int:
        return sum(cell.frequent for cell in self.cells)

    @property
    def cells_processed(self) -> int:
        return len(self.cells)

    def cell(self, level: int, k: int) -> CellStats | None:
        """Stats for one cell, if it was processed."""
        for cell_stats in self.cells:
            if cell_stats.level == level and cell_stats.k == k:
                return cell_stats
        return None

    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Multi-line, human-readable digest."""
        lines = [
            f"method={self.method} measure={self.measure}",
            f"elapsed: {self.elapsed_seconds:.3f}s, db scans: {self.db_scans}",
            f"cells processed: {self.cells_processed}, "
            f"candidates: {self.total_candidates}, "
            f"counted: {self.total_counted}, "
            f"frequent: {self.total_frequent}",
            f"stored entries (memory proxy): {self.stored_entries} "
            f"(max single cell: {self.max_cell_entries})",
            f"patterns found: {self.n_patterns}",
        ]
        if self.tpg_events:
            events = ", ".join(f"(h={h}, k={k})" for h, k in self.tpg_events)
            lines.append(f"TPG fired at: {events}")
        if self.sibp_bans:
            lines.append(f"SIBP bans: {len(self.sibp_bans)}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form used by the bench harness."""
        return {
            "method": self.method,
            "measure": self.measure,
            "elapsed_seconds": self.elapsed_seconds,
            "db_scans": self.db_scans,
            "cells_processed": self.cells_processed,
            "total_candidates": self.total_candidates,
            "total_counted": self.total_counted,
            "total_frequent": self.total_frequent,
            "stored_entries": self.stored_entries,
            "max_cell_entries": self.max_cell_entries,
            "n_patterns": self.n_patterns,
            "tpg_events": list(self.tpg_events),
            "sibp_bans": len(self.sibp_bans),
            **self.extra,
        }


class Timer:
    """Tiny context-manager stopwatch.

    >>> with Timer() as timer:
    ...     pass
    >>> timer.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._start
