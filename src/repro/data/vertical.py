"""Vertical (bitmap) index over a transaction database.

For each taxonomy level ``h`` and each node at that level, the index
stores the set of transactions whose level-``h`` projection contains
the node, encoded as a Python ``int`` bitset (bit ``t`` set when
transaction ``t`` qualifies).  Support of an (h,k)-itemset is then the
popcount of the AND of k bitsets — the fast counting substrate behind
the default mining backend.

Level bitsets are derived bottom-up: the bitset of an internal node is
the OR of the bitsets of the items below it, which mirrors the paper's
"replace items in transactions by their generalizations" semantics
(duplicates collapse automatically in a bitset).
"""

from __future__ import annotations

from repro.data.database import TransactionDatabase
from repro.errors import DataError

__all__ = ["VerticalIndex"]


class VerticalIndex:
    """Per-level bitmap index of a :class:`TransactionDatabase`."""

    def __init__(self, database: TransactionDatabase) -> None:
        self._database: TransactionDatabase | None = database
        taxonomy = database.taxonomy
        self._height = taxonomy.height
        item_bits: dict[int, int] = {item: 0 for item in database.item_ids}
        for position, transaction in enumerate(database):
            mask = 1 << position
            for item in transaction:
                if item not in item_bits:
                    raise DataError(
                        f"transaction {position}: item id {item} is not "
                        "an item of the bound taxonomy"
                    )
                item_bits[item] |= mask
        # level height..1: bitset of node = OR over items beneath it
        self._level_bits: dict[int, dict[int, int]] = {}
        for level in range(1, self._height + 1):
            bits: dict[int, int] = {}
            for node_id in taxonomy.nodes_at_level(level):
                value = 0
                for item in taxonomy.item_leaves(node_id):
                    value |= item_bits[item]
                bits[node_id] = value
            self._level_bits[level] = bits

    @classmethod
    def from_level_bits(
        cls, level_bits: dict[int, dict[int, int]], height: int
    ) -> "VerticalIndex":
        """Reattach an index from already-built per-level bitsets.

        The restore path of persisted backend images (see
        :mod:`repro.data.columnar`): no database scan happens, and the
        resulting index has no bound database — only the counting
        surface (``bitset`` / ``support`` / ``node_supports``), which
        is all the shard pool ever uses.
        """
        index = cls.__new__(cls)
        index._database = None
        index._height = height
        index._level_bits = level_bits
        return index

    # ------------------------------------------------------------------

    @property
    def database(self) -> TransactionDatabase:
        if self._database is None:
            raise DataError(
                "this VerticalIndex was restored from a backend image "
                "and carries no transaction database"
            )
        return self._database

    @property
    def height(self) -> int:
        return self._height

    @property
    def level_bits(self) -> dict[int, dict[int, int]]:
        """The raw per-level bitsets (image persistence reads these)."""
        return self._level_bits

    def bitset(self, level: int, node_id: int) -> int:
        """Transaction bitset of a single node at ``level``."""
        try:
            return self._level_bits[level][node_id]
        except KeyError:
            raise DataError(
                f"node {node_id} is not at taxonomy level {level}"
            ) from None

    def support_of_node(self, level: int, node_id: int) -> int:
        """Support (transaction count) of a single node."""
        return self.bitset(level, node_id).bit_count()

    def support(self, level: int, itemset: tuple[int, ...]) -> int:
        """Support of an (h,k)-itemset of node ids at ``level``."""
        bits = self._level_bits[level]
        try:
            value = bits[itemset[0]]
            for node_id in itemset[1:]:
                value &= bits[node_id]
                if not value:
                    return 0
            return value.bit_count()
        except KeyError as exc:
            raise DataError(
                f"itemset {itemset} contains a node not at level {level}"
            ) from exc
        except IndexError:
            raise DataError(
                "support of an empty itemset is undefined"
            ) from None

    def itemset_bitset(self, level: int, itemset: tuple[int, ...]) -> int:
        """Raw AND-bitset of an itemset (for callers that reuse it)."""
        bits = self._level_bits[level]
        value = bits[itemset[0]]
        for node_id in itemset[1:]:
            value &= bits[node_id]
        return value

    def node_supports(self, level: int) -> dict[int, int]:
        """Support of every node at ``level`` (single scan of the index)."""
        return {
            node_id: value.bit_count()
            for node_id, value in self._level_bits[level].items()
        }
