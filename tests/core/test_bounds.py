"""Unit tests for repro.core.bounds (Theorems 1 and 2 helpers).

The deep falsification runs live in tests/property/test_prop_theorems;
here we check the helpers on deterministic, hand-checkable instances.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import (
    correlation_of,
    subset_correlation_max,
    theorem1_upper_bound_holds,
    theorem2_conclusion_holds,
    theorem2_preconditions,
)
from repro.core.measures import MEASURES


def make_support_fn(table: dict[tuple[int, ...], int]):
    def support(itemset: tuple[int, ...]) -> int:
        return table[tuple(sorted(itemset))]

    return support


@pytest.fixture
def simple_supports():
    """Three items with supports 10/8/6 and a consistent overlap table."""
    return make_support_fn(
        {
            (1,): 10,
            (2,): 8,
            (3,): 6,
            (1, 2): 5,
            (1, 3): 3,
            (2, 3): 2,
            (1, 2, 3): 2,
        }
    )


class TestCorrelationOf:
    def test_kulc_by_hand(self, simple_supports):
        value = correlation_of("kulc", (1, 2), simple_supports)
        assert value == pytest.approx((5 / 10 + 5 / 8) / 2)

    def test_triple(self, simple_supports):
        value = correlation_of("kulc", (1, 2, 3), simple_supports)
        assert value == pytest.approx((2 / 10 + 2 / 8 + 2 / 6) / 3)


class TestTheorem1:
    @pytest.mark.parametrize("measure", sorted(MEASURES))
    def test_upper_bound_on_simple_instance(self, measure, simple_supports):
        assert theorem1_upper_bound_holds(measure, (1, 2, 3), simple_supports)

    def test_subset_max(self, simple_supports):
        value = subset_correlation_max("kulc", (1, 2, 3), simple_supports)
        pairs = [
            correlation_of("kulc", pair, simple_supports)
            for pair in [(1, 2), (1, 3), (2, 3)]
        ]
        assert value == pytest.approx(max(pairs))

    def test_rejects_singletons(self, simple_supports):
        with pytest.raises(ValueError):
            theorem1_upper_bound_holds("kulc", (1,), simple_supports)


class TestTheorem2:
    def test_preconditions_and_conclusion(self, simple_supports):
        # item 3 has the smallest support; gamma above every pair corr
        gamma = 0.9
        if theorem2_preconditions(
            "kulc", (1, 2, 3), 3, gamma, simple_supports
        ):
            assert theorem2_conclusion_holds(
                "kulc", (1, 2, 3), gamma, simple_supports
            )

    def test_special_item_must_be_member(self, simple_supports):
        with pytest.raises(ValueError):
            theorem2_preconditions("kulc", (1, 2), 99, 0.5, simple_supports)

    def test_preconditions_false_when_pair_positive(self, simple_supports):
        # gamma below Kulc(1,2)=0.5625 -> premise (1) fails for item 1
        assert not theorem2_preconditions(
            "kulc", (1, 2, 3), 1, 0.5, simple_supports
        )
