"""Unit tests for repro.datasets.planted."""

from __future__ import annotations

import random

import pytest

from repro.datasets import (
    BlockPlan,
    chain_signature,
    measure_chain,
    plant_npn_chain,
    plant_pnp_chain,
)
from repro.errors import ConfigError


class TestBlockPlan:
    def test_add_and_count(self):
        plan = BlockPlan()
        plan.add(["a", "b"], 3).add(["c"], 2)
        assert plan.n_transactions == 5

    def test_materialize_shuffles(self):
        plan = BlockPlan()
        plan.add(["a"], 50).add(["b"], 50)
        ordered = plan.materialize()
        shuffled = plan.materialize(random.Random(1))
        assert sorted(map(tuple, ordered)) == sorted(map(tuple, shuffled))
        assert ordered != shuffled

    def test_validation(self):
        plan = BlockPlan()
        with pytest.raises(ConfigError):
            plan.add([], 1)
        with pytest.raises(ConfigError):
            plan.add(["a"], -1)


class TestMeasureChain:
    def test_example3_values(self, example3_db):
        chain = measure_chain(example3_db, ("a11", "b11"))
        assert [level for level, _s, _c in chain] == [1, 2, 3]
        assert chain[0][1] == 7  # sup({a,b})
        assert chain[1][2] == pytest.approx(1 / 3)
        assert chain[2][2] == pytest.approx(1.0)

    def test_rejects_shared_ancestor(self, example3_db):
        with pytest.raises(ConfigError, match="share"):
            measure_chain(example3_db, ("a11", "a12"))

    def test_rejects_single_item(self, example3_db):
        with pytest.raises(ConfigError, match="two items"):
            measure_chain(example3_db, ("a11",))


class TestChainSignature:
    def test_example3(self, example3_db):
        signature = chain_signature(
            example3_db,
            ("a11", "b11"),
            gamma=0.6,
            epsilon=0.35,
            min_counts=[1, 1, 1],
        )
        assert signature == "+-+"

    def test_infrequent_marked(self, example3_db):
        signature = chain_signature(
            example3_db,
            ("a11", "b11"),
            gamma=0.6,
            epsilon=0.35,
            min_counts=[8, 8, 8],
        )
        assert "x" in signature

    def test_wrong_min_counts_length(self, example3_db):
        with pytest.raises(ConfigError, match="min counts"):
            chain_signature(
                example3_db, ("a11", "b11"), 0.6, 0.35, min_counts=[1]
            )


class TestRecipes:
    def test_pnp_produces_signature(self, grocery_taxonomy):
        from repro.data import TransactionDatabase

        plan = BlockPlan()
        plant_pnp_chain(
            plan, grocery_taxonomy, "canned beer", "baby cosmetics"
        )
        db = TransactionDatabase(plan.materialize(), grocery_taxonomy)
        signature = chain_signature(
            db,
            ("canned beer", "baby cosmetics"),
            gamma=0.15,
            epsilon=0.10,
            min_counts=[2, 2, 2],
        )
        assert signature == "+-+"

    def test_npn_produces_signature(self, grocery_taxonomy):
        from repro.data import TransactionDatabase

        plan = BlockPlan()
        plant_npn_chain(plan, grocery_taxonomy, "cola", "soap")
        db = TransactionDatabase(plan.materialize(), grocery_taxonomy)
        signature = chain_signature(
            db,
            ("cola", "soap"),
            gamma=0.15,
            epsilon=0.10,
            min_counts=[2, 2, 2],
        )
        assert signature == "-+-"

    def test_avoid_set_respected(self, grocery_taxonomy):
        plan = BlockPlan()
        # blocking the default cousin (cola) forces the alternate one
        plant_pnp_chain(
            plan,
            grocery_taxonomy,
            "canned beer",
            "baby cosmetics",
            avoid=frozenset({"cola"}),
        )
        used = {name for template, _ in plan.blocks for name in template}
        assert "cola" not in used
        assert "lemonade" in used  # the fallback cousin

    def test_avoid_exhaustion_raises(self, grocery_taxonomy):
        plan = BlockPlan()
        with pytest.raises(ConfigError, match="free sibling"):
            plant_pnp_chain(
                plan,
                grocery_taxonomy,
                "canned beer",
                "baby cosmetics",
                avoid=frozenset({"bottled beer"}),
            )
