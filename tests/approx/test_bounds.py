"""Unit and property tests for the sample-bound math."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.approx.bounds import (
    SampleBounds,
    chernoff_sample_count,
    correlation_margin,
    hoeffding_epsilon,
    required_sample_size,
    support_interval,
)
from repro.core.thresholds import Thresholds
from repro.errors import ConfigError


class TestHoeffding:
    def test_known_value(self):
        # eps = sqrt(ln(1/0.01) / (2 * 10000))
        assert hoeffding_epsilon(10_000, 0.01) == pytest.approx(
            math.sqrt(math.log(100) / 20_000)
        )

    def test_shrinks_with_sample_size(self):
        assert hoeffding_epsilon(40_000, 0.05) < hoeffding_epsilon(
            10_000, 0.05
        )

    def test_grows_with_confidence(self):
        assert hoeffding_epsilon(10_000, 0.001) > hoeffding_epsilon(
            10_000, 0.1
        )

    def test_inverse_of_required_sample_size(self):
        for eps in (0.05, 0.01, 0.002):
            n = required_sample_size(eps, 0.05)
            assert hoeffding_epsilon(n, 0.05) <= eps
            assert hoeffding_epsilon(n - 1, 0.05) > eps

    @pytest.mark.parametrize("bad", [0, -5])
    def test_rejects_bad_sample_size(self, bad):
        with pytest.raises(ConfigError):
            hoeffding_epsilon(bad, 0.05)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 2.0])
    def test_rejects_bad_delta(self, bad):
        with pytest.raises(ConfigError):
            hoeffding_epsilon(100, bad)
        with pytest.raises(ConfigError):
            required_sample_size(0.01, bad)
        with pytest.raises(ConfigError):
            chernoff_sample_count(0.1, 100, bad)


class TestChernoff:
    def test_below_expected_count(self):
        expected = 0.01 * 10_000
        bound = chernoff_sample_count(0.01, 10_000, 0.01)
        assert 0.0 < bound < expected

    def test_vacuous_for_rare_fractions(self):
        # expected count so small the tail gives no information
        assert chernoff_sample_count(0.0001, 1_000, 0.01) == 0.0

    def test_monotone_in_fraction(self):
        values = [
            chernoff_sample_count(fraction, 10_000, 0.01)
            for fraction in (0.001, 0.01, 0.05, 0.2)
        ]
        assert values == sorted(values)

    def test_beats_hoeffding_on_rare_fractions(self):
        """The reason both bounds are taken: the additive margin is
        vacuous exactly where the multiplicative one still bites."""
        n, delta, fraction = 10_000, 0.01, 0.005
        hoeffding = (fraction - hoeffding_epsilon(n, delta)) * n
        assert hoeffding < 0  # additive bound collapsed
        assert chernoff_sample_count(fraction, n, delta) > 1


class TestCorrelationMargin:
    def test_degenerates_when_sample_too_small(self):
        assert correlation_margin(0.02, 0.01) == 1.0

    def test_shrinks_with_common_items(self):
        assert correlation_margin(0.01, 0.5) < correlation_margin(0.01, 0.05)


class TestSupportInterval:
    def test_contains_scaled_estimate(self):
        lo, hi = support_interval(50, 1_000, 100_000, 0.01)
        assert lo <= 50 * 100 <= hi

    def test_clamped_to_valid_counts(self):
        lo, _hi = support_interval(0, 1_000, 100_000, 0.01)
        assert lo == 0
        _lo, hi = support_interval(1_000, 1_000, 100_000, 0.05)
        assert hi == 100_000


def _resolved(fractions, gamma=0.3, epsilon=0.1, n_total=100_000):
    return Thresholds(
        gamma=gamma, epsilon=epsilon, min_support=list(fractions)
    ).resolve(len(fractions), n_total)


class TestSampleBounds:
    def test_thresholds_stay_non_increasing(self):
        bounds = SampleBounds.derive(
            _resolved([0.01, 0.001, 0.0005, 0.0001]), 100_000, 10_000, 0.95
        )
        counts = bounds.sample_min_counts
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        assert all(count >= 1 for count in counts)

    def test_thresholds_never_exceed_proportional(self):
        bounds = SampleBounds.derive(
            _resolved([0.05, 0.01]), 100_000, 10_000, 0.95
        )
        for count, fraction in zip(
            bounds.sample_min_counts, bounds.min_fractions
        ):
            assert count <= max(1, math.ceil(fraction * 10_000))

    def test_band_never_inverts(self):
        bounds = SampleBounds.derive(
            _resolved([0.001], gamma=0.21, epsilon=0.2), 50_000, 500, 0.99
        )
        assert bounds.relaxed_epsilon < bounds.relaxed_gamma
        assert bounds.margin_clamped

    def test_union_bound_split(self):
        bounds = SampleBounds.derive(
            _resolved([0.01, 0.001, 0.0001]), 100_000, 10_000, 0.9
        )
        assert bounds.tests == 4  # 3 levels + the correlation band
        assert bounds.delta_per_test == pytest.approx(0.1 / 4)

    def test_interval_roundtrip(self):
        bounds = SampleBounds.derive(_resolved([0.01]), 100_000, 10_000, 0.95)
        lo, hi = bounds.interval(100)
        assert lo <= 1_000 <= hi

    def test_to_dict_is_json_shaped(self):
        data = SampleBounds.derive(
            _resolved([0.01, 0.001]), 100_000, 10_000, 0.95
        ).to_dict()
        assert data["n_sample"] == 10_000
        assert isinstance(data["sample_min_counts"], list)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -1.0])
    def test_rejects_bad_confidence(self, bad):
        with pytest.raises(ConfigError):
            SampleBounds.derive(_resolved([0.01]), 1_000, 100, bad)

    @pytest.mark.parametrize("n_sample", [0, 1_001])
    def test_rejects_bad_sample_size(self, n_sample):
        with pytest.raises(ConfigError):
            SampleBounds.derive(_resolved([0.01]), 1_000, n_sample, 0.95)

    @given(
        n_total=st.integers(min_value=100, max_value=1_000_000),
        rate=st.floats(min_value=0.01, max_value=1.0),
        confidence=st.floats(min_value=0.5, max_value=0.999),
        gamma=st.floats(min_value=0.2, max_value=0.9),
    )
    def test_derivation_invariants(self, n_total, rate, confidence, gamma):
        """For any configuration: thresholds positive, non-increasing,
        at most proportional; band ordered; epsilon positive."""
        n_sample = max(1, min(n_total, round(rate * n_total)))
        resolved = _resolved(
            [0.02, 0.002], gamma=gamma, epsilon=0.1, n_total=n_total
        )
        bounds = SampleBounds.derive(resolved, n_total, n_sample, confidence)
        assert bounds.epsilon_support > 0
        counts = bounds.sample_min_counts
        assert all(count >= 1 for count in counts)
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        for count, fraction in zip(counts, bounds.min_fractions):
            assert count <= max(1, math.ceil(fraction * n_sample))
        assert bounds.relaxed_epsilon < bounds.relaxed_gamma
