"""One runner per table/figure of the paper's evaluation.

Each ``run_*`` function regenerates one experiment at the current
bench scale and returns ``(report_text, data)``; the pytest benches
assert the shape checks and ``python -m repro bench <id>`` prints the
report.  EXPERIMENTS.md archives a full run.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bench.approx import run_approx_bench
from repro.bench.chart import sweep_chart
from repro.bench.engine import run_engine_smoke
from repro.bench.incremental import run_incremental_bench
from repro.bench.partition import run_partition_bench
from repro.bench.serve import run_serve_bench
from repro.bench.window import run_window_bench
from repro.bench.harness import (
    LADDER,
    RunRecord,
    SweepResult,
    run_ladder,
    run_method,
    sweep,
)
from repro.bench.profiles import (
    CORR_PROFILES,
    DEFAULT_EPSILON,
    DEFAULT_GAMMA,
    DEFAULT_MINSUP,
    MINSUP_PROFILES,
    bench_config,
    bench_scale,
    thresholds_for_profile,
    width_scaled_thresholds,
)
from repro.bench.report import (
    ShapeCheck,
    check_ladder_ordering,
    check_monotone_series,
    format_table,
    render_checks,
    series_table,
)
from repro.core.flipper import FlipperMiner, PruningConfig
from repro.core.labels import Label
from repro.core.measures import expectation_sign, kulczynski, lift
from repro.core.thresholds import Thresholds
from repro.data.database import TransactionDatabase
from repro.datasets.census import CENSUS_THRESHOLDS, generate_census
from repro.datasets.groceries import GROCERIES_THRESHOLDS, generate_groceries
from repro.datasets.medline import MEDLINE_THRESHOLDS, generate_medline
from repro.datasets.synthetic import generate_synthetic
from repro.datasets.toy import table1_rows

__all__ = [
    "run_fig8a",
    "run_fig8b",
    "run_fig8c",
    "run_fig8d",
    "run_fig9a",
    "run_fig9b",
    "run_table1",
    "run_table4",
    "run_engine_smoke",
    "run_partition_bench",
    "run_incremental_bench",
    "run_serve_bench",
    "run_window_bench",
    "real_datasets",
    "EXPERIMENTS",
]

#: Method pair of the Fig. 9 real-data experiments.
NAIVE_VS_FULL = [
    ("NAIVE FLIPPING", PruningConfig.flipping_only()),
    ("FULL FLIPPER", PruningConfig.full()),
]


def _header(title: str) -> str:
    scale = bench_scale()
    return f"== {title} (bench scale {scale:g}; see EXPERIMENTS.md) =="


# ---------------------------------------------------------------------------
# Figure 8: synthetic sweeps
# ---------------------------------------------------------------------------


def run_fig8a(
    profiles: Sequence[str] | None = None,
) -> tuple[str, SweepResult]:
    """Fig. 8(a): runtime vs. the Table-3 minimum-support profiles."""
    profiles = list(profiles or MINSUP_PROFILES)
    database = generate_synthetic(bench_config())

    result = sweep(
        "minsup profile",
        profiles,
        database_for=lambda _p: database,
        thresholds_for=lambda p: thresholds_for_profile(
            p, n_transactions=database.n_transactions  # type: ignore[arg-type]
        ),
    )
    checks = [
        check_ladder_ordering(
            [result.series[m][-1] for m in result.methods], "candidates"
        ),
    ]
    report = "\n".join(
        [
            _header("Fig. 8(a): runtime vs minimum-support profile"),
            series_table(result, "seconds"),
            "",
            series_table(result, "candidates"),
            "",
            sweep_chart(result, "seconds"),
            "",
            render_checks(checks),
        ]
    )
    return report, result


def run_fig8b(
    multipliers: Sequence[float] = (1.0, 2.5, 5.0, 10.0),
) -> tuple[str, SweepResult]:
    """Fig. 8(b): runtime vs. number of transactions (paper: 100K-1M,
    linear in N for all methods, Flipper 15-20x faster than BASIC)."""
    base = bench_config()
    databases: dict[object, TransactionDatabase] = {}

    def database_for(multiplier: object) -> TransactionDatabase:
        n = round(base.n_transactions * float(multiplier))  # type: ignore[arg-type]
        databases[multiplier] = generate_synthetic(
            base.scaled(n_transactions=n)
        )
        return databases[multiplier]

    result = sweep(
        "N multiplier",
        list(multipliers),
        database_for=database_for,
        thresholds_for=lambda v: thresholds_for_profile(
            DEFAULT_MINSUP, n_transactions=databases[v].n_transactions
        ),
    )
    checks = []
    for method in result.methods:
        series = result.metric(method, "seconds")
        if max(series) >= 1.0:
            checks.append(
                check_monotone_series(
                    result, method, "seconds", "increasing", 0.5
                )
            )
        else:
            # sub-second series sit at the wall-clock noise floor;
            # their trend is not a meaningful claim either way
            checks.append(
                ShapeCheck(
                    f"increasing seconds for {method}",
                    True,
                    "series below 1s noise floor, trend not scored: "
                    + " -> ".join(f"{v:.3g}" for v in series),
                )
            )
    report = "\n".join(
        [
            _header("Fig. 8(b): runtime vs number of transactions"),
            series_table(result, "seconds"),
            "",
            sweep_chart(result, "seconds"),
            "",
            render_checks(checks),
        ]
    )
    return report, result


def run_fig8c(
    widths: Sequence[float] = (5, 6, 8, 10),
) -> tuple[str, SweepResult]:
    """Fig. 8(c): runtime vs. average transaction width (paper: BASIC
    explodes with density, full Flipper degrades gracefully).

    Minimum-support counts are width^2-scaled
    (:func:`~repro.bench.profiles.width_scaled_thresholds`) so the
    threshold-to-noise ratio of the paper's N = 100K setup survives
    the bench-scale N; see the helper's docstring.
    """
    base = bench_config()

    result = sweep(
        "avg width",
        list(widths),
        database_for=lambda w: generate_synthetic(
            base.scaled(avg_width=float(w))  # type: ignore[arg-type]
        ),
        thresholds_for=lambda w: width_scaled_thresholds(
            float(w), n_transactions=base.n_transactions  # type: ignore[arg-type]
        ),
    )
    basic = result.metric("BASIC", "candidates")
    full = result.metric("FLIPPING+TPG+SIBP", "candidates")
    checks = [
        check_monotone_series(
            result, "BASIC", "candidates", "increasing", 0.0
        ),
        ShapeCheck(
            "full Flipper under BASIC at every width",
            all(f <= b for f, b in zip(full, basic)),
            f"full {full} vs basic {basic}",
        ),
        ShapeCheck(
            "candidate gap at the widest point >= 3x",
            full[-1] * 3 <= basic[-1],
            f"{basic[-1]} vs {full[-1]} "
            f"({basic[-1] / max(full[-1], 1):.1f}x)",
        ),
    ]
    report = "\n".join(
        [
            _header("Fig. 8(c): runtime vs average transaction width"),
            series_table(result, "seconds"),
            "",
            series_table(result, "candidates"),
            "",
            sweep_chart(result, "seconds"),
            "",
            render_checks(checks),
        ]
    )
    return report, result


def run_fig8d(
    profiles: Sequence[tuple[float, float]] | None = None,
) -> tuple[str, SweepResult]:
    """Fig. 8(d): runtime vs. correlation thresholds (paper: larger
    gamma -> more pruning -> faster; BASIC indifferent)."""
    profiles = list(profiles or CORR_PROFILES)
    database = generate_synthetic(bench_config())

    def thresholds_for(value: object) -> Thresholds:
        gamma, epsilon = value  # type: ignore[misc]
        return thresholds_for_profile(
            DEFAULT_MINSUP,
            gamma=gamma,
            epsilon=epsilon,
            n_transactions=database.n_transactions,
        )

    result = sweep(
        "(gamma, eps)",
        profiles,
        database_for=lambda _v: database,
        thresholds_for=thresholds_for,
    )
    # BASIC ignores correlation thresholds: its candidate counts must
    # be constant across the sweep.
    basic = result.metric("BASIC", "candidates")
    full = result.metric("FLIPPING+TPG+SIBP", "candidates")
    # the advanced pruning cuts *non-positive* itemsets, so only the
    # gamma-increasing prefix of the sweep must shrink monotonically;
    # the epsilon-raising tail signs more itemsets and may grow again
    gamma_prefix_end = len(
        [p for p in profiles if p[1] == profiles[0][1]]  # type: ignore[index]
    )
    prefix = full[:gamma_prefix_end]
    checks = [
        ShapeCheck(
            "BASIC indifferent to correlation thresholds",
            len(set(basic)) == 1,
            f"BASIC candidates: {basic}",
        ),
        ShapeCheck(
            "rising gamma tightens full-Flipper pruning",
            all(b <= a * 1.05 for a, b in zip(prefix, prefix[1:]))
            and prefix[-1] <= prefix[0],
            "candidates over gamma sweep: "
            + " -> ".join(f"{v:.3g}" for v in prefix),
        ),
    ]
    report = "\n".join(
        [
            _header("Fig. 8(d): runtime vs correlation thresholds"),
            series_table(result, "seconds"),
            "",
            series_table(result, "candidates"),
            "",
            sweep_chart(result, "candidates"),
            "",
            render_checks(checks),
        ]
    )
    return report, result


# ---------------------------------------------------------------------------
# Figure 9 / Table 4: real datasets
# ---------------------------------------------------------------------------


def real_datasets() -> list[tuple[str, TransactionDatabase, Thresholds]]:
    """The three simulated real datasets at bench scale.

    Paper sizes: GROCERIES 9.8K, CENSUS 32K, MEDLINE 640K.  The bench
    scale multiplies our simulators' scale-1 sizes (~13K / 32K / 64K).
    """
    scale = min(1.0, max(0.1, bench_scale() * 10))
    return [
        ("GROCERIES", generate_groceries(scale=scale), GROCERIES_THRESHOLDS),
        ("CENSUS", generate_census(scale=scale), CENSUS_THRESHOLDS),
        ("MEDLINE", generate_medline(scale=scale * 0.5), MEDLINE_THRESHOLDS),
    ]


def run_fig9a() -> tuple[str, dict[str, list[RunRecord]]]:
    """Fig. 9(a): naive flipping vs full Flipper runtime on the three
    real datasets."""
    rows = []
    data: dict[str, list[RunRecord]] = {}
    checks: list[ShapeCheck] = []
    for name, database, thresholds in real_datasets():
        records = run_ladder(database, thresholds, methods=NAIVE_VS_FULL)
        data[name] = records
        rows.append(
            [
                name,
                database.n_transactions,
                records[0].seconds,
                records[1].seconds,
                records[0].n_patterns,
            ]
        )
        checks.append(check_ladder_ordering(records, "candidates"))
    report = "\n".join(
        [
            _header("Fig. 9(a): naive flipping vs full Flipper, runtime"),
            format_table(
                ["dataset", "N", "naive (s)", "full (s)", "patterns"], rows
            ),
            "",
            render_checks(checks),
        ]
    )
    return report, data


def run_fig9b() -> tuple[str, dict[str, list[RunRecord]]]:
    """Fig. 9(b): memory comparison (stored candidate entries as the
    primary proxy, tracemalloc peak as the physical check)."""
    rows = []
    data: dict[str, list[RunRecord]] = {}
    checks: list[ShapeCheck] = []
    for name, database, thresholds in real_datasets():
        records = run_ladder(
            database, thresholds, methods=NAIVE_VS_FULL, track_memory=True
        )
        data[name] = records
        rows.append(
            [
                name,
                records[0].stored_entries,
                records[1].stored_entries,
                (records[0].peak_memory_bytes or 0) // 1024,
                (records[1].peak_memory_bytes or 0) // 1024,
            ]
        )
        checks.append(check_ladder_ordering(records, "stored_entries"))
    report = "\n".join(
        [
            _header("Fig. 9(b): naive flipping vs full Flipper, memory"),
            format_table(
                [
                    "dataset",
                    "naive entries",
                    "full entries",
                    "naive peak KiB",
                    "full peak KiB",
                ],
                rows,
            ),
            "",
            render_checks(checks),
        ]
    )
    return report, data


def run_table1() -> tuple[str, list[dict[str, object]]]:
    """Table 1: expectation-based verdicts flip with N; Kulc does not."""
    rows = []
    data = []
    checks = []
    for row in table1_rows():
        supports = [row.sup_first, row.sup_second]
        sign = expectation_sign(row.sup_pair, supports, row.n_transactions)
        kulc = kulczynski(row.sup_pair, supports)
        the_lift = lift(row.sup_pair, supports, row.n_transactions)
        rows.append(
            [row.label, row.database, row.n_transactions, sign, the_lift, kulc]
        )
        data.append(
            {
                "pair": row.label,
                "db": row.database,
                "expectation_sign": sign,
                "kulc": kulc,
            }
        )
        checks.append(
            ShapeCheck(
                f"{row.label}@{row.database} matches paper",
                sign == row.expected_paper_sign
                and abs(kulc - row.kulc_paper) < 1e-9,
                f"sign={sign}, kulc={kulc:.2f}",
            )
        )
    report = "\n".join(
        [
            _header("Table 1: expectation-based vs null-invariant"),
            format_table(
                ["pair", "database", "N", "expectation sign", "lift", "kulc"],
                rows,
            ),
            "",
            render_checks(checks),
        ]
    )
    return report, data


def run_table4() -> tuple[str, list[dict[str, object]]]:
    """Table 4: positive / negative / flipping pattern counts per real
    dataset (shape: flips are a tiny fraction of all signed patterns)."""
    rows = []
    data = []
    checks = []
    for name, database, thresholds in real_datasets():
        miner = FlipperMiner(
            database, thresholds, pruning=PruningConfig.basic()
        )
        result = miner.mine()
        positives = negatives = 0
        for _level, _k, cell in miner.iter_cells():
            for entry in cell.entries.values():
                if entry.label is Label.POSITIVE:
                    positives += 1
                elif entry.label is Label.NEGATIVE:
                    negatives += 1
        flips = len(result.patterns)
        rows.append([name, positives, negatives, flips])
        data.append(
            {
                "dataset": name,
                "positive": positives,
                "negative": negatives,
                "flips": flips,
            }
        )
        checks.append(
            ShapeCheck(
                f"{name}: flips are rare",
                0 < flips < (positives + negatives) / 10,
                f"{flips} flips vs {positives}+{negatives} signed",
            )
        )
    report = "\n".join(
        [
            _header("Table 4: positive / negative / flipping counts"),
            format_table(["dataset", "pos", "neg", "flips"], rows),
            "",
            render_checks(checks),
        ]
    )
    return report, data


#: Registry used by the CLI (`python -m repro bench <id>`).
EXPERIMENTS = {
    "fig8a": run_fig8a,
    "fig8b": run_fig8b,
    "fig8c": run_fig8c,
    "fig8d": run_fig8d,
    "fig9a": run_fig9a,
    "fig9b": run_fig9b,
    "table1": run_table1,
    "table4": run_table4,
    "engine": run_engine_smoke,
    "partition": run_partition_bench,
    "incremental": run_incremental_bench,
    "serve": run_serve_bench,
    "window": run_window_bench,
    "approx": run_approx_bench,
}
