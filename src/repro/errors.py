"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by the library derive from
:class:`ReproError`, so callers can catch one type to handle every
library-level failure while still letting programming errors surface
as their builtin types.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TaxonomyError",
    "DataError",
    "ConfigError",
    "MiningError",
    "ServeError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TaxonomyError(ReproError):
    """Raised for structurally invalid taxonomies (cycles, orphans,
    duplicate names, missing nodes, bad rebalancing requests)."""


class DataError(ReproError):
    """Raised for invalid transaction data (unknown items, empty
    databases, malformed input files)."""


class ConfigError(ReproError):
    """Raised for invalid mining configuration (threshold ranges,
    unknown measures, inconsistent support profiles)."""


class MiningError(ReproError):
    """Raised when a mining run cannot proceed (e.g. resource caps
    exceeded in a deliberately bounded run)."""


class ServeError(ReproError):
    """Raised by the pattern-serving subsystem (stale store versions,
    malformed pattern stores, queries against missing patterns)."""
