"""Unit tests for R-interesting pruning of generalized rules."""

from __future__ import annotations

import pytest

from repro import Taxonomy
from repro.errors import MiningError
from repro.related import is_r_interesting, prune_uninteresting
from repro.related.interest import ancestor_rules
from repro.related.rules import AssociationRule


@pytest.fixture
def clothes_taxonomy():
    """The running example of Srikant & Agrawal [17]."""
    return Taxonomy.from_dict(
        {
            "clothes": {"outerwear": ["jackets", "ski pants"], "shirts": None},
            "footwear": {"shoes": None, "hiking boots": None},
        }
    )


@pytest.fixture
def ids(clothes_taxonomy):
    def lookup(name):
        return clothes_taxonomy.node_by_name(name).node_id

    return lookup


def rule(antecedent, consequent, support, confidence):
    return AssociationRule(
        antecedent=tuple(antecedent),
        consequent=tuple(consequent),
        support=support,
        confidence=confidence,
    )


class TestAncestorMatching:
    def test_direct_generalization_found(self, clothes_taxonomy, ids):
        child = rule([ids("jackets")], [ids("footwear")], 10, 0.5)
        parent = rule([ids("outerwear")], [ids("footwear")], 30, 0.5)
        unrelated = rule([ids("shirts")], [ids("footwear")], 5, 0.2)
        found = ancestor_rules(
            clothes_taxonomy, child, [child, parent, unrelated]
        )
        assert found == [parent]

    def test_identical_rule_is_not_its_own_ancestor(
        self, clothes_taxonomy, ids
    ):
        a_rule = rule([ids("jackets")], [ids("shoes")], 4, 0.4)
        twin = rule([ids("jackets")], [ids("shoes")], 4, 0.4)
        assert ancestor_rules(clothes_taxonomy, a_rule, [twin]) == []

    def test_both_sides_may_generalize(self, clothes_taxonomy, ids):
        child = rule([ids("jackets")], [ids("hiking boots")], 6, 0.3)
        parent = rule([ids("clothes")], [ids("footwear")], 60, 0.4)
        assert ancestor_rules(clothes_taxonomy, child, [parent]) == [parent]

    def test_size_mismatch_never_matches(self, clothes_taxonomy, ids):
        child = rule([ids("jackets")], [ids("shoes")], 4, 0.4)
        wider = rule([ids("clothes"), ids("footwear")], [ids("shoes")], 9, 0.2)
        assert ancestor_rules(clothes_taxonomy, child, [wider]) == []


class TestInterestTest:
    def test_expected_support_scaling(self, clothes_taxonomy, ids):
        """[17]'s worked example shape: if jackets are a quarter of
        clothes sales, a jackets-rule is expected at a quarter of the
        clothes-rule's support."""
        singles = {ids("clothes"): 80, ids("jackets"): 20, ids("shoes"): 30}
        parent = rule([ids("clothes")], [ids("shoes")], 40, 0.5)
        exactly_expected = rule([ids("jackets")], [ids("shoes")], 10, 0.5)
        above = rule([ids("jackets")], [ids("shoes")], 13, 0.65)
        assert not is_r_interesting(
            clothes_taxonomy, exactly_expected, parent, singles, r=1.1
        )
        assert is_r_interesting(
            clothes_taxonomy, above, parent, singles, r=1.1
        )

    def test_confidence_route_also_qualifies(self, clothes_taxonomy, ids):
        """A rule can be R-interesting on confidence alone (the
        consequent did not specialize, so expected conf is the
        ancestor's)."""
        singles = {ids("clothes"): 80, ids("jackets"): 20, ids("shoes"): 30}
        parent = rule([ids("clothes")], [ids("shoes")], 40, 0.5)
        sharp = rule([ids("jackets")], [ids("shoes")], 8, 0.8)
        # support 8 < 1.5 * 10 fails, confidence 0.8 >= 1.5 * 0.5 passes
        assert is_r_interesting(
            clothes_taxonomy, sharp, parent, singles, r=1.5
        )

    def test_r_below_one_rejected(self, clothes_taxonomy, ids):
        singles = {ids("clothes"): 80, ids("jackets"): 20, ids("shoes"): 30}
        parent = rule([ids("clothes")], [ids("shoes")], 40, 0.5)
        child = rule([ids("jackets")], [ids("shoes")], 10, 0.5)
        with pytest.raises(MiningError):
            is_r_interesting(clothes_taxonomy, child, parent, singles, r=0.5)

    def test_non_ancestor_pair_rejected(self, clothes_taxonomy, ids):
        singles = {ids("shirts"): 10, ids("jackets"): 20, ids("shoes"): 30}
        not_parent = rule([ids("shirts")], [ids("shoes")], 5, 0.5)
        child = rule([ids("jackets")], [ids("shoes")], 10, 0.5)
        with pytest.raises(MiningError):
            is_r_interesting(
                clothes_taxonomy, child, not_parent, singles, r=1.1
            )

    def test_missing_single_support_reported(self, clothes_taxonomy, ids):
        parent = rule([ids("clothes")], [ids("shoes")], 40, 0.5)
        child = rule([ids("jackets")], [ids("shoes")], 10, 0.5)
        with pytest.raises(MiningError, match="single-item support"):
            is_r_interesting(clothes_taxonomy, child, parent, {}, r=1.1)


class TestPruning:
    def test_rules_without_ancestors_survive(self, clothes_taxonomy, ids):
        singles = {ids("clothes"): 80, ids("footwear"): 50}
        top = rule([ids("clothes")], [ids("footwear")], 30, 0.4)
        assert prune_uninteresting(
            clothes_taxonomy, [top], singles, r=1.1
        ) == [top]

    def test_expected_children_pruned(self, clothes_taxonomy, ids):
        singles = {
            ids("clothes"): 80,
            ids("jackets"): 20,
            ids("shoes"): 30,
        }
        parent = rule([ids("clothes")], [ids("shoes")], 40, 0.5)
        boring = rule([ids("jackets")], [ids("shoes")], 10, 0.5)
        surprising = rule([ids("jackets")], [ids("shoes")], 25, 0.9)
        kept = prune_uninteresting(
            clothes_taxonomy, [parent, boring], singles, r=1.1
        )
        assert kept == [parent]
        kept = prune_uninteresting(
            clothes_taxonomy, [parent, surprising], singles, r=1.1
        )
        assert kept == [parent, surprising]
