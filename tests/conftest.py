"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import Taxonomy, Thresholds, TransactionDatabase
from repro.datasets import example3_database, example3_taxonomy


@pytest.fixture
def example3_tax() -> Taxonomy:
    return example3_taxonomy()


@pytest.fixture
def example3_db() -> TransactionDatabase:
    return example3_database()


@pytest.fixture
def example3_thresholds() -> Thresholds:
    return Thresholds(gamma=0.6, epsilon=0.35, min_support=1)


@pytest.fixture
def grocery_taxonomy() -> Taxonomy:
    """A small, hand-made 3-level grocery hierarchy."""
    return Taxonomy.from_dict(
        {
            "drinks": {
                "beer": ["canned beer", "bottled beer"],
                "soda": ["cola", "lemonade"],
            },
            "non-food": {
                "cosmetics": ["baby cosmetics", "soap"],
                "cleaning": ["detergent", "sponges"],
            },
            "fresh": {
                "fruit": ["apples", "bananas"],
                "dairy": ["milk", "yogurt"],
            },
        }
    )


def make_random_database(
    taxonomy: Taxonomy,
    n_transactions: int,
    seed: int,
    min_width: int = 1,
    max_width: int = 5,
) -> TransactionDatabase:
    """Uniform random transactions over a taxonomy's items."""
    rng = random.Random(seed)
    items = [taxonomy.name_of(i) for i in taxonomy.item_ids]
    transactions = []
    for _ in range(n_transactions):
        width = rng.randint(min_width, min(max_width, len(items)))
        transactions.append(rng.sample(items, width))
    return TransactionDatabase(transactions, taxonomy)


@pytest.fixture
def random_db(grocery_taxonomy) -> TransactionDatabase:
    return make_random_database(grocery_taxonomy, 200, seed=7, max_width=6)
