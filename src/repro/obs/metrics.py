"""Zero-dependency metrics: counters, gauges, histograms, registries.

The model is deliberately a small subset of the Prometheus client
library, reimplemented on the stdlib so the mining core stays
dependency-free:

* a :class:`MetricsRegistry` owns named metrics; the process-global
  :data:`REGISTRY` is the default everywhere, and tests inject fresh
  instances for isolation;
* :class:`Counter` (monotonic), :class:`Gauge` (set/inc/dec, or a
  callback evaluated at collect time) and :class:`Histogram`
  (fixed cumulative buckets plus sum/count), each with an optional
  declared label set — every distinct label-value combination is one
  independently tracked series;
* increments are lock-cheap: one tiny per-metric lock around a dict
  update, never around user work, so hot paths (a counter bump per
  HTTP request, per pool admit) cost well under a microsecond.

Metric *names* come from :mod:`repro.obs.catalog` — when a name is
registered without explicit help/labels, the catalog spec fills them
in, so call sites stay one line.  The FLIP007 analysis rule enforces
that call sites pass catalog constants, not inline literals.
"""

from __future__ import annotations

import bisect
import re
import threading
from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigError
from repro.obs import catalog

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "REGISTRY",
    "default_registry",
    "quantile_from_buckets",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram bucket upper bounds — latency-shaped (seconds),
#: spanning sub-millisecond cache hits to multi-second mines
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _validate_labels(
    declared: tuple[str, ...], labels: Mapping[str, Any]
) -> tuple[str, ...]:
    """The label-value key of one series, in declared order."""
    if set(labels) != set(declared):
        raise ConfigError(
            f"label set mismatch: declared {sorted(declared)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in declared)


class Metric:
    """Shared shape of one named metric (a family of series)."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, labels: tuple[str, ...] = ()
    ) -> None:
        if not _NAME_RE.match(name):
            raise ConfigError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ConfigError(
                    f"invalid label name {label!r} on metric {name!r}"
                )
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        self._lock = threading.Lock()

    def samples(self) -> list[tuple[tuple[str, ...], Any]]:
        """``(label values, value)`` per series, deterministic order."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing value (optionally per label set)."""

    kind = "counter"

    def __init__(
        self, name: str, help: str, labels: tuple[str, ...] = ()
    ) -> None:
        super().__init__(name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ConfigError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        key = _validate_labels(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = _validate_labels(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> list[tuple[tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge(Metric):
    """A value that goes up and down; settable or callback-backed."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str, labels: tuple[str, ...] = ()
    ) -> None:
        super().__init__(name, help, labels)
        self._values: dict[tuple[str, ...], float] = {}
        self._functions: dict[tuple[str, ...], Callable[[], float]] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = _validate_labels(self.label_names, labels)
        with self._lock:
            self._values[key] = float(value)
            self._functions.pop(key, None)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _validate_labels(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set_function(
        self, function: Callable[[], float], **labels: Any
    ) -> None:
        """Evaluate ``function`` at every collect (live gauges like
        uptime or queue depth; the last registration wins)."""
        key = _validate_labels(self.label_names, labels)
        with self._lock:
            self._functions[key] = function
            self._values.pop(key, None)

    def value(self, **labels: Any) -> float:
        key = _validate_labels(self.label_names, labels)
        with self._lock:
            function = self._functions.get(key)
            if function is None:
                return self._values.get(key, 0.0)
        return float(function())

    def samples(self) -> list[tuple[tuple[str, ...], Any]]:
        with self._lock:
            values = dict(self._values)
            functions = dict(self._functions)
        for key, function in functions.items():
            values[key] = float(function())
        return sorted(values.items())


@dataclass
class HistogramData:
    """One series of a histogram: bucket counts plus sum/count."""

    bucket_counts: list[int]
    total: int = 0
    sum: float = 0.0


class Histogram(Metric):
    """Fixed-bucket distribution: cumulative buckets, sum and count."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigError(
                f"histogram {name!r} buckets must be strictly "
                f"increasing and non-empty, got {bounds}"
            )
        self.buckets = bounds
        self._series: dict[tuple[str, ...], HistogramData] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _validate_labels(self.label_names, labels)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            data = self._series.get(key)
            if data is None:
                data = HistogramData([0] * (len(self.buckets) + 1))
                self._series[key] = data
            data.bucket_counts[index] += 1
            data.total += 1
            data.sum += value

    def data(self, **labels: Any) -> HistogramData:
        key = _validate_labels(self.label_names, labels)
        with self._lock:
            data = self._series.get(key)
            if data is None:
                return HistogramData([0] * (len(self.buckets) + 1))
            return HistogramData(
                list(data.bucket_counts), data.total, data.sum
            )

    def quantile(self, fraction: float, **labels: Any) -> float:
        """Estimated quantile via linear bucket interpolation."""
        data = self.data(**labels)
        return quantile_from_buckets(
            self.buckets, data.bucket_counts, fraction
        )

    def samples(self) -> list[tuple[tuple[str, ...], Any]]:
        with self._lock:
            return sorted(
                (
                    key,
                    HistogramData(
                        list(data.bucket_counts), data.total, data.sum
                    ),
                )
                for key, data in self._series.items()
            )


def quantile_from_buckets(
    bounds: tuple[float, ...] | list[float],
    bucket_counts: list[int],
    fraction: float,
) -> float:
    """Quantile estimate from per-bucket counts (not cumulative).

    ``bucket_counts`` has one entry per bound plus the overflow
    bucket.  Interpolates linearly inside the target bucket (from the
    previous bound, or 0 for the first); observations in the overflow
    bucket report the largest finite bound, mirroring Prometheus'
    ``histogram_quantile``.  Returns 0.0 for an empty histogram, or
    when ``bounds`` itself is empty (an overflow-only histogram has no
    finite bound to report).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigError(f"fraction must be in [0, 1], got {fraction}")
    total = sum(bucket_counts)
    if total == 0 or not bounds:
        return 0.0
    rank = fraction * total
    cumulative = 0
    for index, count in enumerate(bucket_counts):
        cumulative += count
        if cumulative >= rank and count > 0:
            if index >= len(bounds):
                return float(bounds[-1])
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            into = (rank - (cumulative - count)) / count
            return lower + (upper - lower) * into
    return float(bounds[-1])


_METRIC_TYPES: dict[str, type[Metric]] = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricsRegistry:
    """Named metrics with get-or-create registration.

    Registration is idempotent for an identical (type, label set)
    signature and loudly :class:`~repro.errors.ConfigError` for a
    conflicting one — a silent type fork would corrupt every scrape.
    When ``help``/``labels`` are omitted, the
    :mod:`repro.obs.catalog` spec for the name fills them in.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------

    def _get_or_create(
        self,
        kind: str,
        name: str,
        help: str | None,
        labels: tuple[str, ...] | None,
        buckets: tuple[float, ...] | None = None,
    ) -> Metric:
        spec = catalog.METRICS.get(name)
        if help is None:
            help = spec.help if spec is not None else ""
        if labels is None:
            labels = spec.labels if spec is not None else ()
        if buckets is None and spec is not None:
            buckets = spec.buckets
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (
                    existing.kind != kind
                    or existing.label_names != tuple(labels)
                ):
                    raise ConfigError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.label_names}, "
                        f"requested {kind}{tuple(labels)}"
                    )
                return existing
            if kind == "histogram":
                metric: Metric = Histogram(
                    name, help, tuple(labels), buckets
                )
            else:
                metric = _METRIC_TYPES[kind](name, help, tuple(labels))
            self._metrics[name] = metric
            return metric

    def counter(
        self,
        name: str,
        help: str | None = None,
        labels: tuple[str, ...] | None = None,
    ) -> Counter:
        metric = self._get_or_create("counter", name, help, labels)
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self,
        name: str,
        help: str | None = None,
        labels: tuple[str, ...] | None = None,
    ) -> Gauge:
        metric = self._get_or_create("gauge", name, help, labels)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str | None = None,
        labels: tuple[str, ...] | None = None,
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        metric = self._get_or_create(
            "histogram", name, help, labels, buckets
        )
        assert isinstance(metric, Histogram)
        return metric

    # -- introspection -------------------------------------------------

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        """Metrics sorted by name (a stable collect order)."""
        with self._lock:
            metrics = dict(self._metrics)
        for name in sorted(metrics):
            yield metrics[name]

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def value(self, name: str, **labels: Any) -> float:
        """Current value of one counter/gauge series (0.0 if absent)."""
        metric = self.get(name)
        if metric is None:
            return 0.0
        if isinstance(metric, (Counter, Gauge)):
            return metric.value(**labels)
        raise ConfigError(
            f"metric {name!r} is a {metric.kind}; read its buckets "
            "via data()/samples()"
        )


#: the process-global default registry
REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry instrumented code defaults to."""
    return REGISTRY
