"""Unit tests for repro.core.cells."""

from __future__ import annotations

from repro.core.cells import Cell, CellEntry
from repro.core.labels import Label


def entry(itemset, support=10, corr=0.5, label=Label.POSITIVE, alive=False):
    return CellEntry(
        itemset=itemset,
        support=support,
        correlation=corr,
        label=label,
        alive=alive,
    )


class TestCellEntry:
    def test_is_frequent(self):
        assert entry((1, 2)).is_frequent
        assert not entry((1, 2), label=Label.INFREQUENT).is_frequent


class TestCell:
    def test_add_get_contains_len(self):
        cell = Cell(level=1, k=2)
        cell.add(entry((1, 2)))
        assert (1, 2) in cell
        assert cell.get((1, 2)).support == 10
        assert cell.get((3, 4)) is None
        assert len(cell) == 1

    def test_counts(self):
        cell = Cell(level=1, k=2)
        cell.add(entry((1, 2), label=Label.POSITIVE, alive=True))
        cell.add(entry((1, 3), label=Label.NEGATIVE))
        cell.add(entry((2, 3), label=Label.NON_CORRELATED))
        cell.add(entry((2, 4), label=Label.INFREQUENT))
        assert cell.n_frequent == 3
        assert cell.n_labeled == 2
        assert cell.n_alive == 1
        assert len(cell.alive_entries) == 1
        assert set(cell.frequent_itemsets) == {(1, 2), (1, 3), (2, 3)}

    def test_has_positive_only_for_frequent_positives(self):
        cell = Cell(level=1, k=2)
        cell.add(entry((1, 2), label=Label.NEGATIVE))
        assert not cell.has_positive
        # infrequent but high correlation does NOT count (Theorem 3's
        # induction stays inside frequent itemsets)
        cell.add(entry((1, 3), corr=0.99, label=Label.INFREQUENT))
        assert not cell.has_positive
        cell.add(entry((2, 3), label=Label.POSITIVE))
        assert cell.has_positive

    def test_max_correlation_per_item(self):
        cell = Cell(level=1, k=2)
        cell.add(entry((1, 2), corr=0.3))
        cell.add(entry((1, 3), corr=0.7))
        cell.add(entry((2, 3), corr=0.1))
        best = cell.max_correlation_per_item()
        assert best[1] == 0.7
        assert best[2] == 0.3
        assert best[3] == 0.7
        assert 4 not in best  # vacuous items are absent, not 0
