"""Unit tests for repro.core.measures (paper Tables 1 and 2)."""

from __future__ import annotations

import math

import pytest

from repro.core.measures import (
    MEASURES,
    all_confidence,
    chi_square,
    coherence,
    conditional_probabilities,
    cosine,
    expectation_sign,
    expected_support,
    get_measure,
    kulczynski,
    lift,
    max_confidence,
)
from repro.errors import ConfigError


class TestConditionalProbabilities:
    def test_basic(self):
        assert conditional_probabilities(2, [4, 8]) == [0.5, 0.25]

    def test_zero_item_support(self):
        assert conditional_probabilities(0, [0, 5]) == [0.0, 0.0]

    def test_rejects_inconsistent_supports(self):
        with pytest.raises(ConfigError, match="inconsistent"):
            conditional_probabilities(10, [5, 20])

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            conditional_probabilities(1, [])

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            conditional_probabilities(-1, [5])


class TestPairValues:
    """Hand-computed two-item values."""

    def test_kulc_paper_table1(self):
        # Table 1: Kulc(A,B) = 0.40 for sup 1000/1000/400
        assert kulczynski(400, [1000, 1000]) == pytest.approx(0.40)
        # Kulc(C,D) = 0.02 for sup 200/200/4
        assert kulczynski(4, [200, 200]) == pytest.approx(0.02)

    def test_all_confidence_is_min(self):
        assert all_confidence(2, [4, 8]) == pytest.approx(0.25)

    def test_max_confidence_is_max(self):
        assert max_confidence(2, [4, 8]) == pytest.approx(0.5)

    def test_cosine_geometric(self):
        assert cosine(2, [4, 8]) == pytest.approx(math.sqrt(0.5 * 0.25))

    def test_coherence_harmonic(self):
        # harmonic mean of 0.5 and 0.25 = 2/(2+4) = 1/3
        assert coherence(2, [4, 8]) == pytest.approx(1 / 3)

    def test_identical_items_give_one(self):
        for fn in (
            all_confidence,
            coherence,
            cosine,
            kulczynski,
            max_confidence,
        ):
            assert fn(5, [5, 5]) == pytest.approx(1.0)

    def test_zero_support_itemset(self):
        for fn in (
            all_confidence,
            coherence,
            cosine,
            kulczynski,
            max_confidence,
        ):
            assert fn(0, [5, 7]) == 0.0


class TestKaryValues:
    def test_kulc_equation_1(self):
        # Kulc(A) = (1/k) * sum sup(A)/sup(ai)
        value = kulczynski(3, [6, 9, 12])
        assert value == pytest.approx((3 / 6 + 3 / 9 + 3 / 12) / 3)

    def test_cosine_kth_root(self):
        value = cosine(3, [6, 9, 12])
        expected = ((3 / 6) * (3 / 9) * (3 / 12)) ** (1 / 3)
        assert value == pytest.approx(expected)

    def test_coherence_k_over_inverse_sum(self):
        value = coherence(3, [6, 9, 12])
        expected = 3 / (6 / 3 + 9 / 3 + 12 / 3)
        assert value == pytest.approx(expected)


class TestOrdering:
    """Table 2: min <= harmonic <= geometric <= arithmetic <= max."""

    @pytest.mark.parametrize(
        "sup,items",
        [
            (2, [4, 8]),
            (1, [2, 3, 11]),
            (7, [7, 9, 14, 100]),
            (3, [30, 3, 700]),
        ],
    )
    def test_chain(self, sup, items):
        a = all_confidence(sup, items)
        h = coherence(sup, items)
        g = cosine(sup, items)
        m = kulczynski(sup, items)
        x = max_confidence(sup, items)
        assert a <= h + 1e-12
        assert h <= g + 1e-12
        assert g <= m + 1e-12
        assert m <= x + 1e-12


class TestRegistry:
    def test_all_five_registered(self):
        assert set(MEASURES) == {
            "all_confidence",
            "coherence",
            "cosine",
            "kulczynski",
            "max_confidence",
        }

    def test_aliases(self):
        assert get_measure("kulc").name == "kulczynski"
        assert get_measure("Kulczynsky").name == "kulczynski"
        assert get_measure("allconf").name == "all_confidence"

    def test_instance_passthrough(self):
        measure = MEASURES["cosine"]
        assert get_measure(measure) is measure

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError, match="unknown measure"):
            get_measure("pearson")

    def test_metadata(self):
        assert MEASURES["all_confidence"].anti_monotonic
        assert MEASURES["coherence"].anti_monotonic
        assert not MEASURES["kulczynski"].anti_monotonic
        assert all(m.null_invariant for m in MEASURES.values())

    def test_callable(self):
        assert MEASURES["kulczynski"](400, [1000, 1000]) == pytest.approx(0.4)


class TestExpectationBased:
    """Table 1: the expectation-based verdict flips with N."""

    def test_table1_ab(self):
        assert expected_support([1000, 1000], 20_000) == pytest.approx(50)
        assert expected_support([1000, 1000], 2_000) == pytest.approx(500)
        assert expectation_sign(400, [1000, 1000], 20_000) == "positive"
        assert expectation_sign(400, [1000, 1000], 2_000) == "negative"

    def test_table1_cd(self):
        assert expected_support([200, 200], 20_000) == pytest.approx(2)
        assert expected_support([200, 200], 2_000) == pytest.approx(20)
        assert expectation_sign(4, [200, 200], 20_000) == "positive"
        assert expectation_sign(4, [200, 200], 2_000) == "negative"

    def test_kulc_does_not_flip_with_n(self):
        # The same pairs under Kulc: identical value whatever N is.
        assert kulczynski(400, [1000, 1000]) == kulczynski(400, [1000, 1000])
        assert kulczynski(4, [200, 200]) == pytest.approx(0.02)

    def test_lift(self):
        assert lift(400, [1000, 1000], 20_000) == pytest.approx(8.0)
        assert lift(400, [1000, 1000], 2_000) == pytest.approx(0.8)

    def test_lift_zero_expectation(self):
        assert lift(0, [0, 10], 100) == 0.0
        assert lift(1, [0, 10], 100) == math.inf

    def test_expected_support_validation(self):
        with pytest.raises(ConfigError):
            expected_support([10], 0)
        with pytest.raises(ConfigError):
            expected_support([200], 100)

    def test_chi_square_independent_is_zero(self):
        # sup_ab exactly equals expectation -> statistic 0
        assert chi_square(50, 50, 25, 100) == pytest.approx(0.0)

    def test_chi_square_positive_association(self):
        assert chi_square(50, 50, 50, 100) == pytest.approx(100.0)

    def test_chi_square_validation(self):
        with pytest.raises(ConfigError):
            chi_square(5, 5, 6, 100)
        with pytest.raises(ConfigError):
            chi_square(5, 5, 2, 0)


class TestAliasNormalization:
    """get_measure must be insensitive to case, whitespace and the
    space/hyphen/underscore separator choice (regression: exact-match
    lookup rejected "Kulc", " cosine " and "All Confidence")."""

    @pytest.mark.parametrize(
        "spelling, canonical",
        [
            ("Kulc", "kulczynski"),
            (" cosine ", "cosine"),
            ("All Confidence", "all_confidence"),
            ("ALL-CONFIDENCE", "all_confidence"),
            ("all   confidence", "all_confidence"),
            ("Max_Confidence", "max_confidence"),
            ("\tJaccard\n", "coherence"),
            ("KULCZYNSKI", "kulczynski"),
        ],
    )
    def test_resolves_loose_spellings(self, spelling, canonical):
        assert get_measure(spelling).name == canonical

    def test_unknown_error_lists_canonical_names(self):
        with pytest.raises(ConfigError) as excinfo:
            get_measure("Pearson Rho")
        message = str(excinfo.value)
        for name in MEASURES:
            assert name in message
